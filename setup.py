"""Setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs (which need ``bdist_wheel``) fail.  Keeping a ``setup.py``
and omitting the ``[build-system]`` table from ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path, which
works offline.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
