#!/usr/bin/env python
"""Sampled-simulation validation harness: sampled vs full-detail runs.

A thin CLI over :mod:`repro.sampling.accuracy` — the same harness the
accuracy-regression suite (``tests/test_sampling_accuracy.py``) and the
CI smoke jobs run, so the tool and the tests cannot drift.  For each
(application, model) pair it runs the full-detail simulation and the
sampled simulation over the same stream and reports the IPC/EPI point
errors, whether the full-detail value falls inside the sampled run's
confidence intervals (per phase too, in adaptive mode), and the
wall-clock speedup.  The default pairs are the golden apps the acceptance
criteria are phrased over; the numbers in the EXPERIMENTS.md sampling
sections come from this harness.

Usage:  python tools/validate_sampling.py [--length L] [--pairs swim:TON,...]
        [--sampling [adaptive:]DETAIL:GAP:WARMUP[:FUNC_WARM][:CONFIDENCE]]
        [--backend scalar|columnar] [--source generator|artifact]
        [--repeat N]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.pipeline.columnar import ExecutionBackend
from repro.sampling import SamplingConfig
from repro.sampling.accuracy import (
    GOLDEN_PAIRS,
    AccuracyHarness,
    aggregate_speedup,
    format_report,
    parse_pairs,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--length", type=int, default=200_000)
    parser.add_argument("--pairs", type=str,
                        default=",".join(f"{a}:{m}" for a, m in GOLDEN_PAIRS),
                        help="comma-separated app:model pairs")
    parser.add_argument("--sampling", type=str, default="on",
                        help="sampling spec: 'on' (tuned fixed defaults), "
                             "'adaptive' (tuned phase-aware defaults), or "
                             "an explicit [adaptive:]DETAIL:GAP:WARMUP spec")
    parser.add_argument("--backend", type=str, default="scalar",
                        choices=[b.value for b in ExecutionBackend],
                        help="execution backend for both sides of the "
                             "comparison")
    parser.add_argument("--source", type=str, default="generator",
                        choices=["generator", "artifact"],
                        help="simulate the live generator stream or a "
                             "compiled trace artifact (both sides alike)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timing repetitions (speedup = best of N)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="also fail unless the pooled wall-clock "
                             "speedup (sum of full seconds / sum of "
                             "sampled seconds) reaches this floor")
    args = parser.parse_args()

    sampling = SamplingConfig.parse(args.sampling) or SamplingConfig()
    pairs = parse_pairs(args.pairs)
    print(f"sampling: {sampling.fingerprint()}")
    print(f"length:   {args.length}  "
          f"(detail fraction {sampling.detail_fraction:.1%})\n")

    with tempfile.TemporaryDirectory() as tmp:
        harness = AccuracyHarness(
            length=args.length,
            backend=ExecutionBackend(args.backend),
            source=args.source,
            root=(tmp if args.source == "artifact" else None),
            repeat=args.repeat,
        )
        results = harness.sweep(sampling, pairs)

    print(format_report(results))
    all_ok = all(r.ipc_in_ci and r.epi_in_ci for r in results)
    print(f"\n{'all full-detail values inside the reported CIs' if all_ok else 'CI MISSES — see above'}")
    if args.min_speedup is not None:
        pooled = aggregate_speedup(results)
        fast_enough = pooled >= args.min_speedup
        print(f"pooled speedup {pooled:.2f}x "
              f"({'meets' if fast_enough else 'BELOW'} the "
              f"{args.min_speedup:g}x floor)")
        all_ok = all_ok and fast_enough
    raise SystemExit(0 if all_ok else 1)


if __name__ == "__main__":
    main()
