#!/usr/bin/env python
"""Sampled-simulation validation harness: sampled vs full-detail runs.

For each (application, model) pair, runs the full-detail simulation and
the sampled simulation over the same stream and reports the IPC/EPI point
errors, whether the full-detail value falls inside the sampled run's
confidence intervals, and the wall-clock speedup.  The default pairs are
the golden apps the acceptance criteria are phrased over; the numbers in
the EXPERIMENTS.md "Sampling" section come from this harness.

Usage:  python tools/validate_sampling.py [--length L] [--pairs swim:TON,...]
        [--sampling DETAIL:GAP:WARMUP[:FUNC_WARM][:CONFIDENCE]] [--repeat N]
"""

from __future__ import annotations

import argparse
import time

from repro.core import ParrotSimulator
from repro.core.simulator import RunOptions
from repro.models import model_config
from repro.sampling import SamplingConfig
from repro.workloads import application

GOLDEN_PAIRS = "swim:TON,gcc:N,eon:TOW"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--length", type=int, default=200_000)
    parser.add_argument("--pairs", type=str, default=GOLDEN_PAIRS,
                        help="comma-separated app:model pairs")
    parser.add_argument("--sampling", type=str, default="on",
                        help="sampling spec (default: tuned defaults)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="timing repetitions (speedup = best of N)")
    args = parser.parse_args()

    sampling = SamplingConfig.parse(args.sampling) or SamplingConfig()
    pairs = [pair.split(":") for pair in args.pairs.split(",")]
    print(f"sampling: {sampling.fingerprint()}")
    print(f"length:   {args.length}  "
          f"(detail fraction {sampling.detail_fraction:.1%})\n")

    all_ok = True
    for app_name, model_name in pairs:
        app = application(app_name)
        sim = ParrotSimulator(model_config(model_name))

        full_times, sampled_times = [], []
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            full = sim.simulate(app, length=args.length)
            full_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            sampled = sim.simulate(
                app, RunOptions(sampling=sampling, estimate=True),
                length=args.length,
            )
            sampled_times.append(time.perf_counter() - t0)
        estimate = sampled.estimate

        full_ipc = full.instructions / full.cycles
        full_epi = full.energy.total / full.instructions
        ipc_err = abs(estimate.ipc.mean - full_ipc) / full_ipc
        epi_err = abs(estimate.epi.mean - full_epi) / full_epi
        speedup = min(full_times) / min(sampled_times)
        ipc_in = estimate.ipc.contains(full_ipc)
        epi_in = estimate.epi.contains(full_epi)
        all_ok &= ipc_in and epi_in

        print(f"{app_name}/{model_name}:")
        print(f"  intervals {len(estimate.intervals):3d}   "
              f"speedup {speedup:4.2f}x   "
              f"({min(full_times):.2f}s full, {min(sampled_times):.2f}s sampled)")
        print(f"  IPC  full {full_ipc:7.4f}   sampled {estimate.ipc.format()}"
              f"   err {ipc_err:6.2%}   {'ok' if ipc_in else 'OUTSIDE CI'}")
        print(f"  EPI  full {full_epi:7.4f}   sampled {estimate.epi.format()}"
              f"   err {epi_err:6.2%}   {'ok' if epi_in else 'OUTSIDE CI'}")

    print(f"\n{'all full-detail values inside the reported CIs' if all_ok else 'CI MISSES — see above'}")
    raise SystemExit(0 if all_ok else 1)


if __name__ == "__main__":
    main()
