#!/usr/bin/env python
"""Calibration harness: print the paper's anchor metrics for quick tuning.

Runs a balanced subset of the suite across the six main models and prints
the geometric-mean relationships the paper reports, next to the paper's
values.  Used while tuning workload profiles and energy tags; the
benchmark suite regenerates the full figures.

Usage:  python tools/calibrate.py [--apps N] [--length L]
"""

from __future__ import annotations

import argparse
import time
from collections import defaultdict

from repro.core import ParrotSimulator
from repro.experiments.aggregate import geomean
from repro.models import model_config
from repro.workloads import benchmark_suite


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--apps", type=int, default=15)
    parser.add_argument("--length", type=int, default=20000)
    parser.add_argument("--models", type=str, default="N,W,TN,TW,TON,TOW")
    args = parser.parse_args()

    models = args.models.split(",")
    apps = benchmark_suite(max_apps=args.apps)
    results: dict[str, dict[str, object]] = defaultdict(dict)
    t0 = time.time()
    for model_name in models:
        sim = ParrotSimulator(model_config(model_name))
        for app in apps:
            results[model_name][app.name] = sim.simulate(
                app, length=args.length
            )
    print(f"ran {len(models)}x{len(apps)} in {time.time()-t0:.0f}s\n")

    def ratio(model, base, metric):
        vals = []
        for app in apps:
            r1, r0 = results[model][app.name], results[base][app.name]
            vals.append(getattr(r1.point, metric) / getattr(r0.point, metric))
        return geomean(vals) - 1.0

    anchors = [
        ("IPC   TN/N", ratio("TN", "N", "ipc"), "+2%"),
        ("IPC   TW/W", ratio("TW", "W", "ipc"), "+7%"),
        ("IPC  TON/N", ratio("TON", "N", "ipc"), "+17%"),
        ("IPC  TOW/W", ratio("TOW", "W", "ipc"), "+25%"),
        ("IPC    W/N", ratio("W", "N", "ipc"), "~+15%"),
        ("IPC  TON/W", ratio("TON", "W", "ipc"), "slightly >0"),
        ("IPC  TOW/N", ratio("TOW", "N", "ipc"), "+45%"),
        ("E      W/N", ratio("W", "N", "energy"), "~+70%"),
        ("E     TN/N", ratio("TN", "N", "energy"), "~+0-2%"),
        ("E     TW/N", ratio("TW", "N", "energy"), "+12%"),
        ("E    TON/N", ratio("TON", "N", "energy"), "+3%"),
        ("E    TOW/W", ratio("TOW", "W", "energy"), "-18%"),
        ("E    TON/W", ratio("TON", "W", "energy"), "-39%"),
        ("CMPW TON/N", ratio("TON", "N", "cmpw"), "+32%"),
        ("CMPW TOW/W", ratio("TOW", "W", "cmpw"), "+92%"),
        ("CMPW TOW/N", ratio("TOW", "N", "cmpw"), "+51%"),
        ("CMPW TON/W", ratio("TON", "W", "cmpw"), "+67%"),
    ]
    for label, value, target in anchors:
        print(f"  {label}: {value:+7.1%}   (paper: {target})")

    # Characterisation
    print("\nper-suite coverage / misc (TON):")
    by_suite = defaultdict(list)
    for app in apps:
        by_suite[app.suite].append(results["TON"][app.name])
    for suite, rs in by_suite.items():
        cov = geomean([max(r.coverage, 1e-9) for r in rs])
        uop = sum(r.uop_reduction for r in rs) / len(rs)
        print(f"  {suite:11s} cov={cov:.2f} uopred={uop:.2f}")
    print("\nN-model IPC and mispredicts:")
    for app in apps:
        r = results["N"][app.name]
        t = results["TON"][app.name]
        print(f"  {app.name:14s} {app.suite:11s} IPC={r.ipc:5.2f} "
              f"bmisp/1k={r.cold_mispredicts_per_kinstr:5.1f} "
              f"TONcov={t.coverage:.2f} TONuopred={t.uop_reduction:.2f}")


if __name__ == "__main__":
    main()
