"""Parity gate: simulation results are pinned bit-for-bit against goldens.

Every hot-path optimization in this repo must leave ``SimulationResult``
unchanged — not approximately, *exactly*: the serialized ``to_dict()``
payload (which round-trips floats via ``repr``) must match the golden
JSON checked into ``tests/golden/``.  A diff here means an optimization
changed simulator semantics, however slightly, and must be fixed rather
than re-baselined.

When a change is *intended* to alter results (a modelling fix, a new
statistic), regenerate the goldens explicitly::

    python -m pytest tests/test_parity.py --update-golden

and review the resulting JSON diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

import repro.core.simulator as simulator_module
from repro.core.simulator import ParrotSimulator, RunOptions
from repro.models.configs import model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.pipeline.segment_batch import run_hot_training_sequential
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import application

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Pinned (application, model, length) runs: an FP app on the full PARROT
#: model (hot pipeline + optimizer), an integer app on the baseline (pure
#: cold path), and a mixed app on the wide optimized model.  Lengths are
#: small enough for test-suite latency but long enough to exercise trace
#: construction, optimization and hot execution.
PARITY_RUNS = [
    ("swim", "TON", 4000),
    ("gcc", "N", 4000),
    ("eon", "TOW", 4000),
]


def _golden_path(app_name: str, model_name: str, length: int) -> pathlib.Path:
    return GOLDEN_DIR / f"{app_name}_{model_name}_{length}.json"


def _simulate(app_name: str, model_name: str, length: int) -> dict:
    simulator = ParrotSimulator(model_config(model_name))
    return simulator.run(application(app_name), length).to_dict()


@pytest.mark.parametrize("app_name,model_name,length", PARITY_RUNS)
def test_result_parity(app_name, model_name, length, update_golden):
    payload = _simulate(app_name, model_name, length)
    path = _golden_path(app_name, model_name, length)

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"missing golden {path.name}; generate with "
        f"`python -m pytest tests/test_parity.py --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert payload == golden, (
        f"{app_name}/{model_name}/{length}: result diverged from golden "
        f"{path.name} — an optimization changed simulator semantics "
        f"(only re-baseline for *intended* modelling changes)"
    )


def test_parity_is_deterministic():
    """The same pinned run twice in-process is bit-identical.

    Guards the premise of the golden files: any nondeterminism (dict
    ordering leaking into results, RNG state bleeding between runs) would
    make the parity gate flaky rather than meaningful.
    """
    app_name, model_name, length = PARITY_RUNS[0]
    first = _simulate(app_name, model_name, length)
    second = _simulate(app_name, model_name, length)
    assert first == second


# --------------------------------------------------------------------------
# Predictor-state parity: batched hot training vs the sequential reference.
# --------------------------------------------------------------------------

#: A sampled regime small enough for test latency that still exercises
#: every predictor-training path: functionally warmed fast-forward
#: (``warm_skip``), trace-machinery warmup, and detailed intervals whose
#: hot frames train the branch predictor through the batched plan.
_SAMPLING = SamplingConfig(detail=500, gap=4500, warmup=500, func_warm=1500)
_SAMPLED_LENGTH = 20_000

_BACKENDS = (
    ExecutionBackend.SCALAR,
    ExecutionBackend.COLUMNAR,
    ExecutionBackend.COMPILED,
)


def _bpred_state(bpred) -> tuple:
    stats = bpred.stats
    return (
        bytes(bpred._counters), bpred._history, dict(bpred._btb),
        list(bpred._ras),
        (stats.cond_predictions, stats.cond_mispredictions,
         stats.indirect_predictions, stats.indirect_mispredictions,
         stats.return_predictions, stats.return_mispredictions),
    )


def _tpred_state(tpred) -> tuple | None:
    if tpred is None:
        return None
    stats = tpred.stats
    return (
        [[(entry.tid, entry.confidence) for entry in ways]
         for ways in tpred._table],
        list(tpred._history),
        (stats.lookups, stats.predictions, stats.correct,
         stats.mispredictions),
    )


def _predictor_states(app_name: str, model_name: str,
                      backend: ExecutionBackend, *, sequential: bool):
    """Full predictor tables after a warm-skip sampled run on ``backend``.

    ``sequential=True`` swaps the batched hot-path trainer for the
    per-CTI reference loop — the oracle the batched path must match.
    Returns ``(bpred_state, tpred_state, hot_train_calls)``.
    """
    machines: list = []
    real_assemble = ParrotSimulator._assemble
    real_train = run_hot_training_sequential if sequential \
        else simulator_module.run_hot_training
    calls = [0]

    def capturing_assemble(self, **kwargs):
        machine = real_assemble(self, **kwargs)
        machines.append(machine)
        return machine

    def counting_train(bpred, plan, instructions):
        calls[0] += 1
        return real_train(bpred, plan, instructions)

    patcher = pytest.MonkeyPatch()
    try:
        patcher.setattr(ParrotSimulator, "_assemble", capturing_assemble)
        patcher.setattr(simulator_module, "run_hot_training", counting_train)
        simulator = ParrotSimulator(model_config(model_name))
        simulator.simulate(
            application(app_name),
            RunOptions(backend=backend, sampling=_SAMPLING),
            length=_SAMPLED_LENGTH,
        )
    finally:
        patcher.undo()
    assert len(machines) == 1
    machine = machines[0]
    return _bpred_state(machine.bpred), _tpred_state(machine.tpred), calls[0]


@pytest.mark.parametrize("app_name,model_name", [
    (app, model) for app, model, _length in PARITY_RUNS
])
def test_predictor_state_after_warm_skip_matches_sequential(
        app_name, model_name):
    """Batched training leaves predictor tables bit-identical, per backend.

    After ``warm_skip`` fast-forward plus detailed intervals, the gshare
    counters, global history, BTB, return-address stack, prediction stats
    and the trace predictor's full way table must equal those of a run
    whose hot segments train the branch predictor one CTI at a time —
    on all three backends.  The golden gate pins aggregate results;
    this pins the *internal* state the batched trainer mutates, which
    aggregate counters could mask (e.g. compensating counter errors).
    """
    oracle_b, oracle_t, _ = _predictor_states(
        app_name, model_name, ExecutionBackend.SCALAR, sequential=True
    )
    has_trace_cache = model_config(model_name).has_trace_cache
    for backend in _BACKENDS:
        batched_b, batched_t, hot_trains = _predictor_states(
            app_name, model_name, backend, sequential=False
        )
        assert batched_b == oracle_b, backend
        assert batched_t == oracle_t, backend
        if has_trace_cache:
            assert hot_trains > 0, (
                f"{backend}: sampled run never exercised the batched "
                f"hot-path trainer — the parity assertion is vacuous"
            )
