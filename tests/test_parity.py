"""Parity gate: simulation results are pinned bit-for-bit against goldens.

Every hot-path optimization in this repo must leave ``SimulationResult``
unchanged — not approximately, *exactly*: the serialized ``to_dict()``
payload (which round-trips floats via ``repr``) must match the golden
JSON checked into ``tests/golden/``.  A diff here means an optimization
changed simulator semantics, however slightly, and must be fixed rather
than re-baselined.

When a change is *intended* to alter results (a modelling fix, a new
statistic), regenerate the goldens explicitly::

    python -m pytest tests/test_parity.py --update-golden

and review the resulting JSON diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.simulator import ParrotSimulator
from repro.models.configs import model_config
from repro.workloads.suite import application

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Pinned (application, model, length) runs: an FP app on the full PARROT
#: model (hot pipeline + optimizer), an integer app on the baseline (pure
#: cold path), and a mixed app on the wide optimized model.  Lengths are
#: small enough for test-suite latency but long enough to exercise trace
#: construction, optimization and hot execution.
PARITY_RUNS = [
    ("swim", "TON", 4000),
    ("gcc", "N", 4000),
    ("eon", "TOW", 4000),
]


def _golden_path(app_name: str, model_name: str, length: int) -> pathlib.Path:
    return GOLDEN_DIR / f"{app_name}_{model_name}_{length}.json"


def _simulate(app_name: str, model_name: str, length: int) -> dict:
    simulator = ParrotSimulator(model_config(model_name))
    return simulator.run(application(app_name), length).to_dict()


@pytest.mark.parametrize("app_name,model_name,length", PARITY_RUNS)
def test_result_parity(app_name, model_name, length, update_golden):
    payload = _simulate(app_name, model_name, length)
    path = _golden_path(app_name, model_name, length)

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"missing golden {path.name}; generate with "
        f"`python -m pytest tests/test_parity.py --update-golden`"
    )
    golden = json.loads(path.read_text())
    assert payload == golden, (
        f"{app_name}/{model_name}/{length}: result diverged from golden "
        f"{path.name} — an optimization changed simulator semantics "
        f"(only re-baseline for *intended* modelling changes)"
    )


def test_parity_is_deterministic():
    """The same pinned run twice in-process is bit-identical.

    Guards the premise of the golden files: any nondeterminism (dict
    ordering leaking into results, RNG state bleeding between runs) would
    make the parity gate flaky rather than meaningful.
    """
    app_name, model_name, length = PARITY_RUNS[0]
    first = _simulate(app_name, model_name, length)
    second = _simulate(app_name, model_name, length)
    assert first == second
