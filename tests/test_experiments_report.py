"""Unit tests: figure exporters (Markdown, CSV, full report)."""

import pytest

from repro.experiments.figures import FigureData
from repro.experiments.report import full_report, to_csv, to_markdown
from repro.experiments.runner import ExperimentRunner


@pytest.fixture()
def figure() -> FigureData:
    fig = FigureData("Figure X", "Demo", unit="percent")
    fig.series["A/B"] = {"SpecInt": 0.12, "Overall": 0.2}
    fig.series["C/D"] = {"SpecInt": -0.05, "Overall": 0.0, "Extra": 1.0}
    fig.notes = "a note"
    return fig


class TestMarkdown:
    def test_structure(self, figure):
        md = to_markdown(figure)
        assert md.startswith("### Figure X: Demo")
        assert "| group | A/B | C/D |" in md
        assert "| SpecInt | +12.0% | -5.0% |" in md
        assert "*a note*" in md

    def test_missing_cells_rendered_as_dash(self, figure):
        md = to_markdown(figure)
        assert "| Extra | - | +100.0% |" in md

    def test_rate_unit(self):
        fig = FigureData("F", "t", unit="rate")
        fig.series["s"] = {"g": 1.234}
        assert "1.23" in to_markdown(fig)


class TestCsv:
    def test_header_and_rows(self, figure):
        csv = to_csv(figure)
        lines = csv.strip().splitlines()
        assert lines[0] == "group,A/B,C/D"
        assert lines[1].startswith("SpecInt,0.12,")

    def test_missing_cells_empty(self, figure):
        csv = to_csv(figure)
        extra_row = [l for l in csv.splitlines() if l.startswith("Extra")][0]
        assert extra_row == "Extra,,1.0"

    def test_roundtrippable_values(self, figure):
        csv = to_csv(figure)
        row = [l for l in csv.splitlines() if l.startswith("Overall")][0]
        assert float(row.split(",")[1]) == 0.2


class TestFullReport:
    def test_contains_every_figure(self):
        runner = ExperimentRunner(length=2000, max_apps=3)
        report = full_report(runner)
        for fragment in ("Figure 4.1", "Figure 4.11", "Headline",
                         "Table 3.1", "Table 3.2"):
            assert fragment in report
