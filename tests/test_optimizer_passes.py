"""Unit tests: individual optimizer passes on hand-built uop sequences."""

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import FLAGS_REG, REG_NONE
from repro.optimizer.passes import (
    ConstantPropagation,
    CriticalPathScheduling,
    DeadCodeElimination,
    LogicSimplify,
    MicroOpFusion,
    Simdify,
    VirtualRenaming,
)
from repro.optimizer.verify import check_equivalence


def u(kind, dest=REG_NONE, src1=REG_NONE, src2=REG_NONE, imm=None, origin=0):
    return Uop(kind, dest, src1, src2, imm, origin)


class TestConstantPropagation:
    def test_folds_constant_alu(self):
        uops = [
            u(UopKind.MOV_IMM, dest=1, imm=5),
            u(UopKind.MOV_IMM, dest=2, imm=7),
            u(UopKind.ALU, dest=3, src1=1, src2=2),
        ]
        out = ConstantPropagation().run([x.copy() for x in uops])
        assert out[2].kind is UopKind.MOV_IMM
        assert out[2].imm == 12
        assert check_equivalence(uops, out).equivalent

    def test_merges_known_operand_into_immediate(self):
        uops = [
            u(UopKind.MOV_IMM, dest=1, imm=5),
            u(UopKind.ALU, dest=3, src1=2, src2=1),   # r2 unknown
        ]
        out = ConstantPropagation().run([x.copy() for x in uops])
        assert out[1].src2 == REG_NONE and out[1].imm == 5
        assert check_equivalence(uops, out).equivalent

    def test_copy_propagation_rewrites_consumer(self):
        uops = [
            u(UopKind.MOV, dest=1, src1=4),
            u(UopKind.ALU, dest=2, src1=1, src2=5),
        ]
        out = ConstantPropagation().run([x.copy() for x in uops])
        assert out[1].src1 == 4
        assert check_equivalence(uops, out).equivalent

    def test_copy_invalidated_by_source_redefinition(self):
        uops = [
            u(UopKind.MOV, dest=1, src1=4),
            u(UopKind.ALU, dest=4, src1=5, src2=6),   # r4 changes
            u(UopKind.ALU, dest=2, src1=1, src2=5),   # must still read r1
        ]
        out = ConstantPropagation().run([x.copy() for x in uops])
        assert out[2].src1 == 1
        assert check_equivalence(uops, out).equivalent

    def test_knownness_killed_by_load(self):
        uops = [
            u(UopKind.MOV_IMM, dest=1, imm=5),
            u(UopKind.LOAD, dest=1, src1=2, origin=0),
            u(UopKind.ALU, dest=3, src1=1, src2=1),
        ]
        out = ConstantPropagation().run([x.copy() for x in uops])
        assert out[2].kind is UopKind.ALU  # not folded
        assert check_equivalence(uops, out).equivalent


class TestLogicSimplify:
    def test_add_zero_becomes_move(self):
        uops = [u(UopKind.ALU, dest=1, src1=2, imm=0)]
        out = LogicSimplify().run([x.copy() for x in uops])
        assert out[0].kind is UopKind.MOV
        assert check_equivalence(uops, out).equivalent

    def test_xor_self_becomes_zero(self):
        uops = [u(UopKind.LOGIC, dest=1, src1=3, src2=3)]
        out = LogicSimplify().run([x.copy() for x in uops])
        assert out[0].kind is UopKind.MOV_IMM and out[0].imm == 0
        assert check_equivalence(uops, out).equivalent

    def test_shift_zero_becomes_move(self):
        uops = [u(UopKind.SHIFT, dest=1, src1=2, imm=0)]
        out = LogicSimplify().run([x.copy() for x in uops])
        assert out[0].kind is UopKind.MOV
        assert check_equivalence(uops, out).equivalent

    def test_self_move_becomes_nop(self):
        uops = [u(UopKind.MOV, dest=1, src1=1)]
        out = LogicSimplify().run([x.copy() for x in uops])
        assert out[0].kind is UopKind.NOP

    def test_real_add_untouched(self):
        uops = [u(UopKind.ALU, dest=1, src1=2, imm=3)]
        out = LogicSimplify().run([x.copy() for x in uops])
        assert out[0].kind is UopKind.ALU


class TestDeadCode:
    def test_overwritten_value_removed(self):
        uops = [
            u(UopKind.MOV_IMM, dest=1, imm=5),     # dead: overwritten below
            u(UopKind.ALU, dest=1, src1=2, src2=3),
        ]
        out = DeadCodeElimination().run([x.copy() for x in uops])
        assert len(out) == 1
        assert check_equivalence(uops, out).equivalent

    def test_read_keeps_value_alive(self):
        uops = [
            u(UopKind.MOV_IMM, dest=1, imm=5),
            u(UopKind.ALU, dest=2, src1=1, src2=3),  # reads r1
            u(UopKind.ALU, dest=1, src1=2, src2=3),
        ]
        out = DeadCodeElimination().run([x.copy() for x in uops])
        assert len(out) == 3

    def test_live_out_values_kept(self):
        """Last writes are architecturally visible: never removed."""
        uops = [u(UopKind.MOV_IMM, dest=1, imm=5)]
        out = DeadCodeElimination().run([x.copy() for x in uops])
        assert len(out) == 1

    def test_stores_never_removed(self):
        uops = [
            u(UopKind.STORE, src1=1, src2=2, origin=0),
            u(UopKind.ALU, dest=2, src1=3, src2=4),
        ]
        out = DeadCodeElimination().run([x.copy() for x in uops])
        assert any(x.kind is UopKind.STORE for x in out)

    def test_nops_always_removed(self):
        uops = [u(UopKind.NOP), u(UopKind.ALU, dest=1, src1=2, src2=3)]
        out = DeadCodeElimination().run([x.copy() for x in uops])
        assert all(x.kind is not UopKind.NOP for x in out)


class TestFusion:
    def test_fuses_single_use_pair(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=4, src1=1, imm=7),
            u(UopKind.ALU, dest=1, src1=5, src2=6),  # redefines r1
        ]
        fusion = MicroOpFusion()
        out = fusion.run([x.copy() for x in uops])
        assert fusion.applied == 1
        assert len(out) == 2
        assert out[0].kind is UopKind.FUSED_ALU
        assert check_equivalence(uops, out).equivalent

    def test_no_fusion_when_value_live_out(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),  # r1 never redefined
            u(UopKind.ALU, dest=4, src1=1, imm=7),
        ]
        out = MicroOpFusion().run([x.copy() for x in uops])
        assert len(out) == 2

    def test_no_fusion_with_two_readers(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=4, src1=1, imm=7),
            u(UopKind.ALU, dest=5, src1=1, imm=9),
            u(UopKind.ALU, dest=1, src1=5, src2=6),
        ]
        out = MicroOpFusion().run([x.copy() for x in uops])
        assert len(out) == 4

    def test_no_fusion_past_source_clobber(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=2, src1=5, src2=6),  # clobbers producer src
            u(UopKind.ALU, dest=4, src1=1, imm=7),
            u(UopKind.ALU, dest=1, src1=5, src2=6),
        ]
        out = MicroOpFusion().run([x.copy() for x in uops])
        assert all(x.kind is not UopKind.FUSED_ALU for x in out)

    def test_too_many_register_sources_rejected(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=4, src1=1, src2=5),  # 3 reg srcs combined
            u(UopKind.ALU, dest=1, src1=6, src2=7),
        ]
        out = MicroOpFusion().run([x.copy() for x in uops])
        assert all(x.kind is not UopKind.FUSED_ALU for x in out)


class TestSimdify:
    def test_packs_independent_adds(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=4, src1=5, src2=6),
        ]
        simd = Simdify()
        out = simd.run([x.copy() for x in uops])
        assert simd.applied == 1
        assert len(out) == 1
        packed = out[0]
        assert packed.kind is UopKind.SIMD2
        assert packed.dest2 == 4 and packed.extra_srcs == (5, 6)
        assert check_equivalence(uops, out).equivalent

    def test_fp_adds_pack_to_fp_simd(self):
        uops = [
            u(UopKind.FP_ADD, dest=16, src1=17, src2=18),
            u(UopKind.FP_ADD, dest=19, src1=20, src2=21),
        ]
        out = Simdify().run([x.copy() for x in uops])
        assert out[0].kind is UopKind.FP_SIMD2
        assert check_equivalence(uops, out).equivalent

    def test_dependent_ops_not_packed(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=4, src1=1, src2=6),  # reads r1
        ]
        out = Simdify().run([x.copy() for x in uops])
        assert len(out) == 2

    def test_hoisting_blocked_by_intermediate_clobber(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=5, src1=8, src2=9),   # clobbers partner src
            u(UopKind.ALU, dest=4, src1=5, src2=6),
        ]
        out = Simdify().run([x.copy() for x in uops])
        # first and third must not pack (third reads r5 written in between)
        packed = [x for x in out if x.kind is UopKind.SIMD2]
        assert all(x.dest2 != 4 for x in packed)

    def test_imm_forms_not_packed(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, imm=3),
            u(UopKind.ALU, dest=4, src1=5, imm=6),
        ]
        out = Simdify().run([x.copy() for x in uops])
        assert len(out) == 2


class TestVirtualRenaming:
    def test_counts_non_final_definitions(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),   # virtual (redefined)
            u(UopKind.ALU, dest=1, src1=4, src2=5),   # final write of r1
            u(UopKind.ALU, dest=2, src1=6, src2=7),   # final write of r2
        ]
        renamer = VirtualRenaming()
        renamer.run(uops)
        assert renamer.virtual_renames == 1

    def test_no_transformation(self):
        uops = [u(UopKind.ALU, dest=1, src1=2, src2=3)]
        assert VirtualRenaming().run(uops) is uops


class TestScheduling:
    def test_respects_dependences(self):
        uops = [
            u(UopKind.MOV_IMM, dest=1, imm=5),
            u(UopKind.ALU, dest=2, src1=1, src2=3),
            u(UopKind.MUL, dest=4, src1=5, src2=6),
            u(UopKind.ALU, dest=7, src1=4, src2=2),
        ]
        out = CriticalPathScheduling().run([x.copy() for x in uops])
        assert check_equivalence(uops, out).equivalent

    def test_hoists_long_latency_chain_head(self):
        """The MUL chain head should be scheduled before independent fillers."""
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.ALU, dest=5, src1=6, src2=7),
            u(UopKind.MUL, dest=8, src1=9, src2=10),
            u(UopKind.MUL, dest=11, src1=8, src2=10),
        ]
        out = CriticalPathScheduling().run([x.copy() for x in uops])
        kinds = [x.kind for x in out]
        assert kinds[0] is UopKind.MUL

    def test_memory_order_preserved(self):
        uops = [
            u(UopKind.STORE, src1=1, src2=2, origin=0),
            u(UopKind.LOAD, dest=3, src1=4, origin=1),
            u(UopKind.STORE, src1=5, src2=6, origin=2),
        ]
        out = CriticalPathScheduling().run([x.copy() for x in uops])
        mem = [(x.kind, x.origin) for x in out if x.is_mem]
        assert mem == [(UopKind.STORE, 0), (UopKind.LOAD, 1), (UopKind.STORE, 2)]

    def test_short_sequences_untouched(self):
        uops = [u(UopKind.ALU, dest=1, src1=2, src2=3)]
        assert CriticalPathScheduling().run(uops) is uops
