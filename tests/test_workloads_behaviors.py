"""Unit + property tests: branch and memory behaviour specs."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.behaviors import (
    BiasedBranchSpec,
    DataDependentBranchSpec,
    LoopBranchSpec,
    PatternBranchSpec,
    RandomMemSpec,
    StrideMemSpec,
    SwitchSpec,
    make_branch_state,
    make_mem_state,
    make_switch_state,
)


class TestLoopBranch:
    def test_fixed_trip_count_sequence(self):
        state = make_branch_state(LoopBranchSpec(4, 4), random.Random(1))
        # Taken trip-1 times, then not taken; repeats.
        directions = [state.next_taken() for _ in range(8)]
        assert directions == [True, True, True, False] * 2

    def test_trip_of_one_never_takes(self):
        state = make_branch_state(LoopBranchSpec(1, 1), random.Random(1))
        assert [state.next_taken() for _ in range(3)] == [False] * 3

    def test_variable_trips_redrawn_per_entry(self):
        state = make_branch_state(LoopBranchSpec(2, 50), random.Random(3))
        trips = []
        count = 1
        for _ in range(500):
            if state.next_taken():
                count += 1
            else:
                trips.append(count)
                count = 1
        assert len(set(trips)) > 3  # trip count actually varies

    def test_fixed_flag_freezes_trip_count(self):
        state = make_branch_state(LoopBranchSpec(2, 50, fixed=True), random.Random(3))
        trips = []
        count = 1
        for _ in range(500):
            if state.next_taken():
                count += 1
            else:
                trips.append(count)
                count = 1
        assert len(set(trips)) == 1

    @given(st.integers(2, 20), st.integers(0, 1000))
    def test_trips_within_bounds(self, trip, seed):
        state = make_branch_state(LoopBranchSpec(2, trip), random.Random(seed))
        count = 1
        for _ in range(200):
            if state.next_taken():
                count += 1
                assert count <= trip
            else:
                assert 2 <= count
                count = 1


class TestBiasedBranch:
    def test_extreme_bias(self):
        always = make_branch_state(BiasedBranchSpec(1.0), random.Random(1))
        never = make_branch_state(BiasedBranchSpec(0.0), random.Random(1))
        assert all(always.next_taken() for _ in range(50))
        assert not any(never.next_taken() for _ in range(50))

    def test_bias_approximates_probability(self):
        state = make_branch_state(BiasedBranchSpec(0.2), random.Random(5))
        taken = sum(state.next_taken() for _ in range(5000))
        assert 0.15 < taken / 5000 < 0.25


class TestPatternBranch:
    def test_pattern_repeats_exactly(self):
        state = make_branch_state(PatternBranchSpec(period=3), random.Random(9))
        first = [state.next_taken() for _ in range(3)]
        for _ in range(5):
            assert [state.next_taken() for _ in range(3)] == first

    def test_pattern_never_all_not_taken(self):
        for seed in range(30):
            state = make_branch_state(
                PatternBranchSpec(period=4, p_taken=0.01), random.Random(seed)
            )
            assert any(state.next_taken() for _ in range(4))


class TestDataDependentBranch:
    def test_roughly_balanced(self):
        state = make_branch_state(DataDependentBranchSpec(0.5), random.Random(2))
        taken = sum(state.next_taken() for _ in range(4000))
        assert 0.4 < taken / 4000 < 0.6


class TestSwitch:
    def test_indices_in_range(self):
        state = make_switch_state(SwitchSpec(5, skew=1.0), random.Random(3))
        assert all(0 <= state.next_index() < 5 for _ in range(200))

    def test_skew_favours_low_indices(self):
        state = make_switch_state(SwitchSpec(6, skew=2.0), random.Random(3))
        draws = [state.next_index() for _ in range(3000)]
        assert draws.count(0) > draws.count(5) * 3


class TestMemSpecs:
    def test_stride_wraps_within_extent(self):
        state = make_mem_state(StrideMemSpec(base=0x1000, stride=8, extent=64),
                               random.Random(1))
        addresses = [state.next_address() for _ in range(20)]
        assert all(0x1000 <= a < 0x1000 + 64 for a in addresses)
        assert addresses[0] == 0x1000 and addresses[1] == 0x1008
        assert addresses[8] == 0x1000  # wrapped

    def test_random_stays_in_region_and_aligned(self):
        state = make_mem_state(RandomMemSpec(base=0x2000, extent=4096),
                               random.Random(1))
        for _ in range(200):
            address = state.next_address()
            assert 0x2000 <= address < 0x2000 + 4096
            assert address % 8 == 0
