"""Integration tests: the paper's qualitative result shapes.

These run a small, fixed grid (5 apps x all models x a few thousand
instructions) and assert the *orderings and directions* the paper
establishes.  Magnitudes are asserted loosely — the benchmark harness is
where the full-scale numbers are produced (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.aggregate import OVERALL, paired_ratio_by_suite
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(length=8000, max_apps=10)


def overall(runner, test, base, metric):
    apps = runner.applications()
    return paired_ratio_by_suite(
        runner.results(test, apps), runner.results(base, apps), metric
    )[OVERALL]


class TestPerformanceShapes:
    def test_widening_helps_performance(self, runner):
        assert overall(runner, "W", "N", lambda r: r.ipc) > 0.0

    def test_trace_cache_alone_helps_modestly(self, runner):
        tn_gain = overall(runner, "TN", "N", lambda r: r.ipc)
        assert -0.02 < tn_gain < 0.15

    def test_optimization_beats_trace_cache_alone(self, runner):
        ton = overall(runner, "TON", "N", lambda r: r.ipc)
        tn = overall(runner, "TN", "N", lambda r: r.ipc)
        assert ton > tn

    def test_tow_is_the_fastest_machine(self, runner):
        apps = runner.applications()
        for model in ("N", "W", "TN", "TW", "TON"):
            assert overall(runner, "TOW", model, lambda r: r.ipc) > 0.0

    def test_ton_is_competitive_with_w(self, runner):
        """The headline crossover: TON ~ W performance."""
        delta = overall(runner, "TON", "W", lambda r: r.ipc)
        assert delta > -0.08


class TestEnergyShapes:
    def test_widening_is_vastly_energy_inefficient(self, runner):
        increase = overall(runner, "W", "N", lambda r: r.total_energy)
        assert increase > 0.4  # paper: ~+70%

    def test_parrot_narrow_is_near_baseline_energy(self, runner):
        delta = overall(runner, "TON", "N", lambda r: r.total_energy)
        assert abs(delta) < 0.25  # paper: +3%

    def test_ton_massively_cheaper_than_w(self, runner):
        delta = overall(runner, "TON", "W", lambda r: r.total_energy)
        assert delta < -0.25  # paper: -39%

    def test_optimizer_saves_energy_on_wide_machine(self, runner):
        delta = overall(runner, "TOW", "W", lambda r: r.total_energy)
        assert delta < 0.0  # paper: -18%


class TestPowerAwarenessShapes:
    def test_parrot_improves_cmpw_over_baselines(self, runner):
        assert overall(runner, "TON", "N", lambda r: r.point.cmpw) > 0.1
        assert overall(runner, "TOW", "W", lambda r: r.point.cmpw) > 0.1

    def test_ton_dominates_w_on_cmpw(self, runner):
        assert overall(runner, "TON", "W", lambda r: r.point.cmpw) > 0.3


class TestCharacterisationShapes:
    def test_fp_coverage_exceeds_int_coverage(self, runner):
        ton = runner.results("TON")
        fp = [r.coverage for r in ton if r.suite == "SpecFP"]
        intc = [r.coverage for r in ton if r.suite == "SpecInt"]
        assert fp and intc
        assert sum(fp) / len(fp) > sum(intc) / len(intc)

    def test_hot_code_better_predicted_than_cold(self, runner):
        """Figure 4.7's split: trace mispredict rate below cold-branch rate."""
        ton = runner.results("TON")
        trace_rate = sum(r.trace_mispredicts_per_kinstr for r in ton)
        cold_instr = sum(r.instructions - r.hot_instructions for r in ton)
        cold_rate_per_k = 1000 * sum(r.cold_branch_mispredicts for r in ton) / cold_instr
        trace_rate_per_k = trace_rate / len(ton)
        assert trace_rate_per_k < cold_rate_per_k

    def test_optimizer_reduces_uops_and_dependencies(self, runner):
        tow = runner.results("TOW")
        mean_uop = sum(r.uop_reduction for r in tow) / len(tow)
        mean_dep = sum(r.dependency_reduction for r in tow) / len(tow)
        assert mean_uop > 0.05          # paper: ~19%
        assert mean_dep >= 0.0

    def test_optimized_traces_are_reused(self, runner):
        tow = runner.results("TOW")
        reuse = [r.trace_stats.mean_optimized_reuse for r in tow
                 if r.trace_stats.traces_optimized]
        assert reuse and max(reuse) > 3.0

    def test_frontend_energy_share_shrinks_with_parrot(self, runner):
        """Figure 4.11's headline: front-end share diminishes N -> TON."""
        n = runner.results("N")
        ton = runner.results("TON")
        share_n = sum(r.energy.component_share("frontend") for r in n) / len(n)
        share_ton = sum(r.energy.component_share("frontend") for r in ton) / len(ton)
        assert share_ton < share_n
