"""Differential accuracy regression: full detail vs fixed vs adaptive.

The promoted ``tools/validate_sampling.py`` harness: every golden pair
(``repro.sampling.accuracy.GOLDEN_PAIRS``) runs at full detail, under
fixed-interval sampling and under the tuned adaptive regime, on both
execution backends, over the same compiled artifact stream.  The suite
enforces the acceptance criteria directly:

* adaptive point errors stay under 2% IPC / 5% EPI against full detail
  (``ERROR_BOUNDS``), with the full-detail values inside the reported
  confidence intervals — overall and per phase;
* the tuned adaptive regime stays an order of magnitude faster than full
  detail across the golden pairs (pooled wall-clock ratio, like-for-like
  source/backend; the full-strength 12× frontier floor is gated by the
  fresh-process surfaces — see ``TestSpeedupFrontier``);
* both backends produce bit-identical adaptive estimates.

Estimates are deterministic, so every accuracy assertion is exact; only
the wall-clock gate measures time, and it pools across pairs and
backends (best-of-2 each) to stay robust against scheduler noise.  The
full-detail baselines are timed with ``cold_reference=True`` — each in a
fresh interpreter — because inside this long-lived pytest process
earlier modules have already built the prewarm/plan memos, which makes
an in-process reference ~40% faster than any standalone full-detail run
and silently shifts the protocol every quoted sampling speedup (PR 4's
fixed table included) was measured under.  The same numbers are archived
into ``BENCH_grid.json`` by ``benchmarks/test_perf_sampling.py``.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.errors import SamplingWarning
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling.accuracy import (
    ADAPTIVE_SPEEDUP_FLOOR,
    ERROR_BOUNDS,
    GOLDEN_LENGTH,
    GOLDEN_PAIRS,
    AccuracyHarness,
    aggregate_speedup,
    format_report,
    parse_pairs,
)
from repro.sampling.config import SamplingConfig

BACKENDS = (ExecutionBackend.SCALAR, ExecutionBackend.COLUMNAR)


@pytest.fixture(scope="module")
def frontier(tmp_path_factory):
    """Fixed + adaptive sweeps over the golden pairs, per backend."""
    root = tmp_path_factory.mktemp("accuracy-artifacts")
    results = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SamplingWarning)
        for backend in BACKENDS:
            harness = AccuracyHarness(
                length=GOLDEN_LENGTH, backend=backend,
                source="artifact", root=root, repeat=2,
                cold_reference=True,
            )
            results[backend] = {
                "fixed": harness.sweep(SamplingConfig()),
                "adaptive": harness.sweep(SamplingConfig.adaptive()),
            }
    return results


class TestAdaptiveAccuracy:
    def test_point_errors_within_bounds_on_both_backends(self, frontier):
        for backend in BACKENDS:
            for result in frontier[backend]["adaptive"]:
                assert result.ipc_error < ERROR_BOUNDS["ipc"], (
                    f"{result.app}/{result.model} [{backend.value}] IPC "
                    f"error {result.ipc_error:.3%} exceeds "
                    f"{ERROR_BOUNDS['ipc']:.0%}"
                )
                assert result.epi_error < ERROR_BOUNDS["epi"], (
                    f"{result.app}/{result.model} [{backend.value}] EPI "
                    f"error {result.epi_error:.3%} exceeds "
                    f"{ERROR_BOUNDS['epi']:.0%}"
                )

    def test_full_detail_inside_reported_intervals(self, frontier):
        for backend in BACKENDS:
            for result in frontier[backend]["adaptive"]:
                assert result.ipc_in_ci and result.epi_in_ci, (
                    f"{result.app}/{result.model} [{backend.value}]: "
                    f"full-detail value outside the adaptive CI"
                )

    def test_per_phase_ci_coverage(self, frontier):
        """The per-phase breakdown is complete, weighted and honest."""
        adaptive = SamplingConfig.adaptive()
        for backend in BACKENDS:
            for result in frontier[backend]["adaptive"]:
                phases = result.estimate.phases
                assert phases, f"{result.app}: adaptive run reported no phases"
                assert math.isclose(sum(p.weight for p in phases), 1.0)
                assert (
                    sum(p.measured for p in phases)
                    == result.measured_intervals
                )
                periods = GOLDEN_LENGTH // adaptive.period
                assert sum(p.periods for p in phases) == periods
                for phase in phases:
                    assert 1 <= phase.measured <= phase.periods
                    if phase.closed:
                        # A closed phase met its targets by construction.
                        assert (phase.ipc.relative_half_width
                                <= adaptive.ipc_target)
                        assert (phase.epi.relative_half_width
                                <= adaptive.epi_target)
                    elif phase.measured == 1:
                        # Single samples honestly report unbounded CIs.
                        assert phase.ipc.half_width == math.inf
                # Reuse happened: detail was not spent on every period.
                assert result.measured_intervals < periods

    def test_adaptive_spends_less_detail_than_fixed(self, frontier):
        for backend in BACKENDS:
            for fixed, adaptive in zip(frontier[backend]["fixed"],
                                       frontier[backend]["adaptive"]):
                assert (adaptive.measured_intervals
                        < fixed.measured_intervals)

    def test_fixed_mode_errors_stay_reasonable(self, frontier):
        # The PR 4 regime is the fallback target; it has looser bounds
        # (it spends detail uniformly) but must not drift unnoticed.
        for backend in BACKENDS:
            for result in frontier[backend]["fixed"]:
                assert result.ipc_error < 0.05
                assert result.epi_error < 0.08
                assert result.ipc_in_ci and result.epi_in_ci


class TestBackendParity:
    def test_adaptive_estimates_bit_identical_across_backends(self, frontier):
        for scalar, columnar in zip(
            frontier[ExecutionBackend.SCALAR]["adaptive"],
            frontier[ExecutionBackend.COLUMNAR]["adaptive"],
        ):
            s_est, c_est = scalar.estimate, columnar.estimate
            assert s_est.ipc.mean == c_est.ipc.mean
            assert s_est.epi.mean == c_est.epi.mean
            assert s_est.ipc.half_width == c_est.ipc.half_width
            assert s_est.intervals == c_est.intervals
            assert len(s_est.phases) == len(c_est.phases)
            for s_phase, c_phase in zip(s_est.phases, c_est.phases):
                assert s_phase.phase == c_phase.phase
                assert s_phase.periods == c_phase.periods
                assert s_phase.measured == c_phase.measured
                assert s_phase.ipc.mean == c_phase.ipc.mean
                assert s_phase.closed == c_phase.closed
            assert scalar.full_ipc == columnar.full_ipc
            assert scalar.full_epi == columnar.full_epi


class TestSpeedupFrontier:
    def test_adaptive_speedup_floor(self, frontier):
        """The pooled wall-clock ratio never regresses toward fixed spend.

        Under the canonical protocol the frontier measures 12–15×
        (``ADAPTIVE_SPEEDUP_FLOOR`` is enforced at full strength by the
        fresh-process surfaces: ``benchmarks/test_perf_sampling.py``
        archives it in ``BENCH_grid.json`` and the
        ``adaptive-sampling-smoke`` CI job gates ``--min-speedup``).  A
        wall-clock assert inside a shared test process has to leave
        headroom for machine variance (±40% observed run-to-run on this
        container class), so the hard floor here is 2/3 of the frontier
        value — still far above what any scheduler regression can reach:
        degrading to fixed-equivalent detail spend lands at ≤6×.
        """
        pooled = [
            result
            for backend in BACKENDS
            for result in frontier[backend]["adaptive"]
        ]
        speedup = aggregate_speedup(pooled)
        hard_floor = ADAPTIVE_SPEEDUP_FLOOR * 2 / 3
        assert speedup >= hard_floor, (
            f"adaptive aggregate speedup {speedup:.2f}x fell below the "
            f"{hard_floor:.0f}x regression floor (frontier value "
            f"{ADAPTIVE_SPEEDUP_FLOOR:.0f}x)\n" + format_report(pooled)
        )
        # Per-backend regression guard (looser: single-backend pools are
        # noisier, but a real regression collapses them far below this).
        for backend in BACKENDS:
            per_backend = aggregate_speedup(frontier[backend]["adaptive"])
            assert per_backend >= ADAPTIVE_SPEEDUP_FLOOR / 2, (
                f"{backend.value} adaptive speedup {per_backend:.2f}x"
            )

    def test_adaptive_faster_than_fixed(self, frontier):
        for backend in BACKENDS:
            fixed = aggregate_speedup(frontier[backend]["fixed"])
            adaptive = aggregate_speedup(frontier[backend]["adaptive"])
            assert adaptive > fixed


class TestHarnessPlumbing:
    def test_parse_pairs(self):
        assert parse_pairs("swim:TON,gcc:N") == [("swim", "TON"),
                                                 ("gcc", "N")]
        with pytest.raises(Exception, match="bad pair"):
            parse_pairs("swim")

    def test_golden_pairs_are_the_documented_ones(self):
        assert GOLDEN_PAIRS == (("swim", "TON"), ("gcc", "N"),
                                ("eon", "TOW"))

    def test_rows_are_json_ready(self, frontier):
        import json
        rows = [
            result.to_row()
            for backend in BACKENDS
            for mode in ("fixed", "adaptive")
            for result in frontier[backend][mode]
        ]
        encoded = json.loads(json.dumps(rows))
        assert len(encoded) == 2 * 2 * len(GOLDEN_PAIRS)
        adaptive_rows = [r for r in encoded if r["mode"] == "adaptive"]
        assert all(r["phases"] >= 1 for r in adaptive_rows)
        assert all(r["ipc_error"] < ERROR_BOUNDS["ipc"]
                   for r in adaptive_rows)
