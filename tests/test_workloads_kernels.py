"""Unit tests: kernel builders and the body emitter."""

import random

from repro.isa.opcodes import CTI_CLASSES, InstrClass
from repro.workloads.kernels import (
    BodyEmitter,
    build_call_tree_kernel,
    build_cold_kernel,
    build_loop_kernel,
    build_switch_kernel,
)
from repro.workloads.profiles import specfp_profile, specint_profile
from repro.workloads.program import ProgramBuilder


def _finish(builder, entry):
    # Kernels end in RET; give the walker a driver loop for validity.
    main = builder.place(builder.label("main"))
    builder.call(entry)
    builder.jump(main)
    return builder.finish(main)


class TestBodyEmitter:
    def test_emits_requested_instruction_count(self):
        builder = ProgramBuilder("t", 1)
        entry = builder.place(builder.label("e"))
        emitter = BodyEmitter(builder, specint_profile(), random.Random(2), hot=True)
        emitted = emitter.emit_body(50)
        assert emitted >= 50
        builder.jump(entry)
        program = builder.finish(entry)
        body_instrs = [
            i for i in program.instructions.values()
            if i.iclass is not InstrClass.DIRECT_JUMP
        ]
        assert len(body_instrs) == emitted

    def test_mix_contains_optimizer_idioms(self):
        builder = ProgramBuilder("t", 3)
        entry = builder.place(builder.label("e"))
        emitter = BodyEmitter(builder, specint_profile(), random.Random(2), hot=True)
        emitter.emit_body(400)
        builder.jump(entry)
        program = builder.finish(entry)
        classes = [i.iclass for i in program.instructions.values()]
        assert InstrClass.LOAD_IMM in classes          # constant producers
        assert InstrClass.SIMPLE_ALU in classes        # fusable/pairable
        assert any(c in classes for c in (InstrClass.LOAD, InstrClass.LOAD_OP,
                                          InstrClass.RMW, InstrClass.COMPLEX_ADDR))

    def test_fp_profile_emits_fp_operations(self):
        builder = ProgramBuilder("t", 4)
        entry = builder.place(builder.label("e"))
        emitter = BodyEmitter(builder, specfp_profile(), random.Random(2), hot=True)
        emitter.emit_body(300)
        builder.jump(entry)
        program = builder.finish(entry)
        classes = {i.iclass for i in program.instructions.values()}
        assert InstrClass.FP_ARITH in classes

    def test_hot_and_cold_regions_scale_with_profile(self):
        profile = specint_profile()
        builder = ProgramBuilder("t", 5)
        hot = BodyEmitter(builder, profile, random.Random(1), hot=True)
        cold = BodyEmitter(builder, profile, random.Random(1), hot=False)
        assert hot._region_size <= profile.hot_ws_bytes
        assert cold._region_size <= profile.cold_ws_bytes

    def test_diamond_emits_compare_and_branch(self):
        builder = ProgramBuilder("t", 6)
        entry = builder.place(builder.label("e"))
        emitter = BodyEmitter(builder, specint_profile(), random.Random(2), hot=True)
        emitter.emit_diamond()
        builder.jump(entry)
        program = builder.finish(entry)
        classes = [i.iclass for i in program.instructions.values()]
        assert InstrClass.COMPARE in classes
        assert InstrClass.COND_BRANCH in classes


class TestKernelBuilders:
    def _classes(self, build, profile_factory=specint_profile, seed=7, **kwargs):
        builder = ProgramBuilder("t", seed)
        entry = build(builder, profile_factory(), random.Random(seed), **kwargs)
        program = _finish(builder, entry)
        return program, [i.iclass for i in program.instructions.values()]

    def test_loop_kernel_has_backward_branch(self):
        program, classes = self._classes(build_loop_kernel)
        backward = [
            i for i in program.instructions.values()
            if i.iclass is InstrClass.COND_BRANCH
            and i.taken_target is not None and i.taken_target <= i.address
        ]
        assert backward, "loop kernel must contain a backward branch"
        assert InstrClass.RETURN_NEAR in classes

    def test_switch_kernel_has_indirect_jump(self):
        program, classes = self._classes(build_switch_kernel)
        assert InstrClass.INDIRECT_JUMP in classes
        assert program.switch_specs

    def test_call_tree_contains_nested_calls(self):
        program, classes = self._classes(build_call_tree_kernel, depth=2)
        calls = classes.count(InstrClass.CALL_DIRECT)
        assert calls >= 4  # two levels of two children plus the driver

    def test_cold_kernel_returns(self):
        _, classes = self._classes(build_cold_kernel)
        assert InstrClass.RETURN_NEAR in classes

    def test_kernels_terminate_with_return_before_next(self):
        # Every kernel is a procedure: a RET must appear before the driver.
        program, _ = self._classes(build_loop_kernel)
        addresses = sorted(program.instructions)
        kinds = [program.instructions[a].iclass for a in addresses]
        assert InstrClass.RETURN_NEAR in kinds
