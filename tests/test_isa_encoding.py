"""Unit + property tests: variable-length encoding model."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import LENGTH_RANGES, MAX_INSTR_LENGTH, encoded_length, mean_length
from repro.isa.opcodes import InstrClass


class TestLengthRanges:
    def test_every_class_has_a_range(self):
        for iclass in InstrClass:
            assert iclass in LENGTH_RANGES, iclass

    def test_ranges_within_architectural_limit(self):
        for lo, hi in LENGTH_RANGES.values():
            assert 1 <= lo <= hi <= MAX_INSTR_LENGTH

    def test_reg_reg_ops_shorter_than_memory_forms(self):
        # IA32-like: reg-reg ALU encodings are short, memory forms long.
        assert mean_length(InstrClass.SIMPLE_ALU) < mean_length(InstrClass.RMW)

    def test_immediates_lengthen_encodings(self):
        assert mean_length(InstrClass.LOAD_IMM) > mean_length(InstrClass.REG_MOV)


class TestEncodedLength:
    @given(st.sampled_from(list(InstrClass)), st.integers(0, 2**31))
    def test_draw_stays_in_class_range(self, iclass, seed):
        lo, hi = LENGTH_RANGES[iclass]
        assert lo <= encoded_length(iclass, random.Random(seed)) <= hi

    def test_deterministic_under_seed(self):
        draws1 = [encoded_length(InstrClass.LOAD, random.Random(42)) for _ in range(1)]
        draws2 = [encoded_length(InstrClass.LOAD, random.Random(42)) for _ in range(1)]
        assert draws1 == draws2

    def test_draws_cover_the_range(self):
        rng = random.Random(1)
        lo, hi = LENGTH_RANGES[InstrClass.LOAD]
        seen = {encoded_length(InstrClass.LOAD, rng) for _ in range(300)}
        assert min(seen) == lo and max(seen) == hi

    def test_mean_length_matches_range_midpoint(self):
        lo, hi = LENGTH_RANGES[InstrClass.COMPARE]
        assert mean_length(InstrClass.COMPARE) == pytest.approx((lo + hi) / 2)
