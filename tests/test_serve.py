"""The ``repro serve`` front end: HTTP routes, jobs, warm-path guarantees.

Every test drives the real asyncio server on an ephemeral port with raw
stream requests — the same bytes ``curl`` would send — so the stdlib
HTTP layer is exercised end to end.  The acceptance-critical property is
:class:`TestWarmPath`: a warm figure request performs zero simulations
and never instantiates a worker pool.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments import engine as engine_mod
from repro.experiments.runner import ExperimentRunner
from repro.serve import ReproService, ServiceError, start_server

MODELS = ["N", "W", "TON", "TOW"]  # what the headline figure consumes


def _service(tmp_path, **kwargs):
    kwargs.setdefault("store_root", tmp_path / "store")
    kwargs.setdefault("jobs", 1)
    return ReproService(**kwargs)


def _warm_store(service, length=1200, max_apps=1):
    """Fill the service's store with the headline grid, sharing its root."""
    runner = ExperimentRunner(
        length=length, max_apps=max_apps, jobs=1, cache=True,
        cache_dir=service.store.root,
    )
    runner.grid(MODELS, runner.applications())
    return runner.applications()


async def _request(port, method, path, payload=None):
    """One raw HTTP/1.1 exchange; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    writer.write((head + "\r\n").encode("ascii") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    _, _, content = raw.partition(b"\r\n\r\n")
    return status, json.loads(content) if content.strip() else None


async def _stream(port, path):
    """GET an NDJSON endpoint; returns (status, [event, ...])."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: test\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    _, _, content = raw.partition(b"\r\n\r\n")
    events = [json.loads(line) for line in content.splitlines() if line]
    return status, events


def _serve(service, scenario):
    """Run ``await scenario(port)`` against a live server, then tear down."""

    async def main():
        server = await start_server(service, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await scenario(port)
        finally:
            server.close()
            await server.wait_closed()
            service.close()

    return asyncio.run(main())


class TestRoutes:
    def test_healthz(self, tmp_path):
        async def scenario(port):
            assert await _request(port, "GET", "/healthz") == \
                (200, {"status": "ok"})
            status, body = await _request(port, "POST", "/healthz")
            assert status == 405 and "error" in body

        _serve(_service(tmp_path), scenario)

    def test_unknown_routes_are_404(self, tmp_path):
        async def scenario(port):
            for path in ("/nope", "/api/nope", "/api/jobs/zz/extra/deep"):
                status, body = await _request(port, "GET", path)
                assert status == 404 and "error" in body

        _serve(_service(tmp_path), scenario)

    def test_malformed_request_line_is_400(self, tmp_path):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b"400" in raw.split(b"\r\n", 1)[0]

        _serve(_service(tmp_path), scenario)

    def test_status_reports_store_and_cache(self, tmp_path):
        service = _service(tmp_path)

        async def scenario(port):
            status, body = await _request(port, "GET", "/api/status")
            assert status == 200
            assert body["store"]["entries"] == 0
            assert body["jobs"] == []
            assert set(body["cache"]) == {"hits", "misses", "lru_hits"}

        _serve(service, scenario)


class TestResultLookup:
    def test_missing_params_are_400(self, tmp_path):
        async def scenario(port):
            status, body = await _request(port, "GET", "/api/result?model=N")
            assert status == 400 and "app" in body["error"]

        _serve(_service(tmp_path), scenario)

    def test_cold_lookup_is_404_and_never_simulates(self, tmp_path):
        service = _service(tmp_path)

        async def scenario(port):
            status, body = await _request(
                port, "GET", "/api/result?model=N&app=swim&length=1200"
            )
            assert status == 404 and "POST /api/jobs" in body["error"]

        _serve(service, scenario)
        assert service.store.writes == 0  # a GET never computes

    def test_warm_lookup_answers_with_metrics_and_lru(self, tmp_path):
        service = _service(tmp_path, lru=8)
        apps = _warm_store(service)
        app = apps[0].name

        async def scenario(port):
            path = f"/api/result?model=N&app={app}&length=1200"
            status, first = await _request(port, "GET", path)
            assert status == 200
            assert first["model"] == "N" and first["app"] == app
            assert first["metrics"]["ipc"] > 0
            assert first["metrics"]["energy"] > 0
            status, second = await _request(port, "GET", path)
            assert status == 200 and second["lru"] is True

        _serve(service, scenario)

    def test_unknown_names_are_400(self, tmp_path):
        service = _service(tmp_path)
        with pytest.raises(ServiceError) as err:
            service.lookup("NOPE", "swim", None, None)
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.lookup("N", "nope", None, None)
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.lookup("N", "swim", "zero", None)
        assert err.value.status == 400
        service.close()


class TestJobs:
    def test_bad_specs_are_rejected_at_submit(self, tmp_path):
        async def scenario(port):
            for spec in (
                ["not", "an", "object"],
                {"kind": "nope"},
                {"kind": "figure", "figure": "fig9_9"},
                {"kind": "sweep", "models": ["NOPE"]},
                {"kind": "sweep", "apps": "several"},
                {"kind": "sweep", "length": 0},
            ):
                status, body = await _request(port, "POST", "/api/jobs", spec)
                assert status == 400 and "error" in body

        _serve(_service(tmp_path), scenario)

    def test_unknown_job_is_404(self, tmp_path):
        async def scenario(port):
            status, body = await _request(port, "GET", "/api/jobs/job-99")
            assert status == 404

        _serve(_service(tmp_path), scenario)

    def test_sweep_job_streams_progress_and_warms_the_store(self, tmp_path):
        service = _service(tmp_path)

        async def scenario(port):
            spec = {"kind": "sweep", "models": ["N"], "apps": ["swim"],
                    "length": 1200}
            status, submitted = await _request(
                port, "POST", "/api/jobs", spec
            )
            assert status == 202 and submitted["state"] in \
                ("queued", "running", "done")
            job_id = submitted["id"]
            status, events = await _stream(
                port, f"/api/jobs/{job_id}/events"
            )
            assert status == 200
            assert events[0] == {"event": "state", "state": "running"}
            done = events[-1]
            assert done["event"] == "done"
            assert done["result"]["simulated"] == 1
            assert done["result"]["rows"][0]["model"] == "N"
            progress = [e for e in events if e["event"] == "progress"]
            assert progress and progress[-1]["done"] == 1

            # The same job again: fully warm, zero simulations.
            status, again = await _request(port, "POST", "/api/jobs", spec)
            status, events = await _stream(
                port, f"/api/jobs/{again['id']}/events"
            )
            final = events[-1]["result"]
            assert final["simulated"] == 0 and final["from_store"] == 1

            status, listed = await _request(port, "GET", "/api/jobs")
            assert [job["state"] for job in listed] == ["done", "done"]

        _serve(service, scenario)

    def test_failed_job_reports_the_error(self, tmp_path):
        service = _service(tmp_path)

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic job failure")

        service._execute_sweep = boom

        async def scenario(port):
            _, submitted = await _request(
                port, "POST", "/api/jobs", {"kind": "sweep", "models": ["N"]}
            )
            _, events = await _stream(
                port, f"/api/jobs/{submitted['id']}/events"
            )
            assert events[-1]["event"] == "failed"
            assert "synthetic job failure" in events[-1]["error"]

        _serve(service, scenario)


class TestWarmPath:
    def test_warm_figure_zero_simulations_no_worker_pool(
        self, tmp_path, monkeypatch
    ):
        # The acceptance criterion: with the store pre-warmed by shard
        # hosts, a figure request must not simulate anything — and must
        # never even instantiate a process pool.  The monkeypatch turns
        # any pool construction into a hard failure.
        service = _service(tmp_path, lru=32)
        _warm_store(service, length=1200, max_apps=1)

        def no_pool(*args, **kwargs):
            raise AssertionError("worker pool spawned on the warm path")

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", no_pool)

        async def scenario(port):
            status, body = await _request(
                port, "GET", "/api/figure/headline?apps=1&length=1200"
            )
            assert status == 200
            assert body["simulated"] == 0
            assert body["from_store"] == len(MODELS)
            assert "headline" in body["figure"]
            assert body["text"]

        _serve(service, scenario)

    def test_unknown_figure_is_404(self, tmp_path):
        async def scenario(port):
            status, body = await _request(port, "GET", "/api/figure/fig9_9")
            assert status == 404 and "known" in body["error"]

        _serve(_service(tmp_path), scenario)
