"""Unit tests: architectural register description (repro.isa.registers)."""

import pytest

from repro.isa.registers import (
    FLAGS_REG,
    FP_REG_BASE,
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_NONE,
    STACK_REG,
    is_fp_reg,
    is_int_reg,
    is_valid_reg,
    register_name,
)


class TestRegisterLayout:
    def test_register_spaces_disjoint(self):
        ints = {r for r in range(NUM_ARCH_REGS) if is_int_reg(r)}
        fps = {r for r in range(NUM_ARCH_REGS) if is_fp_reg(r)}
        assert not ints & fps
        assert FLAGS_REG not in ints | fps

    def test_counts(self):
        assert NUM_ARCH_REGS == NUM_INT_REGS + NUM_FP_REGS + 1

    def test_stack_register_is_integer(self):
        assert is_int_reg(STACK_REG)

    def test_flags_is_last(self):
        assert FLAGS_REG == NUM_ARCH_REGS - 1
        assert is_valid_reg(FLAGS_REG)

    def test_sentinel_not_valid(self):
        assert not is_valid_reg(REG_NONE)
        assert not is_valid_reg(NUM_ARCH_REGS)


class TestRegisterNames:
    @pytest.mark.parametrize(
        "reg,expected",
        [
            (0, "r0"),
            (NUM_INT_REGS - 1, f"r{NUM_INT_REGS - 1}"),
            (FP_REG_BASE, "f0"),
            (FLAGS_REG, "flags"),
            (REG_NONE, "--"),
        ],
    )
    def test_names(self, reg, expected):
        assert register_name(reg) == expected

    def test_names_unique_over_valid_registers(self):
        names = [register_name(r) for r in range(NUM_ARCH_REGS)]
        assert len(set(names)) == len(names)
