"""Unit + integration tests: aggregation, runner, figure generators."""

import math

import pytest

from repro.core.results import SimulationResult
from repro.experiments.aggregate import (
    OVERALL,
    arithmetic_mean,
    by_suite,
    geomean,
    paired_ratio_by_suite,
)
from repro.experiments.figures import (
    FIGURE_GENERATORS,
    FigureData,
    fig4_1,
    fig4_7,
    fig4_8,
    fig4_11,
    headline,
    table3_1,
    table3_2,
)
from repro.experiments.engine import Scale
from repro.experiments.runner import ExperimentRunner, bench_scale


def _result(app, suite, ipc=1.0, energy=1000.0, instructions=1000):
    result = SimulationResult(app_name=app, suite=suite, model_name="X")
    result.instructions = instructions
    result.cycles = instructions / ipc
    from repro.power.energy import EnergyResult
    result.energy = EnergyResult(dynamic=energy, leakage=0.0)
    return result


class TestAggregation:
    def test_geomean_basics(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0, 5]) == pytest.approx(5.0)  # non-positives skipped

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_by_suite_groups_and_overall(self):
        results = [
            _result("a", "SpecInt", ipc=1.0),
            _result("b", "SpecInt", ipc=4.0),
            _result("c", "SpecFP", ipc=2.0),
        ]
        out = by_suite(results, lambda r: r.ipc)
        assert out["SpecInt"] == pytest.approx(2.0)
        assert out["SpecFP"] == pytest.approx(2.0)
        assert out[OVERALL] == pytest.approx((1 * 4 * 2) ** (1 / 3))

    def test_paired_ratio(self):
        base = [_result("a", "SpecInt", ipc=1.0), _result("b", "SpecFP", ipc=2.0)]
        test = [_result("a", "SpecInt", ipc=1.2), _result("b", "SpecFP", ipc=2.2)]
        out = paired_ratio_by_suite(test, base, lambda r: r.ipc)
        assert out["SpecInt"] == pytest.approx(0.2)
        assert out[OVERALL] == pytest.approx(math.sqrt(1.2 * 1.1) - 1)


class TestRunner:
    def test_memoisation(self):
        runner = ExperimentRunner(length=1500, max_apps=2)
        first = runner.result("N", "gzip")
        assert runner.result("N", "gzip") is first
        assert runner.runs_cached == 1

    def test_grid_shares_cache(self):
        runner = ExperimentRunner(length=1500, max_apps=2)
        runner.grid(["N", "TON"])
        cached = runner.runs_cached
        runner.grid(["N", "TON"])
        assert runner.runs_cached == cached

    def test_unknown_model_rejected(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            ExperimentRunner().result("QQ", "gzip")

    def test_from_environment_uses_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "all")
        monkeypatch.setenv("REPRO_BENCH_LENGTH", "1234")
        monkeypatch.setenv("REPRO_BENCH_JOBS", "2")
        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        runner = ExperimentRunner.from_environment()
        assert runner.max_apps is None and runner.length == 1234
        assert runner.jobs == 2 and runner.cache is False

    def test_bench_scale_shim_deprecated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "all")
        monkeypatch.setenv("REPRO_BENCH_LENGTH", "1234")
        with pytest.warns(DeprecationWarning, match="Scale.from_environment"):
            max_apps, length = bench_scale()
        assert max_apps is None and length == 1234

    def test_bench_scale_shim_matches_scale_defaults(self, monkeypatch):
        for var in ("REPRO_BENCH_APPS", "REPRO_BENCH_LENGTH"):
            monkeypatch.delenv(var, raising=False)
        with pytest.warns(DeprecationWarning):
            max_apps, length = bench_scale()
        scale = Scale.from_environment()
        assert (max_apps, length) == (scale.apps, scale.length) == (15, 20000)

    def test_runner_exposes_engine_counters(self, tmp_path):
        runner = ExperimentRunner(
            length=1200, max_apps=2, cache=True, cache_dir=tmp_path
        )
        runner.result("N", "gzip")
        assert runner.simulations_run == 1 and runner.cache_hits == 0
        runner.result("N", "gzip")  # memo hit: no store read, no run
        assert runner.simulations_run == 1 and runner.cache_hits == 0

        fresh = ExperimentRunner(
            length=1200, max_apps=2, cache=True, cache_dir=tmp_path
        )
        assert fresh.result("N", "gzip") == runner.result("N", "gzip")
        assert fresh.simulations_run == 0 and fresh.cache_hits == 1


@pytest.fixture(scope="module")
def small_runner():
    return ExperimentRunner(length=4000, max_apps=5)


class TestFigures:
    def test_fig4_1_structure(self, small_runner):
        fig = fig4_1(small_runner)
        assert set(fig.series) == {"TN/N", "TON/N", "TW/W", "TOW/W"}
        assert OVERALL in fig.series["TON/N"]
        assert "Figure 4.1" in fig.format()

    def test_fig4_7_has_three_series(self, small_runner):
        fig = fig4_7(small_runner)
        assert len(fig.series) == 3
        for values in fig.series.values():
            assert all(v >= 0 for v in values.values())

    def test_fig4_8_coverage_in_unit_interval(self, small_runner):
        fig = fig4_8(small_runner)
        for value in fig.series["coverage"].values():
            assert 0.0 <= value <= 1.0

    def test_fig4_11_shares_sum_to_one(self, small_runner):
        fig = fig4_11(small_runner)
        for label, shares in fig.series.items():
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6), label

    def test_headline_contains_three_models(self, small_runner):
        fig = headline(small_runner)
        assert set(fig.series) == {"W", "TON", "TOW"}

    def test_all_generators_run(self, small_runner):
        for name, generator in FIGURE_GENERATORS.items():
            fig = generator(small_runner)
            assert isinstance(fig, FigureData)
            assert fig.series, name
            assert fig.format()

    def test_tables_render(self):
        assert "TON" in table3_1()
        t32 = table3_2()
        assert "TOS" in t32 and "4096" in t32

    def test_format_handles_missing_groups(self):
        fig = FigureData("F", "t")
        fig.series["a"] = {"g1": 0.5}
        fig.series["b"] = {"g2": 0.25}
        text = fig.format()
        assert "g1" in text and "g2" in text and "-" in text
