"""Unit + property tests: trace identifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.tid import TidBuilder, TraceId


class TestTraceId:
    def test_equality_includes_instruction_count(self):
        """Branchless joined traces are only distinguishable by length."""
        a = TraceId(0x100, 0b101, 3, num_instructions=10)
        b = TraceId(0x100, 0b101, 3, num_instructions=99)
        assert a != b
        same = TraceId(0x100, 0b101, 3, num_instructions=10)
        assert a == same and hash(a) == hash(same)

    def test_branchless_join_does_not_alias_single_iteration(self):
        single = TraceId(0x100, 0, 0, num_instructions=3)
        joined = TraceId(0x100, 0, 0, num_instructions=6)
        assert single != joined

    def test_inequality_on_directions(self):
        assert TraceId(0x100, 0b101, 3) != TraceId(0x100, 0b111, 3)

    def test_inequality_on_branch_count(self):
        # Trailing not-taken branches must be distinguished.
        assert TraceId(0x100, 0b1, 1) != TraceId(0x100, 0b1, 2)

    def test_direction_accessor(self):
        tid = TraceId(0x100, 0b101, 3)
        assert tid.direction(0) is True
        assert tid.direction(1) is False
        assert tid.direction(2) is True

    def test_direction_out_of_range(self):
        with pytest.raises(IndexError):
            TraceId(0x100, 0b1, 1).direction(1)

    def test_direction_string(self):
        assert TraceId(0x100, 0b011, 3).direction_string() == "TTN"
        assert TraceId(0x100, 0, 0).direction_string() == ""

    def test_negative_branch_count_rejected(self):
        with pytest.raises(ValueError):
            TraceId(0x100, 0, -1)


class TestTidBuilder:
    def test_accumulates_in_order(self):
        builder = TidBuilder(0x400)
        for direction in (True, False, True, True):
            builder.record_instruction()
            builder.record_branch(direction)
        tid = builder.build()
        assert tid.start == 0x400
        assert tid.num_branches == 4
        assert tid.direction_string() == "TNTT"
        assert tid.num_instructions == 4

    def test_branchless_trace(self):
        builder = TidBuilder(0x500)
        builder.record_instruction()
        tid = builder.build()
        assert tid.num_branches == 0 and tid.num_instructions == 1

    @given(st.lists(st.booleans(), max_size=40))
    def test_roundtrip_directions(self, directions):
        builder = TidBuilder(0x1000)
        for direction in directions:
            builder.record_branch(direction)
        tid = builder.build()
        assert [tid.direction(i) for i in range(len(directions))] == directions

    @given(st.lists(st.booleans(), min_size=1, max_size=30),
           st.lists(st.booleans(), min_size=1, max_size=30))
    def test_distinct_direction_lists_give_distinct_tids(self, d1, d2):
        def build(directions):
            builder = TidBuilder(0x1000)
            for direction in directions:
                builder.record_branch(direction)
            return builder.build()

        if d1 != d2:
            assert build(d1) != build(d2)
        else:
            assert build(d1) == build(d2)
