"""Adaptive (phase-aware) sampling: scheduling, plumbing and fault injection.

The scheduler's happy path is pinned by the accuracy-regression suite
(``tests/test_sampling_accuracy.py``); this module covers everything
around it:

* config plumbing — the ``adaptive`` parse grammar, the tuned defaults,
  store-key separation from fixed mode, and the engine/environment
  surfaces (``Scale``, ``REPRO_BENCH_SAMPLING``);
* scheduling behaviour — recurring phases actually reuse measurements,
  and the estimate reports its per-phase breakdown;
* fault injection — the scheduler's edge cases (stream shorter than the
  minimum interval budget, a phase that never recurs, confidence targets
  unreachable within the stream) must degrade to fixed-interval
  behaviour with a :class:`~repro.errors.SamplingWarning`, never crash
  and never silently extrapolate.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.core.simulator import ParrotSimulator, RunOptions
from repro.errors import ConfigurationError, SamplingWarning
from repro.experiments.engine import resolve_run_options, run_key
from repro.models.configs import model_config
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import application

#: Small, fast interval regime reused by every scheduling test.
SMALL = dict(detail=500, gap=1500, warmup=300, func_warm=500)


def _simulate(app_name, model_name, length, sampling, **opt_kwargs):
    return ParrotSimulator(model_config(model_name)).simulate(
        application(app_name),
        RunOptions(sampling=sampling, estimate=True, **opt_kwargs),
        length=length,
    )


class TestAdaptiveConfig:
    def test_parse_bare_adaptive_selects_tuned_defaults(self):
        assert SamplingConfig.parse("adaptive") == SamplingConfig.adaptive()
        assert SamplingConfig.parse("adaptive:on") == SamplingConfig.adaptive()

    def test_tuned_defaults(self):
        cfg = SamplingConfig.adaptive()
        assert cfg.mode == "adaptive"
        assert (cfg.warmup, cfg.func_warm) == (3000, 4000)
        assert cfg.confidence == 0.90
        assert (cfg.ipc_target, cfg.epi_target) == (0.2, 0.15)
        assert cfg.phase_refresh == 4
        # Overrides apply; the mode cannot be overridden away.
        assert SamplingConfig.adaptive(detail=2000).detail == 2000
        assert SamplingConfig.adaptive(mode="fixed").mode == "adaptive"

    def test_parse_positional_adaptive_spec(self):
        cfg = SamplingConfig.parse("adaptive:2000:18000:1000")
        assert cfg == SamplingConfig.adaptive(
            detail=2000, gap=18000, warmup=1000
        )
        # An unspecified confidence takes the tuned 0.90, not the fixed
        # default; an explicit one wins.
        assert cfg.confidence == 0.90
        explicit = SamplingConfig.parse("adaptive:2000:18000:1000:0.99")
        assert explicit.confidence == 0.99

    def test_parse_fixed_grammar_is_unchanged(self):
        assert SamplingConfig.parse("on") == SamplingConfig()
        assert SamplingConfig.parse("2000:18000:1000").confidence == 0.95
        assert SamplingConfig.parse("off") is None

    def test_fixed_fingerprint_has_no_phase_knobs(self):
        fixed = SamplingConfig()
        assert "mode=" not in fixed.fingerprint()
        adaptive = SamplingConfig.adaptive()
        assert "mode=adaptive" in adaptive.fingerprint()
        assert "phase_threshold=" in adaptive.fingerprint()

    def test_as_fixed_round_trip(self):
        adaptive = SamplingConfig.adaptive()
        fixed = adaptive.as_fixed()
        assert fixed.mode == "fixed"
        assert (fixed.detail, fixed.gap, fixed.warmup, fixed.func_warm) == (
            adaptive.detail, adaptive.gap, adaptive.warmup,
            adaptive.func_warm,
        )
        assert fixed.as_fixed() is fixed

    def test_adaptive_and_fixed_never_share_a_store_key(self):
        config = model_config("TON")
        adaptive = SamplingConfig.adaptive()
        assert run_key(config, "swim", 200_000, adaptive) != run_key(
            config, "swim", 200_000, adaptive.as_fixed()
        )

    def test_engine_resolves_adaptive_specs(self, monkeypatch):
        options = resolve_run_options("adaptive")
        assert options.sampling == SamplingConfig.adaptive()
        monkeypatch.setenv("REPRO_BENCH_SAMPLING", "adaptive")
        assert resolve_run_options().sampling == SamplingConfig.adaptive()

    def test_rejects_bad_phase_knobs(self):
        with pytest.raises(ConfigurationError, match="phase_threshold"):
            SamplingConfig(mode="adaptive", phase_threshold=3.0)
        with pytest.raises(ConfigurationError, match="targets"):
            SamplingConfig(mode="adaptive", ipc_target=0.0)
        with pytest.raises(ConfigurationError, match="min_phase_intervals"):
            SamplingConfig(mode="adaptive", min_phase_intervals=1)
        with pytest.raises(ConfigurationError, match="phase_refresh"):
            SamplingConfig(mode="adaptive", phase_refresh=-1)
        with pytest.raises(ConfigurationError, match="mode"):
            SamplingConfig(mode="dynamic")


class TestAdaptiveScheduling:
    def test_recurring_phases_reuse_measurements(self):
        cfg = SamplingConfig(mode="adaptive", phase_threshold=0.3, **SMALL)
        periods = 30_000 // cfg.period
        run = _simulate("swim", "TON", 30_000, cfg)
        estimate = run.estimate
        assert estimate.mode == "adaptive"
        assert estimate.phases
        # Reuse is the whole point: fewer detailed intervals than periods.
        assert len(estimate.intervals) < periods
        covered = sum(p.periods for p in estimate.phases)
        assert covered == periods
        assert math.isclose(sum(p.weight for p in estimate.phases), 1.0)
        # The extrapolated result still represents the whole stream.
        assert run.result.instructions == 30_000

    def test_single_sample_phase_reports_unbounded_interval(self):
        cfg = SamplingConfig(mode="adaptive", phase_threshold=0.3, **SMALL)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SamplingWarning)
            run = _simulate("gcc", "N", 30_000, cfg)
        singles = [p for p in run.estimate.phases if p.measured == 1]
        assert singles, "expected at least one single-sample phase"
        for phase in singles:
            assert not phase.closed
            assert phase.ipc.half_width == math.inf

    def test_deterministic_across_repeats(self):
        cfg = SamplingConfig(mode="adaptive", phase_threshold=0.3, **SMALL)
        first = _simulate("swim", "TON", 30_000, cfg)
        second = _simulate("swim", "TON", 30_000, cfg)
        assert first.result.to_dict() == second.result.to_dict()
        assert first.estimate.ipc.mean == second.estimate.ipc.mean


class TestAdaptiveFaultInjection:
    """Edge cases degrade to fixed behaviour with a warning — no crashes."""

    def test_short_stream_falls_back_to_fixed(self):
        cfg = SamplingConfig(mode="adaptive", **SMALL)
        with pytest.warns(SamplingWarning,
                          match="falling back to fixed-interval sampling"):
            run = _simulate("swim", "TON", 5000, cfg)
        assert run.estimate.mode == "fixed"
        assert not run.estimate.phases
        # Bit-identical to running the fixed twin directly.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SamplingWarning)
            fixed = _simulate("swim", "TON", 5000, cfg.as_fixed())
        assert run.result.to_dict() == fixed.result.to_dict()

    def test_never_recurring_phases_degrade_with_warning(self):
        # threshold 0: signatures only merge when exactly identical, so
        # every period founds a new phase and nothing is ever reusable.
        cfg = SamplingConfig(mode="adaptive", phase_threshold=0.0, **SMALL)
        with pytest.warns(SamplingWarning,
                          match="degraded to fixed-interval behaviour"):
            run = _simulate("gcc", "N", 20_000, cfg)
        periods = 20_000 // cfg.period
        # Degraded means fixed-equivalent detail spend: every period paid.
        assert len(run.estimate.intervals) == periods
        assert len(run.estimate.phases) == periods
        assert run.result.instructions == 20_000

    def test_unreachable_confidence_target_degrades_with_warning(self):
        cfg = SamplingConfig(mode="adaptive", ipc_target=1e-9,
                             epi_target=1e-9, **SMALL)
        with pytest.warns(SamplingWarning,
                          match="degraded to fixed-interval behaviour"):
            run = _simulate("swim", "TON", 20_000, cfg)
        # The targets can never close, so every period measured.
        assert len(run.estimate.intervals) == 20_000 // cfg.period
        assert all(not p.closed for p in run.estimate.phases)

    def test_open_phases_at_end_warn_instead_of_silently_extrapolating(self):
        cfg = SamplingConfig(mode="adaptive", phase_threshold=0.3, **SMALL)
        with pytest.warns(SamplingWarning,
                          match="confidence targets unmet"):
            run = _simulate("gcc", "N", 30_000, cfg)
        open_phases = [p for p in run.estimate.phases if not p.closed]
        assert open_phases
        # Reuse did happen for the closed phases...
        assert len(run.estimate.intervals) < 30_000 // cfg.period
        # ...and the open ones still carry their honest (wide) intervals.
        assert run.result.instructions == 30_000

    def test_fault_paths_never_crash_either_backend(self):
        from repro.pipeline.columnar import ExecutionBackend
        cfg = SamplingConfig(mode="adaptive", phase_threshold=0.0, **SMALL)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SamplingWarning)
            scalar = _simulate("eon", "TOW", 20_000, cfg)
            columnar = _simulate(
                "eon", "TOW", 20_000, cfg,
                backend=ExecutionBackend.COLUMNAR,
            )
        assert scalar.result.to_dict() == columnar.result.to_dict()
