"""Unit tests: next-TID trace predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.frontend.trace_predictor import TracePredictor
from repro.trace.tid import TraceId


def tid(start: int) -> TraceId:
    return TraceId(start=start, directions=0, num_branches=0)


A, B, C = tid(0x100), tid(0x200), tid(0x300)


class TestConstruction:
    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigurationError):
            TracePredictor(1000)

    def test_bad_history_rejected(self):
        with pytest.raises(ConfigurationError):
            TracePredictor(1024, history_length=0)

    def test_bad_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            TracePredictor(1024, mispredict_penalty=0)


class TestPrediction:
    def test_unseen_history_predicts_nothing(self):
        predictor = TracePredictor(1024)
        assert predictor.predict() is None

    def test_learns_repeating_sequence(self):
        predictor = TracePredictor(1024, confidence_threshold=2)
        sequence = [A, B, C] * 20
        correct = 0
        for t in sequence:
            if predictor.predict() == t:
                correct += 1
            predictor.train(t)
        assert correct > 45  # learns after a few periods

    def test_confidence_gates_prediction(self):
        predictor = TracePredictor(1024, confidence_threshold=2)
        predictor.train(A)
        predictor.train(B)  # history now [A, B]; entry for next unseen
        # After a single sighting of the (A,B)->C transition, confidence 1 < 2.
        predictor.train(C)
        # Recreate the same history: predict should still be unconfident.
        predictor.train(A)
        predictor.train(B)
        assert predictor.predict() is None

    def test_loop_body_and_exit_coexist_in_set(self):
        """Two-way sets let the dominant and the exit TID share a history."""
        predictor = TracePredictor(1024, confidence_threshold=1)
        # A A A A B | A A A A B ... history (A,A) maps to both A and B.
        for _ in range(30):
            for t in (A, A, A, A, B):
                predictor.train(t)
        # Both continuations stay resident: a confident prediction exists
        # (single-way tables would thrash between A and B and predict None).
        predictor.train(A)
        predictor.train(A)
        assert predictor.predict() in (A, B)

    def test_mispredict_penalty_drains_confidence(self):
        gentle = TracePredictor(1024, confidence_threshold=2, mispredict_penalty=1)
        harsh = TracePredictor(1024, confidence_threshold=2, mispredict_penalty=3)
        for predictor in (gentle, harsh):
            for _ in range(10):
                predictor.train(A)  # saturate (A,A)->A
        # One wrong outcome at the same history context:
        gentle.train(B)
        harsh.train(B)
        # Rebuild identical history (A,A):
        for predictor in (gentle, harsh):
            predictor.train(A)
            predictor.train(A)
        assert gentle.predict() == A      # conf 3-1=2 >= 2: still confident
        assert harsh.predict() is None    # conf 3-3=0: must re-earn

    def test_train_reports_acted_mispredictions(self):
        predictor = TracePredictor(1024, confidence_threshold=1)
        for _ in range(5):
            predictor.train(A)
        assert predictor.train(B) is True
        assert predictor.stats.mispredictions == 1

    def test_stats_consistency(self):
        predictor = TracePredictor(1024, confidence_threshold=1)
        for t in [A, A, B, A, A, B] * 10:
            predictor.predict()
            predictor.train(t)
        stats = predictor.stats
        assert stats.correct + stats.mispredictions == stats.predictions
        assert 0.0 <= stats.misprediction_rate <= 1.0

    def test_reset(self):
        predictor = TracePredictor(1024)
        for _ in range(10):
            predictor.train(A)
        predictor.reset()
        assert predictor.predict() is None
        assert predictor.stats.lookups == 1
