"""Unit tests: Uop / MacroInstruction / DynamicInstruction data types."""

from repro.isa.decoder import decode_template
from repro.isa.instruction import DynamicInstruction, MacroInstruction, Uop, disassemble
from repro.isa.opcodes import InstrClass, UopKind
from repro.isa.registers import FLAGS_REG, REG_NONE


def _alu(dest=0, src1=1, src2=2, imm=None):
    return Uop(UopKind.ALU, dest, src1, src2, imm)


class TestUop:
    def test_sources_excludes_sentinels(self):
        assert _alu().sources() == (1, 2)
        assert Uop(UopKind.MOV_IMM, 0, imm=5).sources() == ()

    def test_sources_includes_extras(self):
        uop = _alu()
        uop.extra_srcs = (3, 4)
        assert uop.sources() == (1, 2, 3, 4)

    def test_destinations(self):
        uop = _alu()
        assert uop.destinations() == (0,)
        uop.dest2 = 5
        assert uop.destinations() == (0, 5)

    def test_copy_is_independent(self):
        uop = _alu(imm=9)
        clone = uop.copy()
        clone.dest = 7
        clone.imm = 1
        assert uop.dest == 0 and uop.imm == 9

    def test_copy_preserves_all_fields(self):
        uop = Uop(UopKind.SIMD2, 0, 1, 2, None, origin=3, dest2=4, extra_srcs=(5, 6))
        clone = uop.copy()
        assert clone == uop

    def test_is_mem(self):
        assert Uop(UopKind.LOAD, 0, 1).is_mem
        assert Uop(UopKind.STORE, REG_NONE, 1, 2).is_mem
        assert not _alu().is_mem

    def test_is_cti(self):
        assert Uop(UopKind.BRANCH, REG_NONE, FLAGS_REG).is_cti
        assert not _alu().is_cti

    def test_latency_and_fu_match_tables(self):
        uop = Uop(UopKind.FP_MUL, 16, 17, 18)
        assert uop.latency == 5
        assert uop.fu_class.name == "FP"


class TestMacroInstruction:
    def _instr(self, iclass=InstrClass.SIMPLE_ALU, address=0x1000, length=3,
               target=None):
        return MacroInstruction(
            address=address,
            length=length,
            iclass=iclass,
            uops=decode_template(iclass, dest=0, src1=1, src2=2, imm=1),
            taken_target=target,
        )

    def test_fallthrough(self):
        assert self._instr(address=0x1000, length=3).fallthrough == 0x1003

    def test_is_cti(self):
        assert not self._instr().is_cti
        branch = MacroInstruction(
            address=0x1000, length=2, iclass=InstrClass.COND_BRANCH,
            uops=decode_template(InstrClass.COND_BRANCH), taken_target=0x900,
        )
        assert branch.is_cti

    def test_num_uops(self):
        rmw = MacroInstruction(
            address=0, length=4, iclass=InstrClass.RMW,
            uops=decode_template(InstrClass.RMW, dest=0, src1=1, src2=2),
        )
        assert rmw.num_uops == 3


class TestDynamicInstruction:
    def test_wraps_static(self):
        instr = MacroInstruction(
            address=0x2000, length=2, iclass=InstrClass.SIMPLE_ALU,
            uops=decode_template(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2),
        )
        dyn = DynamicInstruction(instr, taken=False, next_address=0x2002)
        assert dyn.address == 0x2000
        assert not dyn.is_cti
        assert dyn.mem_addr is None


class TestDisassembly:
    def test_disassemble_produces_one_line_per_instruction(self):
        instrs = [
            MacroInstruction(
                address=0x1000 + i * 3, length=3, iclass=InstrClass.SIMPLE_ALU,
                uops=decode_template(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2),
            )
            for i in range(4)
        ]
        lines = disassemble(instrs)
        assert len(lines) == 4
        assert all(line.num_uops == 1 for line in lines)

    def test_disassemble_annotates_cti_targets(self):
        branch = MacroInstruction(
            address=0x1000, length=2, iclass=InstrClass.COND_BRANCH,
            uops=decode_template(InstrClass.COND_BRANCH), taken_target=0xF00,
        )
        (line,) = disassemble([branch])
        assert "0xf00" in line.comment
