"""Unit + integration tests: deterministic trace selection (§2.2)."""

import pytest

from repro.core.simulator import segment_stream
from repro.isa.decoder import decode_template
from repro.isa.instruction import DynamicInstruction, MacroInstruction
from repro.isa.opcodes import InstrClass
from repro.trace.selection import TraceSelector
from repro.trace.trace import TRACE_CAPACITY_UOPS


def _dyn(address, iclass=InstrClass.SIMPLE_ALU, taken=False, target=None,
         length=4, next_address=None):
    instr = MacroInstruction(
        address=address, length=length, iclass=iclass,
        uops=decode_template(iclass, dest=0, src1=1, src2=2, imm=3),
        taken_target=target,
    )
    if next_address is None:
        next_address = target if taken else instr.fallthrough
    return DynamicInstruction(instr, taken=taken, next_address=next_address)


def _feed_all(selector, instrs):
    segments = []
    for dyn in instrs:
        segments.extend(selector.feed(dyn))
    segments.extend(selector.flush())
    return segments


class TestTermination:
    def test_backward_taken_branch_terminates(self):
        instrs = [
            _dyn(0x1000),
            _dyn(0x1004, InstrClass.COND_BRANCH, taken=True, target=0x1000),
            _dyn(0x1000),
        ]
        segments = _feed_all(TraceSelector(), instrs)
        assert len(segments) == 2
        assert segments[0].num_instructions == 2
        assert segments[0].tid.direction_string() == "T"

    def test_forward_taken_branch_continues(self):
        instrs = [
            _dyn(0x1000, InstrClass.COND_BRANCH, taken=True, target=0x2000),
            _dyn(0x2000),
        ]
        segments = _feed_all(TraceSelector(), instrs)
        assert len(segments) == 1
        assert segments[0].num_instructions == 2

    def test_indirect_jump_terminates(self):
        instrs = [
            _dyn(0x1000),
            _dyn(0x1004, InstrClass.INDIRECT_JUMP, taken=True, target=None,
                 next_address=0x3000),
            _dyn(0x3000),
        ]
        segments = _feed_all(TraceSelector(), instrs)
        assert segments[0].num_instructions == 2
        assert TraceSelector().terminations is not None

    def test_software_interrupt_terminates(self):
        instrs = [
            _dyn(0x1000, InstrClass.SOFTWARE_INT, taken=False, target=None),
            _dyn(0x1002),
        ]
        selector = TraceSelector()
        segments = _feed_all(selector, instrs)
        assert segments[0].num_instructions == 1
        assert selector.terminations["exception"] == 1

    def test_return_inside_context_is_inlined(self):
        """CALL then RETURN stays in one trace (the context counter)."""
        instrs = [
            _dyn(0x1000, InstrClass.CALL_DIRECT, taken=True, target=0x5000),
            _dyn(0x5000),
            _dyn(0x5004, InstrClass.RETURN_NEAR, taken=True, target=None,
                 next_address=0x1005),
            _dyn(0x1005),
        ]
        selector = TraceSelector()
        segments = _feed_all(selector, instrs)
        assert len(segments) == 1
        assert segments[0].num_instructions == 4

    def test_return_exiting_outermost_context_terminates(self):
        instrs = [
            _dyn(0x5000),
            _dyn(0x5004, InstrClass.RETURN_NEAR, taken=True, target=None,
                 next_address=0x1005),
            _dyn(0x1005),
        ]
        selector = TraceSelector()
        segments = _feed_all(selector, instrs)
        assert segments[0].num_instructions == 2
        assert selector.terminations["return_exit"] == 1

    def test_capacity_limit(self):
        # 70 single-uop instructions with no CTIs: must split at 64 uops.
        instrs = [_dyn(0x1000 + i * 4) for i in range(70)]
        segments = _feed_all(TraceSelector(), instrs)
        assert segments[0].uop_count <= TRACE_CAPACITY_UOPS
        assert sum(s.num_instructions for s in segments) == 70

    def test_multi_uop_capacity_respected(self):
        instrs = [_dyn(0x1000 + i * 4, InstrClass.RMW) for i in range(30)]
        segments = _feed_all(TraceSelector(), instrs)
        assert all(s.uop_count <= TRACE_CAPACITY_UOPS for s in segments)


class TestJoining:
    def _loop_iteration(self, taken=True):
        return [
            _dyn(0x1000),
            _dyn(0x1004),
            _dyn(0x1008, InstrClass.COND_BRANCH, taken=taken, target=0x1000),
        ]

    def test_identical_iterations_join(self):
        instrs = []
        for _ in range(4):
            instrs += self._loop_iteration()
        segments = _feed_all(TraceSelector(), instrs)
        assert any(s.join_count >= 2 for s in segments)
        assert sum(s.num_instructions for s in segments) == 12

    def test_joined_tid_concatenates_directions(self):
        instrs = self._loop_iteration() + self._loop_iteration()
        segments = _feed_all(TraceSelector(), instrs)
        joined = [s for s in segments if s.join_count == 2]
        assert joined
        assert joined[0].tid.direction_string() == "TT"

    def test_joining_respects_capacity(self):
        # Iterations of ~22 uops: at most 2 fit a 64-uop frame.
        iteration = [_dyn(0x1000 + i * 4, InstrClass.RMW) for i in range(7)]
        iteration.append(
            _dyn(0x1000 + 7 * 4, InstrClass.COND_BRANCH, taken=True, target=0x1000)
        )
        instrs = []
        for _ in range(6):
            instrs += iteration
        segments = _feed_all(TraceSelector(), instrs)
        assert all(s.uop_count <= TRACE_CAPACITY_UOPS for s in segments)
        assert any(s.join_count >= 2 for s in segments)

    def test_different_paths_do_not_join(self):
        instrs = self._loop_iteration(taken=True)
        # Same start, different internal direction on the final branch.
        instrs += [
            _dyn(0x1000),
            _dyn(0x1004),
            _dyn(0x1008, InstrClass.COND_BRANCH, taken=False, target=0x1000),
        ]
        segments = _feed_all(TraceSelector(), instrs)
        assert all(s.join_count == 1 for s in segments)


class TestDeterminism:
    def test_same_stream_same_partition(self, fp_workload):
        seg1 = [s.tid for s in segment_stream(fp_workload.stream(4000))]
        seg2 = [s.tid for s in segment_stream(fp_workload.stream(4000))]
        assert seg1 == seg2

    def test_partition_covers_stream_exactly(self, int_workload):
        segments = list(segment_stream(int_workload.stream(4000)))
        assert sum(s.num_instructions for s in segments) == 4000
        # Segment boundaries are contiguous in the dynamic stream.
        flat = [d for s in segments for d in s.instructions]
        for prev, nxt in zip(flat, flat[1:]):
            assert nxt.address == prev.next_address

    def test_tid_identifies_path(self, int_workload):
        """Two segments with equal TIDs must have identical address paths."""
        segments = list(segment_stream(int_workload.stream(6000)))
        by_tid = {}
        for segment in segments:
            path = tuple(d.address for d in segment.instructions)
            if segment.tid in by_tid:
                assert by_tid[segment.tid] == path
            else:
                by_tid[segment.tid] = path
