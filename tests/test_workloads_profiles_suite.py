"""Unit tests: suite profiles, per-app jitter, and the 44-app roster."""

import pytest

from repro.workloads.profiles import (
    ALL_SUITES,
    SUITE_SPECFP,
    SUITE_SPECINT,
    WorkloadProfile,
    jitter_profile,
    specfp_profile,
    specint_profile,
    suite_profile,
)
from repro.workloads.suite import (
    ALL_APPS,
    DOTNET_APPS,
    KILLER_APPS,
    MULTIMEDIA_APPS,
    OFFICE_APPS,
    SPECFP_APPS,
    SPECINT_APPS,
    app_seed,
    application,
    benchmark_suite,
    killer_applications,
)


class TestProfiles:
    def test_all_suites_have_factories(self):
        for suite in ALL_SUITES:
            profile = suite_profile(suite)
            assert isinstance(profile, WorkloadProfile)
            profile.validate()

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            suite_profile("Gaming")

    def test_fp_more_regular_than_int(self):
        fp, intp = specfp_profile(), specint_profile()
        assert fp.irregular_branch_frac < intp.irregular_branch_frac
        assert fp.hot_trip_range[1] > intp.hot_trip_range[1]
        assert fp.loop_regularity > intp.loop_regularity
        assert fp.stride_frac > intp.stride_frac

    def test_int_has_no_fp_work(self):
        assert specint_profile().frac_fp == 0.0

    def test_derive_overrides_fields(self):
        base = specfp_profile()
        derived = base.derive(n_hot_kernels=9)
        assert derived.n_hot_kernels == 9
        assert derived.frac_fp == base.frac_fp

    def test_validate_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="outside"):
            specfp_profile().derive(frac_mem=1.5).validate()

    def test_validate_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="bad range"):
            specfp_profile().derive(hot_body_range=(9, 3)).validate()


class TestJitter:
    def test_jitter_is_deterministic(self):
        base = specint_profile()
        assert jitter_profile(base, 42) == jitter_profile(base, 42)

    def test_jitter_varies_with_seed(self):
        base = specint_profile()
        variants = {jitter_profile(base, s).n_hot_kernels for s in range(30)}
        assert len(variants) > 1

    def test_jitter_output_is_valid(self):
        base = specfp_profile()
        for seed in range(50):
            jitter_profile(base, seed).validate()

    def test_jitter_preserves_suite(self):
        base = specfp_profile()
        assert jitter_profile(base, 7).suite == SUITE_SPECFP


class TestSuiteRoster:
    def test_exactly_44_applications(self):
        assert len(ALL_APPS) == 44
        assert len(set(ALL_APPS)) == 44

    def test_suite_sizes_match_paper(self):
        assert len(SPECINT_APPS) == 11
        assert len(SPECFP_APPS) == 11
        assert len(OFFICE_APPS) == 6
        assert len(MULTIMEDIA_APPS) == 11
        assert len(DOTNET_APPS) == 5

    def test_killer_apps_exist(self):
        assert set(KILLER_APPS) <= set(ALL_APPS)
        killers = killer_applications()
        assert [k.name for k in killers] == list(KILLER_APPS)

    def test_application_lookup(self):
        app = application("swim")
        assert app.suite == SUITE_SPECFP
        assert app.profile.name == "swim"

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            application("doom")

    def test_app_seed_stable(self):
        assert app_seed("gcc") == app_seed("gcc")
        assert app_seed("gcc") != app_seed("gzip")

    def test_full_roster(self):
        apps = benchmark_suite()
        assert len(apps) == 44

    def test_suite_filter(self):
        apps = benchmark_suite(suites=(SUITE_SPECINT,))
        assert len(apps) == 11
        assert all(a.suite == SUITE_SPECINT for a in apps)

    def test_max_apps_is_balanced_across_suites(self):
        apps = benchmark_suite(max_apps=10)
        assert len(apps) == 10
        suites = {a.suite for a in apps}
        assert len(suites) == 5  # round-robin touches every suite

    def test_build_is_cached(self):
        app = application("swim")
        assert app.build() is app.build()

    def test_killer_overrides_applied(self):
        wupwise = application("wupwise")
        generic_fp = application("ammp")
        assert wupwise.profile.hot_trip_range[1] > generic_fp.profile.hot_trip_range[1]
