"""Unit tests: ProgramBuilder assembly and Program invariants."""

import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import InstrClass
from repro.workloads.behaviors import BiasedBranchSpec, StrideMemSpec, SwitchSpec
from repro.workloads.program import CODE_BASE, ProgramBuilder


def _builder() -> ProgramBuilder:
    return ProgramBuilder("test", seed=1)


class TestBuilding:
    def test_addresses_are_contiguous(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        a1 = b.emit(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2)
        a2 = b.emit(InstrClass.SIMPLE_ALU, dest=1, src1=2, src2=3)
        b.jump(entry)
        program = b.finish(entry)
        i1 = program.instructions[a1]
        assert a2 == a1 + i1.length
        assert program.entry == CODE_BASE

    def test_forward_label_resolution(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        later = b.label("later")
        b.jump(later)
        b.emit(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2)
        target = b.place(later)
        b.jump(entry)
        program = b.finish(entry)
        jump = program.instructions[program.entry]
        assert jump.taken_target == target.address

    def test_cond_branch_records_spec(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        spec = BiasedBranchSpec(0.3)
        address = b.cond_branch(entry, spec)
        program = b.finish(entry)
        assert program.branch_specs[address] is spec

    def test_mem_spec_attached(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        spec = StrideMemSpec(base=b.alloc_data(256), stride=8, extent=256)
        address = b.emit(InstrClass.LOAD, dest=0, src1=1, mem=spec)
        b.jump(entry)
        program = b.finish(entry)
        assert program.mem_specs[address] is spec

    def test_switch_targets_resolved(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        cases = [b.label(f"c{i}") for i in range(3)]
        address = b.indirect_jump(5, cases, SwitchSpec(3))
        for case in cases:
            b.place(case)
            b.jump(entry)
        program = b.finish(entry)
        assert len(program.switch_targets[address]) == 3
        assert all(t in program.instructions for t in program.switch_targets[address])

    def test_data_allocation_is_disjoint_and_aligned(self):
        b = _builder()
        r1 = b.alloc_data(1000)
        r2 = b.alloc_data(500)
        assert r1 % 64 == 0 and r2 % 64 == 0
        assert r2 >= r1 + 1000

    def test_code_bytes_counted(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        b.emit(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2)
        b.jump(entry)
        program = b.finish(entry)
        assert program.code_bytes == sum(
            i.length for i in program.instructions.values()
        )


class TestBuilderErrors:
    def test_unplaced_label_rejected(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        b.jump(b.label("nowhere"))
        with pytest.raises(WorkloadError, match="unresolved label"):
            b.finish(entry)

    def test_unplaced_entry_rejected(self):
        b = _builder()
        b.place(b.label("x"))
        b.emit(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2)
        with pytest.raises(WorkloadError, match="never placed"):
            b.finish(b.label("entry"))

    def test_double_placement_rejected(self):
        b = _builder()
        label = b.place(b.label("entry"))
        with pytest.raises(WorkloadError, match="placed twice"):
            b.place(label)

    def test_finish_twice_rejected(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        b.jump(entry)
        b.finish(entry)
        with pytest.raises(WorkloadError):
            b.finish(entry)

    def test_emit_after_finish_rejected(self):
        b = _builder()
        entry = b.place(b.label("entry"))
        b.jump(entry)
        b.finish(entry)
        with pytest.raises(WorkloadError):
            b.emit(InstrClass.SIMPLE_ALU, dest=0, src1=1, src2=2)

    def test_switch_spec_arity_checked(self):
        b = _builder()
        b.place(b.label("entry"))
        with pytest.raises(WorkloadError, match="expects 3 targets"):
            b.indirect_jump(5, [b.label("one")], SwitchSpec(3))

    def test_zero_byte_allocation_rejected(self):
        with pytest.raises(WorkloadError):
            _builder().alloc_data(0)


class TestProgramValidation:
    def test_validate_passes_on_wellformed_program(self, fp_workload):
        fp_workload.program.validate()  # should not raise

    def test_instruction_lookup_error(self, fp_workload):
        with pytest.raises(WorkloadError, match="no instruction"):
            fp_workload.program.instruction_at(0x1)
