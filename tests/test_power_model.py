"""Unit tests: event counting, tag matrix, leakage, energy, CMPW metrics."""

import pytest

from repro.pipeline.resources import narrow_core_params, wide_core_params
from repro.power.energy import COMPONENT_OF_EVENT, COMPONENTS, EnergyModel
from repro.power.events import ALL_EVENTS, EventCounts
from repro.power.leakage import calibrate_p_max, leakage_energy
from repro.power.metrics import (
    PerformanceEnergyPoint,
    cmpw_improvement,
    energy_increase,
    ipc_improvement,
)
from repro.power.tags import EnergyCalibration, StructureSizes, build_tag_matrix


class TestEventCounts:
    def test_add_and_get(self):
        events = EventCounts()
        events.add("rename_uop")
        events.add("rename_uop", 2)
        assert events.get("rename_uop") == 3
        assert events.get("unknown") == 0

    def test_merge(self):
        a, b = EventCounts(), EventCounts()
        a.add("issue_uop", 5)
        b.add("issue_uop", 7)
        b.add("exec_fp", 1)
        a.merge(b)
        assert a.get("issue_uop") == 12
        assert a.get("exec_fp") == 1

    def test_as_dict_snapshot(self):
        events = EventCounts()
        events.add("l2_access", 3)
        snapshot = events.as_dict()
        events.add("l2_access", 1)
        assert snapshot["l2_access"] == 3

    def test_integral_counts_stay_exact_ints(self):
        """Batched adds equal uop-at-a-time adds bit-for-bit at 1e8 scale.

        Integer event counts must accumulate as Python ints: the batched
        plan-level reductions add segment totals in one call, and the
        result must be indistinguishable from per-uop increments even at
        counts where float granularity (2**53) would eventually bite.
        """
        batched = EventCounts()
        stepped = EventCounts()
        total = 10**8
        chunk = 10**7
        batched.add("issue_uop", total)
        for _ in range(10):
            batched.add("issue_uop", 3)
        for _ in range(total // chunk):
            stepped.add("issue_uop", chunk)
        for _ in range(10):
            stepped.add("issue_uop", 3)
        assert batched.get("issue_uop") == stepped.get("issue_uop")
        assert isinstance(batched.get("issue_uop"), int)
        assert isinstance(stepped.get("issue_uop"), int)
        assert batched.get("issue_uop") == total + 30
        # A huge count beyond float precision must survive exactly.
        big = 2**60 + 1
        exact = EventCounts()
        exact.add("rob_write", big)
        exact.add("rob_write", 1)
        assert exact.get("rob_write") == big + 1
        # Zero-guard registration (count 0) must not taint later ints.
        guarded = EventCounts()
        guarded.add("tpred_lookup", 0)
        guarded.add("tpred_lookup", 7)
        assert isinstance(guarded.get("tpred_lookup"), int)
        # Fractional counts still work and demote that key only.
        mixed = EventCounts()
        mixed.add("core_cycle", 1.5)
        mixed.add("core_cycle", 2)
        mixed.add("issue_uop", 2)
        assert mixed.get("core_cycle") == 3.5
        assert isinstance(mixed.get("issue_uop"), int)


class TestTagMatrix:
    def test_every_canonical_event_tagged(self):
        tags = build_tag_matrix(
            EnergyCalibration(), narrow_core_params(), StructureSizes()
        )
        for event in ALL_EVENTS:
            assert event in tags or event == "rename_virtual", event
        assert "rename_virtual" in tags

    def test_wide_machine_pays_more_per_uop(self):
        calib, sizes = EnergyCalibration(), StructureSizes()
        narrow = build_tag_matrix(calib, narrow_core_params(), sizes)
        wide = build_tag_matrix(calib, wide_core_params(), sizes)
        for event in ("rename_uop", "issue_uop", "regfile_read",
                      "decode_instr", "mispredict_flush", "core_cycle"):
            assert wide[event] > narrow[event], event

    def test_rename_scaling_superlinear(self):
        calib, sizes = EnergyCalibration(), StructureSizes()
        narrow = build_tag_matrix(calib, narrow_core_params(), sizes)
        wide = build_tag_matrix(calib, wide_core_params(), sizes)
        assert wide["rename_uop"] / narrow["rename_uop"] > 2.0

    def test_virtual_rename_is_a_discount(self):
        tags = build_tag_matrix(
            EnergyCalibration(), narrow_core_params(), StructureSizes()
        )
        assert tags["rename_virtual"] < 0
        assert abs(tags["rename_virtual"]) < tags["rename_uop"]

    def test_smaller_predictor_is_cheaper(self):
        calib = EnergyCalibration()
        big = build_tag_matrix(calib, narrow_core_params(),
                               StructureSizes(bpred_entries=4096))
        small = build_tag_matrix(calib, narrow_core_params(),
                                 StructureSizes(bpred_entries=2048))
        assert small["bpred_lookup"] < big["bpred_lookup"]

    def test_memory_hierarchy_ordering(self):
        tags = build_tag_matrix(
            EnergyCalibration(), narrow_core_params(), StructureSizes()
        )
        assert tags["l1d_read"] < tags["l2_access"] < tags["memory_access"]


class TestLeakage:
    def test_paper_formula(self):
        calib = EnergyCalibration(p_max=10.0)
        # LE = P_MAX x (0.05 M + 0.4 K) x CYC
        le = leakage_energy(calib, l2_mbytes=2.0, core_area=1.5, cycles=1000)
        assert le == pytest.approx(10.0 * (0.05 * 2.0 + 0.4 * 1.5) * 1000)

    def test_leakage_scales_with_cycles(self):
        calib = EnergyCalibration()
        short = leakage_energy(calib, l2_mbytes=1, core_area=1, cycles=100)
        long = leakage_energy(calib, l2_mbytes=1, core_area=1, cycles=200)
        assert long == pytest.approx(2 * short)

    def test_calibrate_p_max(self):
        assert calibrate_p_max([(100.0, 10.0), (500.0, 100.0)]) == 10.0

    def test_calibrate_p_max_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_p_max([])


class TestEnergyModel:
    def _events(self):
        events = EventCounts()
        events.add("rename_uop", 100)
        events.add("exec_int", 100)
        events.add("l1d_read", 30)
        events.add("decode_instr", 80)
        events.add("core_cycle", 50)
        return events

    def test_total_is_dynamic_plus_leakage(self):
        model = EnergyModel(narrow_core_params())
        result = model.evaluate(self._events(), cycles=50)
        assert result.total == pytest.approx(result.dynamic + result.leakage)
        assert result.dynamic > 0 and result.leakage > 0

    def test_breakdown_sums_to_total(self):
        model = EnergyModel(narrow_core_params())
        result = model.evaluate(self._events(), cycles=50)
        assert sum(result.by_component.values()) == pytest.approx(result.total)

    def test_component_shares_sum_to_one(self):
        model = EnergyModel(narrow_core_params())
        result = model.evaluate(self._events(), cycles=50)
        total_share = sum(
            result.component_share(c) for c in COMPONENTS
        )
        assert total_share == pytest.approx(1.0)

    def test_unknown_events_ignored(self):
        model = EnergyModel(narrow_core_params())
        events = self._events()
        events.add("totally_unknown_event", 1e9)
        with_unknown = model.evaluate(events, cycles=50)
        without = model.evaluate(self._events(), cycles=50)
        assert with_unknown.total == pytest.approx(without.total)

    def test_extra_area_raises_leakage(self):
        base = EnergyModel(narrow_core_params())
        extra = EnergyModel(narrow_core_params(), extra_area=0.5)
        events = self._events()
        assert extra.evaluate(events, 50).leakage > base.evaluate(events, 50).leakage

    def test_component_mapping_covers_tagged_events(self):
        model = EnergyModel(narrow_core_params())
        for event in model.tags:
            assert event in COMPONENT_OF_EVENT, event


class TestMetrics:
    def test_derived_quantities(self):
        point = PerformanceEnergyPoint(instructions=1000, cycles=500, energy=2000)
        assert point.ipc == 2.0
        assert point.epi == 2.0
        assert point.power == 4.0
        assert point.cmpw == pytest.approx(2.0**3 / 4.0)

    def test_cmpw_favours_performance_cubed(self):
        """Doubling IPC at double power still wins 4x on CMPW."""
        base = PerformanceEnergyPoint(1000, 1000, 1000)
        fast = PerformanceEnergyPoint(1000, 500, 1000)  # 2x IPC, 2x power
        assert cmpw_improvement(fast, base) == pytest.approx(3.0)  # 4x - 1

    def test_improvement_helpers(self):
        base = PerformanceEnergyPoint(1000, 1000, 1000)
        test = PerformanceEnergyPoint(1000, 800, 1100)
        assert ipc_improvement(test, base) == pytest.approx(0.25)
        assert energy_increase(test, base) == pytest.approx(0.10)

    @pytest.mark.parametrize("field", ["instructions", "cycles", "energy"])
    def test_nonpositive_rejected(self, field):
        kwargs = dict(instructions=1, cycles=1.0, energy=1.0)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            PerformanceEnergyPoint(**kwargs)
