"""Unit + integration tests: promotion, pass manager, dependency graph."""

import pytest

from repro.core.simulator import segment_stream
from repro.errors import OptimizationError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import FLAGS_REG, REG_NONE
from repro.optimizer.asserts import promote_control
from repro.optimizer.dependency_graph import build_dependency_graph
from repro.optimizer.pipeline import OptimizerConfig, TraceOptimizer
from repro.trace.tid import TraceId
from repro.trace.trace import build_trace


def u(kind, dest=REG_NONE, src1=REG_NONE, src2=REG_NONE, imm=None, origin=0):
    return Uop(kind, dest, src1, src2, imm, origin)


class TestPromotion:
    def test_branches_become_asserts_with_tid_directions(self):
        uops = [
            u(UopKind.BRANCH, src1=FLAGS_REG),
            u(UopKind.ALU, dest=1, src1=2, src2=3),
            u(UopKind.BRANCH, src1=FLAGS_REG),
        ]
        tid = TraceId(0x100, directions=0b01, num_branches=2)
        out, stats = promote_control(uops, tid)
        asserts = [x for x in out if x.kind in (UopKind.ASSERT_T, UopKind.ASSERT_NT)]
        assert [a.kind for a in asserts] == [UopKind.ASSERT_T, UopKind.ASSERT_NT]
        assert stats.branches_promoted == 2

    def test_direct_control_eliminated(self):
        uops = [
            u(UopKind.JUMP),
            u(UopKind.CALL, src1=15),
            u(UopKind.RETURN, src1=15),
            u(UopKind.ALU, dest=1, src1=2, src2=3),
        ]
        tid = TraceId(0x100, 0, 0)
        out, stats = promote_control(uops, tid)
        assert len(out) == 1
        assert stats.jumps_eliminated == 1
        assert stats.calls_eliminated == 1
        assert stats.returns_eliminated == 1

    def test_indirect_jump_keeps_target_assert(self):
        uops = [u(UopKind.IND_JUMP, src1=5)]
        out, stats = promote_control(uops, TraceId(0x100, 0, 0))
        assert out[0].kind is UopKind.ASSERT_T
        assert stats.indirects_asserted == 1

    def test_branch_count_mismatch_rejected(self):
        uops = [u(UopKind.BRANCH, src1=FLAGS_REG)]
        with pytest.raises(OptimizationError):
            promote_control(uops, TraceId(0x100, 0, 0))

    def test_missing_branch_rejected(self):
        uops = [u(UopKind.ALU, dest=1, src1=2, src2=3)]
        with pytest.raises(OptimizationError):
            promote_control(uops, TraceId(0x100, 0b1, 1))


class TestDependencyGraph:
    def test_raw_edge(self):
        uops = [u(UopKind.ALU, dest=1, src1=2, src2=3),
                u(UopKind.ALU, dest=4, src1=1, src2=5)]
        graph = build_dependency_graph(uops)
        assert 0 in graph.preds[1]

    def test_waw_and_war_edges(self):
        uops = [
            u(UopKind.ALU, dest=1, src1=2, src2=3),   # 0: writes r1
            u(UopKind.ALU, dest=4, src1=1, src2=5),   # 1: reads r1
            u(UopKind.ALU, dest=1, src1=6, src2=7),   # 2: rewrites r1
        ]
        graph = build_dependency_graph(uops)
        assert 0 in graph.preds[2]  # WAW
        assert 1 in graph.preds[2]  # WAR

    def test_memory_edges(self):
        uops = [
            u(UopKind.STORE, src1=1, src2=2, origin=0),
            u(UopKind.LOAD, dest=3, src1=4, origin=1),
            u(UopKind.STORE, src1=5, src2=6, origin=2),
        ]
        graph = build_dependency_graph(uops)
        assert 0 in graph.preds[1]  # load after store
        assert 1 in graph.preds[2]  # store after load

    def test_loads_may_reorder_with_loads(self):
        uops = [
            u(UopKind.LOAD, dest=1, src1=2, origin=0),
            u(UopKind.LOAD, dest=3, src1=4, origin=1),
        ]
        graph = build_dependency_graph(uops)
        assert 0 not in graph.preds[1]

    def test_heights_latency_weighted(self):
        uops = [u(UopKind.MUL, dest=1, src1=2, src2=3),
                u(UopKind.ALU, dest=4, src1=1, src2=5)]
        graph = build_dependency_graph(uops)
        assert graph.heights[0] == 5   # MUL(4) + ALU(1)
        assert graph.critical_path() == 5


class TestTraceOptimizer:
    def _first_trace(self, workload, min_uops=10):
        for segment in segment_stream(workload.stream(4000)):
            if segment.uop_count >= min_uops:
                return build_trace(segment.tid, segment.instructions)
        raise AssertionError("no segment large enough")

    def test_optimizes_real_trace(self, int_workload):
        trace = self._first_trace(int_workload)
        optimized, report = TraceOptimizer().optimize(trace)
        assert optimized.optimized
        assert optimized.tid == trace.tid
        assert optimized.num_uops <= trace.num_uops
        assert report.uops_before == trace.original_uop_count
        assert report.uops_after == optimized.num_uops
        assert 0.0 <= report.uop_reduction < 1.0
        optimized.validate()

    def test_original_trace_unmodified(self, int_workload):
        trace = self._first_trace(int_workload)
        uops_before = [u.copy() for u in trace.uops]
        TraceOptimizer().optimize(trace)
        assert trace.uops == uops_before
        assert not trace.optimized

    def test_generic_only_level(self, int_workload):
        trace = self._first_trace(int_workload)
        config = OptimizerConfig(enable_core_specific=False)
        optimized, report = TraceOptimizer(config).optimize(trace)
        assert optimized.optimization_level == 1
        assert all(
            x.kind not in (UopKind.SIMD2, UopKind.FP_SIMD2, UopKind.FUSED_ALU)
            for x in optimized.uops
        )

    def test_core_specific_beats_generic(self, fp_workload):
        """Core-specific passes add reduction on top of generic ones."""
        generic = TraceOptimizer(OptimizerConfig(enable_core_specific=False))
        full = TraceOptimizer()
        total_generic = total_full = 0
        for segment in list(segment_stream(fp_workload.stream(6000)))[:50]:
            if segment.uop_count < 8:
                continue
            trace = build_trace(segment.tid, segment.instructions)
            _, r1 = generic.optimize(trace)
            _, r2 = full.optimize(trace)
            total_generic += r1.uops_before - r1.uops_after
            total_full += r2.uops_before - r2.uops_after
        assert total_full > total_generic

    def test_disabled_optimizer_rejected(self, int_workload):
        trace = self._first_trace(int_workload)
        config = OptimizerConfig(enable_generic=False, enable_core_specific=False)
        with pytest.raises(OptimizationError):
            TraceOptimizer(config).optimize(trace)

    def test_virtual_renames_recorded(self, fp_workload):
        trace = self._first_trace(fp_workload, min_uops=20)
        optimized, report = TraceOptimizer().optimize(trace)
        assert optimized.virtual_renames == report.virtual_renames >= 0

    def test_aggregate_counters(self, int_workload):
        optimizer = TraceOptimizer()
        for segment in list(segment_stream(int_workload.stream(3000)))[:10]:
            optimizer.optimize(build_trace(segment.tid, segment.instructions))
        assert optimizer.traces_optimized == 10
        assert optimizer.total_uops_out <= optimizer.total_uops_in
