"""Unit tests: cold fetch-group formation and hot trace-fetch pacing."""

import pytest

from repro.errors import ConfigurationError
from repro.frontend.fetch import FetchParams, form_cold_groups, trace_fetch_cycles
from repro.isa.decoder import decode_template
from repro.isa.instruction import DynamicInstruction, MacroInstruction
from repro.isa.opcodes import InstrClass

PARAMS = FetchParams(width_instrs=4, width_bytes=16, trace_uops=8)


def _dyn(address, length=4, iclass=InstrClass.SIMPLE_ALU, taken=False, target=None):
    instr = MacroInstruction(
        address=address, length=length, iclass=iclass,
        uops=decode_template(iclass, dest=0, src1=1, src2=2), taken_target=target,
    )
    return DynamicInstruction(instr, taken=taken,
                              next_address=target if taken else instr.fallthrough)


def _straight_run(n, length=4):
    return [_dyn(0x1000 + i * length, length) for i in range(n)]


class TestFetchParams:
    def test_invalid_widths_rejected(self):
        with pytest.raises(ConfigurationError):
            FetchParams(0, 16, 8)
        with pytest.raises(ConfigurationError):
            FetchParams(4, 16, 0)


class TestColdGroups:
    def test_width_limit(self):
        groups = list(form_cold_groups(_straight_run(10, length=2), PARAMS))
        assert [len(g.instructions) for g in groups] == [4, 4, 2]

    def test_byte_limit(self):
        # 4 instructions of 6 bytes: only 2 fit in 16 bytes.
        groups = list(form_cold_groups(_straight_run(4, length=6), PARAMS))
        assert [len(g.instructions) for g in groups] == [2, 2]

    def test_taken_branch_terminates_group(self):
        run = _straight_run(2)
        branch = _dyn(0x2000, iclass=InstrClass.COND_BRANCH, taken=True, target=0x100)
        run.append(branch)
        run += _straight_run(2)
        groups = list(form_cold_groups(run, PARAMS))
        assert len(groups[0].instructions) == 3
        assert groups[0].ends_on_taken
        assert len(groups[1].instructions) == 2

    def test_not_taken_branch_does_not_break(self):
        run = [
            _dyn(0x1000),
            _dyn(0x1004, iclass=InstrClass.COND_BRANCH, taken=False, target=0x100),
            _dyn(0x1006),
        ]
        groups = list(form_cold_groups(run, PARAMS))
        assert len(groups) == 1

    def test_group_metadata(self):
        groups = list(form_cold_groups(_straight_run(3), PARAMS))
        (group,) = groups
        assert group.start_address == 0x1000
        assert group.byte_count == 12
        assert group.num_uops == 3

    def test_empty_input(self):
        assert list(form_cold_groups([], PARAMS)) == []

    def test_all_instructions_appear_exactly_once(self):
        run = _straight_run(17, length=5)
        groups = list(form_cold_groups(run, PARAMS))
        flattened = [d for g in groups for d in g.instructions]
        assert flattened == run


class TestTraceFetch:
    @pytest.mark.parametrize(
        "uops,expected", [(0, 0), (1, 1), (8, 1), (9, 2), (64, 8)]
    )
    def test_ceiling_division(self, uops, expected):
        assert trace_fetch_cycles(uops, PARAMS) == expected

    def test_wide_trace_port_is_faster(self):
        wide = FetchParams(4, 16, 16)
        assert trace_fetch_cycles(64, wide) == 4
