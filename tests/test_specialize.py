"""Compiled execution backend: specialization, caching, max-plus scan.

The compiled backend (:mod:`repro.pipeline.specialize`) generates a
dedicated Python replay function per plan and, for eligible hot plans, a
vectorized max-plus issue pre-pass.  Its contract is exact agreement with
the scalar reference, pinned here the same way the columnar suite pins
its backend: against the goldens, across machine models, across the
sampled/adaptive regimes and over the shared artifact stack.  On top of
the parity gates this file covers the backend's own machinery — the
content-keyed loader stack (memory LRU, disk cache, quarantine), the
whole-plan memo, the shared :class:`ColdPlanCache` contract, profiler
phase attribution for generated frames, and Hypothesis property tests
that the max-plus scan equals the sequential recurrence on randomly
generated (mostly uncontended) segments.
"""

from __future__ import annotations

import json
import marshal
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

import repro.pipeline.specialize as sp
from repro.core.simulator import ColdPlanCache, ParrotSimulator, RunOptions
from repro.errors import SimulationError
from repro.isa.opcodes import FuClass
from repro.models.configs import model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.pipeline.core import TimingCore
from repro.pipeline.resources import CoreParams, ExecProfile
from repro.profiling import classify_function
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import application
from repro.workloads.tracefile import compile_artifact

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The same pinned runs the scalar and columnar parity gates use.
PARITY_RUNS = [
    ("swim", "TON", 4000),
    ("gcc", "N", 4000),
    ("eon", "TOW", 4000),
]

COMPILED = RunOptions(backend=ExecutionBackend.COMPILED)


def _simulate(app_name: str, model_name: str, length: int,
              options: RunOptions) -> dict:
    simulator = ParrotSimulator(model_config(model_name))
    result = simulator.simulate(
        application(app_name), options, length=length
    )
    return result.to_dict()


# --------------------------------------------------------------------------
# Parity gates (mirroring tests/test_columnar.py).
# --------------------------------------------------------------------------

@pytest.mark.parametrize("app_name,model_name,length", PARITY_RUNS)
def test_compiled_matches_golden(app_name, model_name, length):
    """The compiled backend reproduces the scalar goldens bit-for-bit."""
    golden_path = GOLDEN_DIR / f"{app_name}_{model_name}_{length}.json"
    golden = json.loads(golden_path.read_text())
    produced = json.loads(
        json.dumps(_simulate(app_name, model_name, length, COMPILED))
    )
    assert produced == golden, (
        f"compiled run of {app_name}/{model_name}/{length} diverged from "
        f"the golden result — the backends must stay bit-identical"
    )


@pytest.mark.parametrize("app_name,model_name", [
    ("gzip", "TOS"),   # split pipeline: state switches between cores
    ("swim", "W"),     # wide baseline, no trace unit at all
    ("mesa", "TN"),    # narrow trace machine, no optimizer
])
def test_compiled_matches_scalar_across_models(app_name, model_name):
    scalar = _simulate(app_name, model_name, 3000, RunOptions())
    compiled = _simulate(app_name, model_name, 3000, COMPILED)
    assert compiled == scalar


def test_compiled_matches_scalar_sampled():
    sampling = SamplingConfig(detail=500, gap=1500, warmup=300,
                              func_warm=500)
    scalar = _simulate("swim", "TON", 20_000, RunOptions(sampling=sampling))
    compiled = _simulate(
        "swim", "TON", 20_000,
        RunOptions(sampling=sampling, backend=ExecutionBackend.COMPILED),
    )
    assert compiled == scalar


def test_compiled_matches_scalar_adaptive():
    """Adaptive sampling is backend-independent, estimate included."""
    sampling = SamplingConfig(mode="adaptive", detail=500, gap=1500,
                              warmup=300, func_warm=500,
                              phase_threshold=0.3)
    runs = {}
    for backend in (ExecutionBackend.SCALAR, ExecutionBackend.COMPILED):
        simulator = ParrotSimulator(model_config("TON"))
        runs[backend] = simulator.simulate(
            application("swim"),
            RunOptions(sampling=sampling, backend=backend, estimate=True),
            length=30_000,
        )
    scalar, compiled = (runs[ExecutionBackend.SCALAR],
                        runs[ExecutionBackend.COMPILED])
    assert compiled.result.to_dict() == scalar.result.to_dict()
    assert compiled.estimate.intervals == scalar.estimate.intervals
    assert compiled.estimate.ipc.mean == scalar.estimate.ipc.mean
    assert compiled.estimate.epi.mean == scalar.estimate.epi.mean


def test_compiled_artifact_with_shared_caches(tmp_path):
    """Artifact + shared segments + ColdPlanCache, all three backends.

    Two models with equal fetch parameters share one cache across every
    backend; each combination must match the generator-path scalar run.
    """
    app = application("gcc")
    artifact = compile_artifact(app, app.seed, 3000, root=tmp_path)
    segments = artifact.segments()
    cache = ColdPlanCache(segments)
    for model_name in ("N", "TON"):
        reference = _simulate(model_name=model_name, app_name="gcc",
                              length=3000, options=RunOptions())
        for backend in ExecutionBackend:
            result = ParrotSimulator(model_config(model_name)).simulate(
                artifact,
                RunOptions(backend=backend, segments=segments,
                           cold_plans=cache),
            )
            assert result.to_dict() == reference, (model_name, backend)


# --------------------------------------------------------------------------
# ColdPlanCache contract (shared by columnar and compiled cold plans).
# --------------------------------------------------------------------------

class TestColdPlanCache:

    def test_refuses_foreign_segment_list(self, tmp_path):
        app = application("gcc")
        artifact = compile_artifact(app, app.seed, 2000, root=tmp_path)
        segments = artifact.segments()
        cache = ColdPlanCache(segments)
        simulator = ParrotSimulator(model_config("TON"))
        foreign = list(segments)  # equal content, different identity
        with pytest.raises(SimulationError, match="different segment list"):
            simulator.simulate(
                artifact,
                RunOptions(backend=ExecutionBackend.COMPILED,
                           segments=foreign, cold_plans=cache),
            )

    def test_partitions_plans_by_backend(self, tmp_path):
        """One cache serves every backend without plan cross-talk."""
        app = application("gcc")
        artifact = compile_artifact(app, app.seed, 2000, root=tmp_path)
        segments = artifact.segments()
        cache = ColdPlanCache(segments)
        fetch = model_config("TON").fetch
        partitions = [
            cache.plans_for(segments, fetch, backend)
            for backend in ExecutionBackend
        ]
        assert len({id(p) for p in partitions}) == len(partitions)
        # and the same (fetch, backend) pair resolves to the same dict.
        again = cache.plans_for(segments, fetch, ExecutionBackend.COMPILED)
        assert again is partitions[-1]


# --------------------------------------------------------------------------
# Loader stack: memory LRU, whole-plan memo, disk cache, quarantine.
# --------------------------------------------------------------------------

def _nop_source(tag: int) -> str:
    return f"def replay(core, mem_lats):\n    core.extra = {tag}\n"


class TestLoaderStack:

    def test_memory_lru_eviction_order(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_COMPILED_CACHE", "0")
        monkeypatch.setattr(sp, "_MEMORY_LIMIT", 2)
        sp._MEMORY.clear()
        fn0 = sp.load_replay(_nop_source(0))
        sp.load_replay(_nop_source(1))
        # Touch 0 so it is most-recently used, then overflow with 2:
        # the least-recently-used entry (1) must be the one evicted.
        assert sp.load_replay(_nop_source(0)) is fn0
        sp.load_replay(_nop_source(2))
        keys = list(sp._MEMORY)
        assert sp.source_key(_nop_source(1)) not in keys
        assert sp.source_key(_nop_source(0)) in keys
        assert sp.source_key(_nop_source(2)) in keys

    def test_disk_cache_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_COMPILED_CACHE", raising=False)
        sp._MEMORY.clear()
        before = dict(sp.LOADER_STATS)
        source = _nop_source(7)
        sp.load_replay(source)
        assert sp.LOADER_STATS["compiles"] == before["compiles"] + 1
        sp._MEMORY.clear()  # force the next load through the disk layer
        fn = sp.load_replay(source)
        assert sp.LOADER_STATS["disk_hits"] == before["disk_hits"] + 1

        class Core:
            pass

        core = Core()
        fn(core, [])
        assert core.extra == 7

    def test_disk_cache_quarantines_corrupt_and_stale(self, tmp_path):
        cache = sp.CompiledPlanCache(root=tmp_path)
        code = compile(_nop_source(1), "<test>", "exec")
        key_ok = "ab" + "0" * 62
        cache.store(key_ok, code)
        assert cache.load(key_ok) is not None

        key_corrupt = "cd" + "0" * 62
        cache.store(key_corrupt, code)
        path = cache._path(key_corrupt)
        path.write_bytes(path.read_bytes()[:-4] + b"!!!!")
        assert cache.load(key_corrupt) is None
        assert not path.exists(), "corrupt entry must be quarantined"

        key_stale = "ef" + "0" * 62
        cache.store(key_stale, code)
        path = cache._path(key_stale)
        blob = path.read_bytes()
        path.write_bytes(b"XXXX" + blob[4:])  # wrong prefix == stale header
        info = cache.info()
        assert info.quarantined == 1
        assert info.entries == 1  # only the healthy entry survives
        assert cache.quarantined == 2  # one from load(), one from info()
        assert cache.clear() == 1
        assert cache.info().entries == 0

    def test_corrupt_body_decoding_to_non_code_is_quarantined(self, tmp_path):
        """marshal is not self-validating: a damaged body can decode into
        an arbitrary object instead of raising.  Both load() and info()
        must treat such a shard as corrupt — previously info() counted it
        (and its size) as healthy while load() handed the junk to exec().
        """
        cache = sp.CompiledPlanCache(root=tmp_path)
        code = compile(_nop_source(1), "<test>", "exec")
        key_ok = "ab" + "0" * 62
        cache.store(key_ok, code)
        healthy_size = cache._path(key_ok).stat().st_size

        key_bad = "cd" + "0" * 62
        cache.store(key_bad, code)
        bad_path = cache._path(key_bad)
        bad_path.write_bytes(sp._header() + marshal.dumps(2.5))

        info = cache.info()
        assert info.entries == 1
        assert info.total_bytes == healthy_size
        assert info.quarantined == 1
        assert not bad_path.exists()
        # Counted exactly once: the next enumeration starts clean.
        again = cache.info()
        assert again.quarantined == 0 and again.entries == 1

        cache.store(key_bad, code)
        bad_path.write_bytes(sp._header() + marshal.dumps((1, "not code")))
        assert cache.load(key_bad) is None
        assert not bad_path.exists(), "load() must quarantine junk bodies"

    def test_plan_memo_eviction_order(self, monkeypatch):
        monkeypatch.setattr(sp, "_PLAN_MEMO_LIMIT", 2)
        sp._PLAN_MEMO.clear()
        params = CoreParams(name="memo-test", rename_width=4, issue_width=4,
                            commit_width=4, rob_size=128, window_size=48)

        def rows(latency):
            return [(FuClass.INT, latency, -1, -1, (), 3, -1, 0, 0)]

        plan0 = sp.compile_hot_specialized(rows(1), 8, params)
        sp.compile_hot_specialized(rows(2), 8, params)
        hits = sp.LOADER_STATS["plan_hits"]
        # Touch plan 0, then overflow with a third plan: 2 must be evicted.
        assert sp.compile_hot_specialized(rows(1), 8, params) is plan0
        assert sp.LOADER_STATS["plan_hits"] == hits + 1
        sp.compile_hot_specialized(rows(3), 8, params)
        assert len(sp._PLAN_MEMO) == 2
        sp.compile_hot_specialized(rows(2), 8, params)  # re-derived, no hit
        assert sp.LOADER_STATS["plan_hits"] == hits + 1


def test_generated_frames_bucket_as_compiled_replay():
    """Profiler attribution folds exec'd frames into one phase."""
    assert classify_function("<repro-compiled:deadbeef>") == "replay(compiled)"
    assert (classify_function("/x/src/repro/pipeline/specialize.py")
            == "replay(compiled)")
    assert classify_function("/x/src/repro/pipeline/columnar.py") == "columnar"


# --------------------------------------------------------------------------
# Max-plus scan vs the sequential recurrence (property-based).
# --------------------------------------------------------------------------

#: Wide-machine geometry: plenty of issue/FU bandwidth so random segments
#: are mostly uncontended and the scan's success path is the common case.
_WIDE = CoreParams(
    name="maxplus-test", rename_width=4, issue_width=16, commit_width=4,
    rob_size=128, window_size=48,
    fu_counts={FuClass.INT: 16, FuClass.MEM_LOAD: 16, FuClass.FP: 16},
)
_PER_CYCLE = 8
_FUS = (FuClass.INT, FuClass.MEM_LOAD, FuClass.FP)


def _core_state(core: TimingCore) -> tuple:
    return (
        list(core.reg_ready), core.fetch_cycle, core._last_dispatch,
        core._disp_cycle, core._disp_used, list(core._rob_ring),
        core._rob_idx, list(core._win_ring), core._win_idx,
        core._commit_time, dict(core._issue_slots),
        {fu: dict(slots) for fu, slots in core._fu_slots.items()},
        core.uops_executed, core._n_src_reads, core._n_dest_writes,
        dict(core._n_exec),
    )


def _types(state) -> list:
    return [type(v) for v in state[0]] + [type(v) for v in state[5]]


@st.composite
def _segments(draw):
    """A random planned-row segment plus its per-load latencies."""
    n = draw(st.integers(min_value=4, max_value=24))
    rows = []
    mem_lats = []
    for k in range(n):
        fu = draw(st.sampled_from(_FUS))
        is_load = fu is FuClass.MEM_LOAD
        latency = draw(st.integers(min_value=1, max_value=4))
        src1 = draw(st.integers(min_value=-1, max_value=15))
        src2 = draw(st.integers(min_value=-1, max_value=15))
        dest = draw(st.integers(min_value=-1, max_value=15))
        rows.append((fu, latency, src1, src2, (), dest, -1,
                     1 if is_load else 0, k))
        if is_load:
            mem_lats.append(draw(st.integers(min_value=1, max_value=30)))
    return rows, mem_lats


def _compile_pair(rows):
    profile = ExecProfile.from_params(_WIDE)
    source = sp._hot_source(rows, _PER_CYCLE, _WIDE.front_depth, profile,
                            _WIDE.rob_size, _WIDE.window_size)
    fn = sp.load_replay(source)
    scan = sp.build_maxplus_scan(
        rows, _PER_CYCLE, _WIDE.front_depth, profile,
        _WIDE.rob_size, _WIDE.window_size, min_uops=1, max_depth=64,
    )
    return fn, scan


@settings(max_examples=60, deadline=None)
@given(data=_segments(), prefix=_segments())
def test_maxplus_equals_sequential(data, prefix):
    """When the scan verifies, its state equals the sequential replay's.

    ``prefix`` is first replayed sequentially on both cores so the scan
    also faces dirty entry states (dispatch backlog, populated rings and
    slot tables) — the steady state of back-to-back hot replays.
    """
    rows, mem_lats = data
    p_rows, p_lats = prefix
    fn, scan = _compile_pair(rows)
    assert scan is not None, "wide geometry must be statically eligible"
    p_fn, _ = _compile_pair(p_rows)

    core_scan = TimingCore(_WIDE)
    core_seq = TimingCore(_WIDE)
    for core in (core_scan, core_seq):
        p_fn(core, p_lats)

    before = _core_state(core_scan)
    ok = sp.run_maxplus(core_scan, scan, mem_lats)
    fn(core_seq, mem_lats)
    if ok:
        after_scan = _core_state(core_scan)
        after_seq = _core_state(core_seq)
        assert after_scan == after_seq
        # Bit-identity includes types: ints stay ints, commits floats.
        assert _types(after_scan) == _types(after_seq)
    else:
        assert _core_state(core_scan) == before, (
            "a bailed scan must leave the core untouched"
        )


def test_maxplus_engages_on_uncontended_segment():
    """Deterministic success-path anchor for the property test above."""
    rows = [(FuClass.INT, 1, -1, -1, (), 3, -1, 0, k) for k in range(8)]
    fn, scan = _compile_pair(rows)
    core_scan = TimingCore(_WIDE)
    core_seq = TimingCore(_WIDE)
    assert sp.run_maxplus(core_scan, scan, [])
    fn(core_seq, [])
    assert _core_state(core_scan) == _core_state(core_seq)


def test_maxplus_bails_on_contended_segment():
    """Per-FU demand beyond the width must refuse, state untouched."""
    narrow = CoreParams(
        name="contended", rename_width=8, issue_width=8, commit_width=4,
        rob_size=128, window_size=48, fu_counts={FuClass.INT: 1},
    )
    rows = [(FuClass.INT, 1, -1, -1, (), -1, -1, 0, k) for k in range(8)]
    profile = ExecProfile.from_params(narrow)
    scan = sp.build_maxplus_scan(
        rows, _PER_CYCLE, narrow.front_depth, profile,
        narrow.rob_size, narrow.window_size, min_uops=1, max_depth=64,
    )
    core = TimingCore(narrow)
    before = _core_state(core)
    assert not sp.run_maxplus(core, scan, [])
    assert _core_state(core) == before


def test_maxplus_fail_streak_benches_the_scan(monkeypatch):
    """After MAXPLUS_FAIL_LIMIT consecutive misses the wrapper stops
    attempting the scan (and a success resets the streak)."""
    calls = {"n": 0}

    def counting_run_maxplus(core, scan, mem_lats):
        calls["n"] += 1
        return False

    monkeypatch.setattr(sp, "run_maxplus", counting_run_maxplus)
    rows = [(FuClass.INT, 1, -1, -1, (), -1, -1, 0, k) for k in range(8)]
    fn, scan = _compile_pair(rows)
    assert scan is not None
    scan.fails = 0
    core = TimingCore(_WIDE)
    plan = (fn, (), scan)
    for _ in range(sp.MAXPLUS_FAIL_LIMIT + 5):
        sp.run_hot_compiled(core, plan, [], None, None)
    assert calls["n"] == sp.MAXPLUS_FAIL_LIMIT
    assert scan.fails == sp.MAXPLUS_FAIL_LIMIT


def test_maxplus_production_floor_excludes_hot_frames():
    """The production ``MAXPLUS_MIN_UOPS`` floor sits *above* the 64-uop
    trace-cache frame cap on purpose, so no production hot plan ever
    builds a scan — the gate is not dead code, it is the measured
    crossover.  Forcing the floor down to 32 so the scan engages on
    64-uop hot frames regresses the warmed full-detail run (swim/TON,
    100k instructions, compiled backend) from 73.6 ms to 244.0 ms with
    bit-identical results: below ~96 uops the scan's setup cost swamps
    the replay it replaces.  Cold plans never build a scan at any size
    (their branch predictions feed back into the same segment's fetch
    redirects), so the floor only ever gates hot plans.
    """
    from repro.trace.trace import TRACE_CAPACITY_UOPS

    assert sp.MAXPLUS_MIN_UOPS > TRACE_CAPACITY_UOPS
    profile = ExecProfile.from_params(_WIDE)

    def scan_for(n):
        rows = [(FuClass.INT, 1, -1, -1, (), k % 16, -1, 0, k)
                for k in range(n)]
        return sp.build_maxplus_scan(
            rows, _PER_CYCLE, _WIDE.front_depth, profile,
            _WIDE.rob_size, _WIDE.window_size,
        )

    # A maximum-size hot frame stays below the floor: no scan.
    assert scan_for(TRACE_CAPACITY_UOPS) is None
    # The same shape past the floor is eligible — the gate is the only
    # thing rejecting production frames, not some structural check.
    assert scan_for(sp.MAXPLUS_MIN_UOPS) is not None
