"""Unit + integration tests: trace-file capture and replay."""

import numpy as np
import pytest

from repro.core.simulator import ParrotSimulator
from repro.errors import WorkloadError
from repro.models.configs import model_config
from repro.workloads.stream import InstructionStream
from repro.workloads.tracefile import TraceFile, capture_trace


@pytest.fixture()
def trace_path(tmp_path, fp_workload):
    path = tmp_path / "fp.trace.npz"
    captured = capture_trace(fp_workload.stream(3000), path)
    assert captured == 3000
    return path


class TestCapture:
    def test_roundtrip_is_exact(self, trace_path, fp_workload):
        trace = TraceFile.load(trace_path)
        original = fp_workload.stream(3000)
        replay = trace.stream()
        while not original.exhausted:
            a, b = original.take(), replay.take()
            assert a.address == b.address
            assert a.taken == b.taken
            assert a.next_address == b.next_address
            assert a.mem_addr == b.mem_addr
            assert a.instr.iclass == b.instr.iclass
            assert a.instr.length == b.instr.length
        assert replay.exhausted

    def test_uops_roundtrip(self, trace_path, fp_workload):
        trace = TraceFile.load(trace_path)
        by_address = {i.address: i for i in trace.instructions}
        stream = fp_workload.stream(500)
        while not stream.exhausted:
            dyn = stream.take()
            loaded = by_address[dyn.address]
            assert len(loaded.uops) == len(dyn.instr.uops)
            for a, b in zip(loaded.uops, dyn.instr.uops):
                assert (a.kind, a.dest, a.src1, a.src2, a.imm) == (
                    b.kind, b.dest, b.src1, b.src2, b.imm
                )

    def test_only_executed_statics_stored(self, trace_path, fp_workload):
        trace = TraceFile.load(trace_path)
        assert len(trace.instructions) <= fp_workload.stats.static_instructions

    def test_empty_stream_rejected(self, tmp_path, fp_workload):
        consumed = fp_workload.stream(1)
        consumed.take()
        with pytest.raises(WorkloadError):
            capture_trace(consumed, tmp_path / "e.npz")

    def test_version_check(self, tmp_path, trace_path):
        with np.load(trace_path) as data:
            arrays = dict(data)
        arrays["version"] = np.array([99])
        bad = tmp_path / "bad.npz"
        np.savez_compressed(bad, **arrays)
        with pytest.raises(WorkloadError, match="version"):
            TraceFile.load(bad)


class TestReplaySimulation:
    def test_simulating_replay_matches_live_stream(self, trace_path, fp_workload):
        """A trace-driven run must reproduce the live-generated run."""
        trace = TraceFile.load(trace_path)
        sim = ParrotSimulator(model_config("TON"))
        live = sim.run_stream(
            fp_workload.stream(3000), app_name="live",
            program=fp_workload.program,
        )
        replayed = sim.run_stream(trace.stream(), app_name="replay",
                                  program=fp_workload.program)
        assert replayed.cycles == live.cycles
        assert replayed.coverage == live.coverage
        assert replayed.total_energy == live.total_energy

    def test_limit_truncates(self, trace_path):
        trace = TraceFile.load(trace_path)
        stream = trace.stream(limit=100)
        count = 0
        while not stream.exhausted:
            stream.take()
            count += 1
        assert count == 100

    def test_prewarm_helpers(self, trace_path):
        trace = TraceFile.load(trace_path)
        code = trace.code_addresses()
        data = trace.touched_data_ranges()
        assert len(code) == len(trace.instructions)
        assert data
        assert all(extent == 64 for _, extent in data)
        assert all(base % 64 == 0 for base, _ in data)

    def test_trace_replay_without_program_prewarm(self, trace_path):
        """Replays work standalone, using the trace's own prewarm hints."""
        from repro.memory.hierarchy import MemoryHierarchy
        trace = TraceFile.load(trace_path)
        sim = ParrotSimulator(model_config("N"))
        result = sim.run_stream(trace.stream(), app_name="standalone")
        assert result.instructions == len(trace)
