"""Unit tests: exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DecodeError,
    ExperimentError,
    OptimizationError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [ConfigurationError, DecodeError, ExperimentError, OptimizationError,
         SimulationError, TraceError, WorkloadError],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_catchable_individually(self):
        with pytest.raises(TraceError):
            raise TraceError("x")


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_surface(self):
        """The README quickstart must work verbatim."""
        sim = repro.ParrotSimulator(repro.model_config("TON"))
        result = sim.run(repro.application("swim"), 2000)
        assert result.ipc > 0

    def test_model_names_exported(self):
        assert repro.MODEL_NAMES == ("N", "W", "TN", "TW", "TON", "TOW", "TOS")

    def test_subpackage_exports_resolve(self):
        import repro.experiments
        import repro.frontend
        import repro.isa
        import repro.memory
        import repro.models
        import repro.optimizer
        import repro.pipeline
        import repro.power
        import repro.trace
        import repro.workloads

        for module in (repro.isa, repro.workloads, repro.memory, repro.frontend,
                       repro.pipeline, repro.trace, repro.optimizer, repro.power,
                       repro.models, repro.experiments):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
