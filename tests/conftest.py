"""Shared fixtures for the test suite.

Simulation fixtures are deliberately small (a few thousand instructions)
so the whole suite stays fast; the benchmark harness covers full-scale
sweeps.
"""

from __future__ import annotations

import random

import pytest

from repro.core.simulator import ParrotSimulator
from repro.models.configs import model_config
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import specfp_profile, specint_profile
from repro.workloads.suite import application


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/*.json from the current implementation "
             "instead of asserting against it",
    )


@pytest.fixture()
def update_golden(request) -> bool:
    """True when the run should rewrite golden files rather than compare."""
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def _isolated_experiment_state(tmp_path, monkeypatch):
    """Point the result store at a per-test directory and drop shared runners.

    Keeps tests from reading or polluting the user's ``~/.cache/repro``
    and from observing grid state memoised by an earlier test's CLI call.
    """
    from repro import cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    cli.reset_runners()
    yield
    cli.reset_runners()


@pytest.fixture(scope="session")
def fp_workload() -> SyntheticWorkload:
    """A small regular (FP-style) synthetic workload."""
    return SyntheticWorkload(specfp_profile("test-fp"), seed=7)


@pytest.fixture(scope="session")
def int_workload() -> SyntheticWorkload:
    """A small irregular (integer-style) synthetic workload."""
    return SyntheticWorkload(specint_profile("test-int"), seed=11)


@pytest.fixture(scope="session")
def swim_result_ton():
    """A cached TON run of swim (shared across read-only assertions)."""
    sim = ParrotSimulator(model_config("TON"))
    return sim.run(application("swim"), 8000)


@pytest.fixture(scope="session")
def swim_result_n():
    """A cached N run of swim."""
    sim = ParrotSimulator(model_config("N"))
    return sim.run(application("swim"), 8000)


@pytest.fixture()
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(0xDEADBEEF)
