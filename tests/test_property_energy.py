"""Property-based tests: energy-model monotonicity and scaling laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.resources import narrow_core_params, wide_core_params
from repro.power.energy import EnergyModel
from repro.power.events import ALL_EVENTS, EventCounts

# rename_virtual is a *discount* tag, only ever produced alongside the full
# renames it discounts; an arbitrary set containing it alone is unphysical.
_COUNTABLE = [e for e in ALL_EVENTS if e != "rename_virtual"]


@st.composite
def event_counts(draw):
    events = EventCounts()
    for event in draw(st.lists(st.sampled_from(_COUNTABLE), max_size=20)):
        events.add(event, draw(st.integers(1, 1000)))
    return events


class TestEnergyProperties:
    @settings(max_examples=80, deadline=None)
    @given(event_counts(), st.integers(1, 100000))
    def test_energy_nonnegative(self, events, cycles):
        result = EnergyModel(narrow_core_params()).evaluate(events, cycles)
        assert result.leakage > 0
        # rename_virtual is a discount but can never be counted without the
        # full renames it discounts, so raw dynamic stays >= its magnitude
        # in any physically-produced event set; with arbitrary sets we only
        # require the total to be positive.
        assert result.total > 0

    @settings(max_examples=50, deadline=None)
    @given(event_counts(), st.sampled_from(_COUNTABLE), st.integers(1, 500))
    def test_more_events_never_cheaper(self, events, extra_event, count):
        if extra_event == "rename_virtual":
            return  # the one deliberate discount
        model = EnergyModel(narrow_core_params())
        base = model.evaluate(events, 1000).dynamic
        events.add(extra_event, count)
        assert model.evaluate(events, 1000).dynamic >= base

    @settings(max_examples=50, deadline=None)
    @given(event_counts(), st.integers(1, 50000), st.integers(1, 50000))
    def test_leakage_monotone_in_cycles(self, events, c1, c2):
        model = EnergyModel(narrow_core_params())
        lo, hi = sorted((c1, c2))
        assert model.evaluate(events, lo).leakage <= model.evaluate(events, hi).leakage

    @settings(max_examples=50, deadline=None)
    @given(event_counts(), st.integers(100, 10000))
    def test_wide_machine_never_cheaper_for_same_work(self, events, cycles):
        narrow = EnergyModel(narrow_core_params()).evaluate(events, cycles)
        wide = EnergyModel(wide_core_params()).evaluate(events, cycles)
        assert wide.total >= narrow.total

    @settings(max_examples=50, deadline=None)
    @given(event_counts(), st.integers(100, 10000))
    def test_breakdown_always_sums_to_total(self, events, cycles):
        result = EnergyModel(narrow_core_params()).evaluate(events, cycles)
        assert abs(sum(result.by_component.values()) - result.total) < 1e-6 * max(
            result.total, 1.0
        )
