"""Compiled trace artifacts: round-trip parity, the cache, engine accounting.

The artifact layer's single correctness obligation is bit-identity: a
stream replayed from a compiled artifact must be indistinguishable — per
dynamic record and per simulation result — from the stream walked out of
the generator, in every regime (full detail, shared segment lists,
sampled).  Everything else here is plumbing: content keying, cache
hit/miss/compile accounting, stale-tmp sweeping, and the engine-level
counters that surface it all.
"""

import json
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.simulator import ParrotSimulator, segment_stream
from repro.errors import WorkloadError
from repro.experiments.engine import ExperimentEngine, ResultStore
from repro.experiments.runner import ExperimentRunner, Scale
from repro.models.configs import model_config
from repro.sampling import SamplingConfig
from repro.workloads import tracefile as tracefile_mod
from repro.workloads.suite import application, benchmark_suite
from repro.workloads.tracefile import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCache,
    TraceArtifact,
    artifact_key,
    compile_artifact,
    default_artifact_root,
)

LENGTH = 1500

#: One representative application per benchmark suite.
SUITE_APPS = sorted(
    {app.suite: app.name for app in benchmark_suite(max_apps=None)}.values()
)


def _compile(app_name: str, root, length: int = LENGTH) -> TraceArtifact:
    app = application(app_name)
    return compile_artifact(app, app.seed, length, root=root)


def _rows(records):
    return [(r.instr, r.taken, r.next_address, r.mem_addr) for r in records]


class TestRoundTrip:
    @pytest.mark.parametrize("app_name", SUITE_APPS)
    def test_replay_matches_direct_walk_per_suite(self, app_name, tmp_path):
        app = application(app_name)
        direct = app.build().stream(LENGTH).take_batch(LENGTH)
        artifact = _compile(app_name, tmp_path)
        replayed = artifact.stream().take_batch(LENGTH)
        assert _rows(replayed) == _rows(direct)

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(length=st.integers(min_value=1, max_value=900))
    def test_replay_matches_direct_walk_any_length(self, length, tmp_path):
        app = application("gzip")
        direct = app.build().stream(length).take_batch(length)
        artifact = compile_artifact(app, app.seed, length, root=tmp_path)
        assert _rows(artifact.stream().take_batch(length)) == _rows(direct)

    def test_limit_clamps_to_artifact_length(self, tmp_path):
        artifact = _compile("gzip", tmp_path)
        assert len(artifact.stream(LENGTH + 500).take_batch(LENGTH + 500)) \
            == LENGTH
        assert len(artifact.stream(100).take_batch(LENGTH)) == 100

    def test_metadata_round_trips(self, tmp_path):
        app = application("swim")
        artifact = _compile("swim", tmp_path)
        assert artifact.app_name == "swim"
        assert artifact.suite == app.suite
        assert artifact.seed == app.seed
        assert len(artifact) == LENGTH


class TestSimulatorParity:
    @pytest.mark.parametrize("app_name,model", [
        ("swim", "TON"), ("gzip", "N"), ("eon", "TOW"),
    ])
    def test_run_artifact_bit_identical(self, app_name, model, tmp_path):
        simulator = ParrotSimulator(model_config(model))
        direct = simulator.run(application(app_name), LENGTH)
        artifact = _compile(app_name, tmp_path)
        assert simulator.run_artifact(artifact).to_dict() == direct.to_dict()

    def test_shared_segments_bit_identical(self, tmp_path):
        artifact = _compile("swim", tmp_path)
        segments = list(segment_stream(artifact.stream()))
        for model in ("N", "TON"):
            simulator = ParrotSimulator(model_config(model))
            direct = simulator.run(application("swim"), LENGTH)
            shared = simulator.run_artifact(artifact, segments=segments)
            assert shared.to_dict() == direct.to_dict()

    def test_sampled_bit_identical(self, tmp_path):
        length = 60_000
        sampling = SamplingConfig()
        simulator = ParrotSimulator(model_config("TON"))
        direct = simulator.run(application("swim"), length, sampling=sampling)
        artifact = _compile("swim", tmp_path, length)
        sampled = simulator.run_artifact(artifact, sampling=sampling)
        assert sampled.to_dict() == direct.to_dict()


class TestArtifactKey:
    def test_sensitive_to_every_input(self, monkeypatch):
        base = artifact_key("swim", 7, 1000)
        assert artifact_key("gzip", 7, 1000) != base
        assert artifact_key("swim", 8, 1000) != base
        assert artifact_key("swim", 7, 1001) != base
        monkeypatch.setattr(tracefile_mod, "ARTIFACT_SCHEMA_VERSION", 999)
        assert artifact_key("swim", 7, 1000) != base

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_artifact_root() == tmp_path / "elsewhere" / "artifacts"


class TestArtifactCache:
    def test_compile_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        app = application("gzip")
        cache.get_or_compile(app, LENGTH)
        assert (cache.hits, cache.compiles) == (0, 1)
        cache.get_or_compile(app, LENGTH)
        assert (cache.hits, cache.compiles) == (1, 1)
        # A second cache over the same root sees the persisted artifact.
        other = ArtifactCache(tmp_path)
        other.get_or_compile(app, LENGTH)
        assert (other.hits, other.compiles) == (1, 0)

    def test_miss_on_absent(self, tmp_path):
        assert ArtifactCache(tmp_path).load("gzip", 1, 100) is None

    def test_corrupt_artifact_recompiles(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        app = application("gzip")
        artifact = cache.get_or_compile(app, LENGTH)
        (artifact.path / "dyn.npy").write_bytes(b"not numpy")
        assert cache.load(app.name, app.seed, LENGTH) is None
        shutil.rmtree(artifact.path)
        fresh = cache.get_or_compile(app, LENGTH)
        assert cache.compiles == 2
        assert len(fresh) == LENGTH

    def test_schema_bump_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        app = application("gzip")
        artifact = cache.get_or_compile(app, LENGTH)
        meta_path = artifact.path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["schema"] = -1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(WorkloadError, match="schema"):
            TraceArtifact.load(artifact.path)
        assert cache.load(app.name, app.seed, LENGTH) is None

    def test_info_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for name in ("gzip", "swim"):
            cache.get_or_compile(application(name), LENGTH)
        info = cache.info()
        assert info.entries == 2 and info.total_bytes > 0
        assert info.path == tmp_path
        assert info.schema_version == ARTIFACT_SCHEMA_VERSION
        assert cache.clear() == 2
        assert cache.info().entries == 0

    def test_info_sweeps_stale_tmp_dirs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get_or_compile(application("gzip"), LENGTH)
        orphan = tmp_path / "ab" / ("ab" + "0" * 62 + ".tmp.123")
        orphan.mkdir(parents=True)
        (orphan / "dyn.npy").write_bytes(b"half-written")
        info = cache.info()
        assert info.stale_tmp == 1 and info.entries == 1
        assert not orphan.exists()
        assert cache.info().stale_tmp == 0

    def test_racing_compile_is_idempotent(self, tmp_path):
        app = application("gzip")
        first = compile_artifact(app, app.seed, LENGTH, root=tmp_path)
        second = compile_artifact(app, app.seed, LENGTH, root=tmp_path)
        assert first.path == second.path
        assert _rows(first.stream().take_batch(LENGTH)) == \
            _rows(second.stream().take_batch(LENGTH))


class TestEngineAccounting:
    TASKS = [("N", "gzip"), ("TON", "gzip"), ("N", "swim"), ("TON", "swim")]

    def test_serial_compiles_once_per_app(self, tmp_path):
        engine = ExperimentEngine(1200, artifact_root=tmp_path)
        engine.run(self.TASKS)
        assert engine.artifact_compiles == 2
        assert engine.artifact_hits == 0
        again = ExperimentEngine(1200, artifact_root=tmp_path)
        again.run(self.TASKS)
        assert again.artifact_compiles == 0
        assert again.artifact_hits == 2

    def test_parallel_counters_cross_the_pool(self, tmp_path):
        engine = ExperimentEngine(1200, jobs=2, artifact_root=tmp_path)
        engine.run(self.TASKS)
        assert engine.artifact_compiles == 2
        assert engine.artifact_hits == 0
        again = ExperimentEngine(1200, jobs=2, artifact_root=tmp_path)
        again.run(self.TASKS)
        assert again.artifact_compiles == 0
        assert again.artifact_hits == 2

    def test_artifacts_off_disables_cache(self, tmp_path):
        engine = ExperimentEngine(1200, artifacts=False)
        engine.run(self.TASKS[:2])
        assert engine.artifact_cache is None
        assert engine.artifact_compiles == 0 and engine.artifact_hits == 0

    def test_artifact_grid_matches_generator_grid(self, tmp_path):
        with_artifacts = ExperimentEngine(1200, artifact_root=tmp_path)
        without = ExperimentEngine(1200, artifacts=False)
        assert with_artifacts.run(self.TASKS) == without.run(self.TASKS)

    def test_sampled_artifact_grid_matches_generator_grid(self, tmp_path):
        sampling = SamplingConfig(detail=500, gap=2000, warmup=200,
                                  func_warm=1000)
        with_artifacts = ExperimentEngine(
            8000, sampling=sampling, artifact_root=tmp_path
        )
        without = ExperimentEngine(8000, sampling=sampling, artifacts=False)
        tasks = self.TASKS[:2]
        assert with_artifacts.run(tasks) == without.run(tasks)

    def test_parallel_artifact_grid_matches_serial(self, tmp_path):
        serial = ExperimentEngine(1200, artifact_root=tmp_path / "a")
        parallel = ExperimentEngine(
            1200, jobs=2, artifact_root=tmp_path / "b"
        )
        assert serial.run(self.TASKS) == parallel.run(self.TASKS)

    def test_store_hit_skips_artifact_resolution(self, tmp_path):
        store_root = tmp_path / "store"
        first = ExperimentEngine(
            1200, store=ResultStore(store_root), artifact_root=tmp_path / "a"
        )
        first.run(self.TASKS[:2])
        second = ExperimentEngine(
            1200, store=ResultStore(store_root), artifact_root=tmp_path / "a"
        )
        second.run(self.TASKS[:2])
        assert second.cache_hits == 2
        assert second.artifact_hits == 0 and second.artifact_compiles == 0


class TestRunnerPassthrough:
    def test_runner_exposes_artifact_counters(self, tmp_path):
        runner = ExperimentRunner(
            length=1200, max_apps=2, artifact_dir=tmp_path
        )
        runner.grid(["N", "TON"])
        assert runner.artifact_compiles == 2
        assert runner.artifact_hits == 0

    def test_artifacts_off_passthrough(self):
        runner = ExperimentRunner(length=1200, max_apps=2, artifacts=False)
        assert runner.engine.artifact_cache is None
        scaled = ExperimentRunner.from_scale(
            Scale(apps=2, length=1200, jobs=1, cache=False, artifacts=False)
        )
        assert scaled.engine.artifact_cache is None
