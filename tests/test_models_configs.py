"""Unit tests: the seven machine models of Tables 3.1/3.2."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import MachineConfig
from repro.models.configs import (
    MODEL_NAMES,
    all_models,
    model_config,
    model_tos,
)
from repro.pipeline.resources import narrow_core_params


class TestModelRegistry:
    def test_seven_models(self):
        assert len(MODEL_NAMES) == 7
        assert len(all_models()) == 7

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            model_config("X")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_all_models_construct(self, name):
        config = model_config(name)
        assert config.name == name


class TestConfigurationSpace:
    def test_baselines_have_no_trace_cache(self):
        assert not model_config("N").has_trace_cache
        assert not model_config("W").has_trace_cache

    def test_t_models_have_trace_cache_without_optimizer(self):
        for name in ("TN", "TW"):
            config = model_config(name)
            assert config.has_trace_cache and not config.optimize_traces

    def test_to_models_optimize(self):
        for name in ("TON", "TOW", "TOS"):
            config = model_config(name)
            assert config.has_trace_cache and config.optimize_traces

    def test_width_dimension(self):
        assert model_config("N").core.rename_width == 4
        assert model_config("W").core.rename_width == 8
        assert model_config("TON").core.rename_width == 4
        assert model_config("TOW").core.rename_width == 8

    def test_predictor_sizes_match_section_4_2(self):
        """N: 4K-entry branch predictor; TON: 2K branch + 2K trace (§4.2)."""
        assert model_config("N").bpred_entries == 4096
        ton = model_config("TON")
        assert ton.bpred_entries == 2048
        assert ton.tpred_entries == 2048

    def test_only_tos_is_split(self):
        for name in MODEL_NAMES:
            config = model_config(name)
            assert config.is_split == (name == "TOS")

    def test_tos_cold_profile_is_narrow(self):
        tos = model_tos()
        assert tos.cold_profile.rename_width == 4
        assert tos.core.rename_width == 8

    def test_wide_machines_have_larger_area(self):
        assert model_config("W").core.area > model_config("N").core.area
        assert model_config("TOS").extra_area > model_config("TOW").extra_area

    def test_trace_models_account_trace_unit_area(self):
        assert model_config("TN").extra_area > model_config("N").extra_area


class TestMachineConfigValidation:
    def test_optimizer_without_trace_cache_rejected(self):
        from repro.frontend.fetch import FetchParams
        with pytest.raises(ConfigurationError):
            MachineConfig(
                name="bad", description="", core=narrow_core_params(),
                fetch=FetchParams(4, 16, 8),
                has_trace_cache=False, optimize_traces=True,
            )

    def test_split_without_trace_cache_rejected(self):
        from repro.frontend.fetch import FetchParams
        from repro.pipeline.resources import ExecProfile
        with pytest.raises(ConfigurationError):
            MachineConfig(
                name="bad", description="", core=narrow_core_params(),
                fetch=FetchParams(4, 16, 8), has_trace_cache=False,
                cold_profile=ExecProfile.from_params(narrow_core_params()),
            )

    def test_bad_thresholds_rejected(self):
        from repro.frontend.fetch import FetchParams
        with pytest.raises(ConfigurationError):
            MachineConfig(
                name="bad", description="", core=narrow_core_params(),
                fetch=FetchParams(4, 16, 8), hot_threshold=0,
            )

    def test_structure_sizes_derived(self):
        sizes = model_config("TON").structure_sizes
        assert sizes.bpred_entries == 2048
        assert sizes.tcache_uops == 16 * 1024
