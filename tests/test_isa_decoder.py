"""Unit tests: macro-instruction decode templates."""

import pytest

from repro.errors import DecodeError
from repro.isa.decoder import decode_template, uop_count
from repro.isa.opcodes import CTI_CLASSES, InstrClass, UopKind
from repro.isa.registers import FLAGS_REG, REG_NONE, STACK_REG


class TestTemplateShapes:
    def test_uop_counts_match_templates(self):
        for iclass in InstrClass:
            uops = decode_template(iclass, dest=0, src1=1, src2=2, imm=4)
            assert len(uops) == uop_count(iclass), iclass

    def test_simple_alu(self):
        (uop,) = decode_template(InstrClass.SIMPLE_ALU, dest=3, src1=1, src2=2)
        assert uop.kind is UopKind.ALU
        assert uop.dest == 3 and uop.sources() == (1, 2)

    def test_load_imm_is_constant_producer(self):
        (uop,) = decode_template(InstrClass.LOAD_IMM, dest=5, imm=99)
        assert uop.kind is UopKind.MOV_IMM
        assert uop.imm == 99 and uop.sources() == ()

    def test_rmw_decomposes_into_load_alu_store(self):
        uops = decode_template(InstrClass.RMW, dest=4, src1=6, src2=7)
        assert [u.kind for u in uops] == [UopKind.LOAD, UopKind.ALU, UopKind.STORE]
        load, alu, store = uops
        assert alu.src1 == load.dest          # value flows load -> alu
        assert store.src2 == alu.dest         # ... -> store data
        assert store.src1 == load.src1        # same address base

    def test_complex_addr_chains_agu_into_load(self):
        agu, load = decode_template(InstrClass.COMPLEX_ADDR, dest=2, src1=3, src2=4)
        assert agu.kind is UopKind.AGU
        assert load.src1 == agu.dest

    def test_compare_writes_flags(self):
        (cmp_uop,) = decode_template(InstrClass.COMPARE, src1=1, src2=2)
        assert cmp_uop.dest == FLAGS_REG

    def test_branch_reads_flags(self):
        (branch,) = decode_template(InstrClass.COND_BRANCH)
        assert branch.src1 == FLAGS_REG
        assert branch.kind is UopKind.BRANCH

    def test_call_adjusts_stack_then_transfers(self):
        adjust, call = decode_template(InstrClass.CALL_DIRECT)
        assert adjust.dest == STACK_REG and adjust.imm == -8
        assert call.kind is UopKind.CALL

    def test_return_adjusts_stack_then_transfers(self):
        adjust, ret = decode_template(InstrClass.RETURN_NEAR)
        assert adjust.dest == STACK_REG and adjust.imm == 8
        assert ret.kind is UopKind.RETURN

    def test_string_op_touches_memory_twice(self):
        uops = decode_template(InstrClass.STRING_OP, dest=0, src1=1, src2=2)
        mem_kinds = [u.kind for u in uops if u.is_mem]
        assert mem_kinds == [UopKind.LOAD, UopKind.STORE]

    def test_fp_arith_selects_multiply_flavour(self):
        (add,) = decode_template(InstrClass.FP_ARITH, dest=16, src1=17, src2=18)
        (mul,) = decode_template(
            InstrClass.FP_ARITH, dest=16, src1=17, src2=18, fp_mul=True
        )
        assert add.kind is UopKind.FP_ADD and mul.kind is UopKind.FP_MUL

    def test_cti_classes_end_in_cti_uop(self):
        for iclass in CTI_CLASSES:
            uops = decode_template(iclass, src1=1)
            assert uops[-1].is_cti, iclass


class TestDecodeErrors:
    @pytest.mark.parametrize(
        "iclass", [InstrClass.ALU_IMM, InstrClass.LOAD_IMM, InstrClass.SHIFT_OP]
    )
    def test_immediate_required(self, iclass):
        with pytest.raises(DecodeError):
            decode_template(iclass, dest=0, src1=1)

    def test_indirect_jump_needs_target_register(self):
        with pytest.raises(DecodeError):
            decode_template(InstrClass.INDIRECT_JUMP, src1=REG_NONE)
