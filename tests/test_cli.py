"""Unit tests: the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.model == "TON" and args.length == 20_000

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--model", "ZZ"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "TON" in out
        assert "fig4_11" in out
        assert "wupwise" in out

    def test_run(self, capsys):
        assert main(["run", "gzip", "--model", "N", "--length", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "energy" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--models", "N,TN", "--apps", "2",
                     "--length", "1200"]) == 0
        out = capsys.readouterr().out
        assert "N IPC" in out and "TN IPC" in out

    def test_figure_table(self, capsys):
        assert main(["figure", "table3_2"]) == 0
        assert "rename" in capsys.readouterr().out

    def test_figure_generated(self, capsys):
        assert main(["figure", "fig4_8", "--apps", "3",
                     "--length", "1500"]) == 0
        assert "Coverage" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig9_9"]) == 2
        assert "unknown figure" in capsys.readouterr().err
