"""Unit tests: the command-line interface."""

import json

import pytest

from repro import cli
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.model == "TON" and args.length == 20_000

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--model", "ZZ"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.models == "N,TON"
        assert args.apps == "15" and args.length == 20_000
        assert args.jobs is None and args.no_cache is False

    def test_scale_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--apps", "all", "--jobs", "4", "--no-cache"]
        )
        assert args.apps == "all" and args.jobs == 4 and args.no_cache

    @pytest.mark.parametrize("flag,value", [
        ("--apps", "0"), ("--apps", "-3"), ("--apps", "some"),
        ("--length", "0"), ("--jobs", "0"),
    ])
    def test_bad_scale_values_rejected(self, flag, value):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", flag, value])

    def test_figure_accepts_multiple_names(self):
        args = build_parser().parse_args(["figure", "fig4_1", "headline"])
        assert args.names == ["fig4_1", "headline"]

    def test_figure_requires_a_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_cache_actions(self):
        assert build_parser().parse_args(["cache", "info"]).action == "info"
        assert build_parser().parse_args(["cache", "clear"]).action == "clear"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "purge"])

    def test_help_documents_new_surface(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "cache" in out
        assert "REPRO_CACHE_DIR" in out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "TON" in out
        assert "fig4_11" in out
        assert "wupwise" in out

    def test_run(self, capsys):
        assert main(["run", "gzip", "--model", "N", "--length", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "energy" in out

    def test_run_unknown_app(self, capsys):
        assert main(["run", "nonesuch"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "--models", "N,TN", "--apps", "2",
                     "--length", "1200"]) == 0
        out = capsys.readouterr().out
        assert "N IPC" in out and "TN IPC" in out

    def test_sweep_unknown_model(self, capsys):
        assert main(["sweep", "--models", "N,QQ", "--apps", "2"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_figure_table(self, capsys):
        assert main(["figure", "table3_2"]) == 0
        assert "rename" in capsys.readouterr().out

    def test_figure_generated(self, capsys):
        assert main(["figure", "fig4_8", "--apps", "3",
                     "--length", "1500"]) == 0
        assert "Coverage" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig9_9"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_unknown_name_rejected_before_simulating(self, capsys):
        # A bad name anywhere in the list fails fast, before any runs.
        assert main(["figure", "fig4_8", "fig9_9", "--apps", "2"]) == 2
        assert "fig9_9" in capsys.readouterr().err
        assert not cli._RUNNERS

    def test_multiple_figures_share_one_runner(self, capsys):
        assert main(["figure", "table3_1", "fig4_8", "fig4_10",
                     "--apps", "2", "--length", "1200"]) == 0
        captured = capsys.readouterr()
        assert "Table 3.1" in captured.out
        assert "Coverage" in captured.out
        assert "Figure 4.10" in captured.out
        # fig4_8 and fig4_10 both need TOW/TON runs; one shared runner
        # means each (model, app) cell simulated at most once.
        [runner] = cli._RUNNERS.values()
        assert runner.simulations_run == runner.runs_cached

    def test_repeated_invocations_reuse_shared_runner(self, capsys):
        argv = ["figure", "fig4_8", "--apps", "2", "--length", "1200",
                "--no-cache"]
        assert main(argv) == 0
        [runner] = cli._RUNNERS.values()
        runs = runner.simulations_run
        assert runs > 0
        assert main(argv) == 0
        assert runner.simulations_run == runs  # memo served everything


class TestResultStoreCli:
    def test_cache_info_empty(self, capsys):
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries   0" in out and "repro-cache" in out

    def test_sweep_populates_store_then_serves_from_it(self, capsys):
        argv = ["sweep", "--models", "N,TN", "--apps", "2",
                "--length", "1200", "--jobs", "1"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "4 simulated" in first.err

        cli.reset_runners()  # force a fresh runner: only the disk store left
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "0 simulated, 4 from store" in second.err
        assert second.out == first.out  # byte-identical table

        assert main(["cache", "info"]) == 0
        assert "entries   4" in capsys.readouterr().out

    def test_no_cache_bypasses_store(self, capsys):
        argv = ["sweep", "--models", "N", "--apps", "2", "--length", "1200",
                "--no-cache"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert "entries   0" in capsys.readouterr().out

    def test_cache_clear(self, capsys):
        assert main(["sweep", "--models", "N", "--apps", "2",
                     "--length", "1200"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "entries   0" in capsys.readouterr().out

    def test_cache_info_counts_corrupt_shard_and_orphan_tmp_once(self, capsys):
        """A corrupt-body compiled-plan shard is quarantined and counted
        exactly once, an orphaned writer tmp file is swept and counted
        exactly once, and the plans size covers only healthy shards.
        """
        import marshal

        from repro.pipeline.specialize import CompiledPlanCache, _header

        cache = CompiledPlanCache()
        code = compile("def replay(core, mem_lats):\n    pass\n",
                       "<test>", "exec")
        key_ok = "ab" + "0" * 62
        cache.store(key_ok, code)
        healthy_size = cache._path(key_ok).stat().st_size

        # Valid header, body that decodes to a float instead of raising.
        bad_path = cache._path("cd" + "0" * 62)
        bad_path.parent.mkdir(parents=True, exist_ok=True)
        bad_path.write_bytes(_header() + marshal.dumps(2.5))
        orphan = bad_path.with_name(bad_path.name + ".tmp.12345")
        orphan.write_bytes(b"partial write")

        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "  compiled  1" in out
        assert f"  size      {healthy_size} bytes" in out
        assert "  quarantined 1 corrupt/stale entry" in out
        assert "  swept     1 stale tmp file(s)" in out
        assert not bad_path.exists() and not orphan.exists()

        # Both were handled (and reported) once: a rerun starts clean.
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "  compiled  1" in out
        assert "quarantined" not in out


class TestShardParser:
    def test_plan_defaults(self):
        args = build_parser().parse_args(["shard", "plan", "--shards", "2"])
        assert args.models == "all" and args.apps == "15"
        assert args.shards == 2 and args.output == "shard-plan.json"

    def test_plan_requires_shards(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "plan"])

    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["shard", "run", "plan.json", "--index", "1"]
        )
        assert args.plan == "plan.json" and args.index == 1
        assert args.jobs is None and args.store is None
        assert args.no_artifacts is False

    def test_merge_takes_source_list(self):
        args = build_parser().parse_args(
            ["shard", "merge", "a", "b", "--into", "m", "--plan", "p.json"]
        )
        assert args.sources == ["a", "b"] and args.into == "m"
        assert args.plan == "p.json" and args.keep_corrupt is False

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8035
        assert args.lru == 256 and args.jobs is None and args.store is None


class TestShardCommands:
    def test_plan_run_merge_round_trip(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        assert main(["shard", "plan", "--models", "N,TON", "--apps", "2",
                     "--length", "1200", "--shards", "2",
                     "--output", str(plan)]) == 0
        out = capsys.readouterr().out
        assert "planned 4 cells over 2 shard(s)" in out
        assert "digest" in out and plan.exists()

        for index in range(2):
            assert main(["shard", "run", str(plan), "--index", str(index),
                         "--store", str(tmp_path / f"s{index}")]) == 0
            out = capsys.readouterr().out
            assert f"shard {index + 1}/2: 2 cell(s) — 2 simulated" in out

        merge = ["shard", "merge", str(tmp_path / "s0"), str(tmp_path / "s1"),
                 "--into", str(tmp_path / "merged"), "--plan", str(plan)]
        assert main(merge) == 0
        out = capsys.readouterr().out
        assert out.count("2 copied, 0 identical") == 2
        assert "plan complete: all 4 cell(s)" in out

        # Idempotent: the second merge copies nothing and stays healthy.
        assert main(merge) == 0
        out = capsys.readouterr().out
        assert out.count("0 copied, 2 identical") == 2

    def test_merge_flags_missing_cells(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        assert main(["shard", "plan", "--models", "N", "--apps", "2",
                     "--length", "1200", "--shards", "2",
                     "--output", str(plan)]) == 0
        capsys.readouterr()
        assert main(["shard", "run", str(plan), "--index", "0",
                     "--store", str(tmp_path / "s0")]) == 0
        capsys.readouterr()
        assert main(["shard", "merge", str(tmp_path / "s0"),
                     "--into", str(tmp_path / "merged"),
                     "--plan", str(plan)]) == 1
        out = capsys.readouterr().out
        assert "1 of 2 plan cell(s) missing" in out
        assert "missing: N/" in out

    def test_plan_rejects_unknown_model(self, tmp_path, capsys):
        assert main(["shard", "plan", "--models", "N,QQ", "--shards", "1",
                     "--output", str(tmp_path / "p.json")]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_run_rejects_tampered_plan(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        assert main(["shard", "plan", "--models", "N", "--apps", "1",
                     "--length", "1200", "--shards", "1",
                     "--output", str(plan)]) == 0
        capsys.readouterr()
        payload = json.loads(plan.read_text())
        payload["length"] = 9999
        plan.write_text(json.dumps(payload))
        assert main(["shard", "run", str(plan), "--index", "0",
                     "--store", str(tmp_path / "s0")]) == 2
        assert "digest mismatch" in capsys.readouterr().err
