"""Unit tests: gshare + BTB + return-address-stack branch prediction."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa.decoder import decode_template
from repro.isa.instruction import MacroInstruction
from repro.isa.opcodes import InstrClass


def _cti(iclass, address=0x1000, target=0x2000, length=2):
    return MacroInstruction(
        address=address, length=length, iclass=iclass,
        uops=decode_template(iclass, src1=3), taken_target=target,
    )


class TestConstruction:
    def test_non_pow2_rejected(self):
        with pytest.raises(ConfigurationError):
            BranchPredictor(1000)


class TestConditionalDirection:
    def test_learns_always_taken(self):
        predictor = BranchPredictor(1024)
        missed = sum(
            predictor.update_conditional(0x1000, True) for _ in range(50)
        )
        assert missed <= 2  # warms up within a couple of updates

    def test_learns_loop_pattern_with_history(self):
        """A short repeating pattern is captured through global history."""
        predictor = BranchPredictor(4096)
        pattern = [True, True, False]
        missed = 0
        for i in range(600):
            missed += predictor.update_conditional(0x1000, pattern[i % 3])
        assert missed / 600 < 0.1

    def test_random_branch_mispredicts_heavily(self):
        predictor = BranchPredictor(1024)
        rng = random.Random(7)
        missed = sum(
            predictor.update_conditional(0x1000, rng.random() < 0.5)
            for _ in range(2000)
        )
        assert missed / 2000 > 0.3

    def test_reset_restores_initial_state(self):
        predictor = BranchPredictor(1024)
        for _ in range(100):
            predictor.update_conditional(0x1000, True)
        predictor.reset()
        assert predictor.stats.predictions == 0


class TestFullCtiHandling:
    def test_direct_jump_misses_once_then_hits(self):
        predictor = BranchPredictor(1024)
        jump = _cti(InstrClass.DIRECT_JUMP)
        assert predictor.predict_and_train(jump, True, 0x2000) is True
        assert predictor.predict_and_train(jump, True, 0x2000) is False

    def test_return_uses_ras(self):
        predictor = BranchPredictor(1024)
        call = _cti(InstrClass.CALL_DIRECT, address=0x1000, target=0x5000)
        ret = _cti(InstrClass.RETURN_NEAR, address=0x5004, target=None)
        predictor.predict_and_train(call, True, 0x5000)
        # Return to the call's fall-through: predicted by the RAS.
        assert predictor.predict_and_train(ret, True, call.fallthrough) is False

    def test_return_mispredicts_on_empty_ras(self):
        predictor = BranchPredictor(1024)
        ret = _cti(InstrClass.RETURN_NEAR, target=None)
        assert predictor.predict_and_train(ret, True, 0x1234) is True
        assert predictor.stats.return_mispredictions == 1

    def test_nested_calls_unwind_in_order(self):
        predictor = BranchPredictor(1024)
        call_a = _cti(InstrClass.CALL_DIRECT, address=0x1000, target=0x5000)
        call_b = _cti(InstrClass.CALL_DIRECT, address=0x5000, target=0x6000)
        ret = _cti(InstrClass.RETURN_NEAR, address=0x6000, target=None)
        predictor.predict_and_train(call_a, True, 0x5000)
        predictor.predict_and_train(call_b, True, 0x6000)
        assert predictor.predict_and_train(ret, True, call_b.fallthrough) is False
        assert predictor.predict_and_train(ret, True, call_a.fallthrough) is False

    def test_indirect_jump_predicts_last_target(self):
        predictor = BranchPredictor(1024)
        indirect = _cti(InstrClass.INDIRECT_JUMP, target=None)
        assert predictor.predict_and_train(indirect, True, 0x7000) is True
        assert predictor.predict_and_train(indirect, True, 0x7000) is False
        assert predictor.predict_and_train(indirect, True, 0x8000) is True

    def test_software_interrupt_always_flushes(self):
        predictor = BranchPredictor(1024)
        trap = _cti(InstrClass.SOFTWARE_INT, target=None)
        assert predictor.predict_and_train(trap, False, trap.fallthrough) is True

    def test_stats_aggregate(self):
        predictor = BranchPredictor(1024)
        branch = _cti(InstrClass.COND_BRANCH)
        for _ in range(10):
            predictor.predict_and_train(branch, True, 0x2000)
        stats = predictor.stats
        assert stats.cond_predictions == 10
        assert stats.predictions == 10
        assert 0.0 <= stats.misprediction_rate <= 1.0
