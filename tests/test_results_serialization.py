"""Property + integration tests: versioned result serialization.

The parallel engine ships results across process boundaries and persists
them in the on-disk store as ``to_dict()`` payloads, so the round trip
must be *exact* — including through an actual JSON encode/decode, which
is what the store does (JSON preserves Python floats bit-for-bit).
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.results import SCHEMA_VERSION, SimulationResult, TraceUnitStats
from repro.power.energy import COMPONENTS, EnergyResult
from repro.power.metrics import PerformanceEnergyPoint
from repro.trace.tid import TraceId

finite = st.floats(allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=0, max_value=2**40)
names = st.text(min_size=1, max_size=12)


@st.composite
def trace_ids(draw):
    num_branches = draw(st.integers(min_value=0, max_value=12))
    directions = draw(st.integers(min_value=0, max_value=(1 << num_branches) - 1))
    return TraceId(
        start=draw(st.integers(min_value=0, max_value=2**40)),
        directions=directions,
        num_branches=num_branches,
        num_instructions=draw(st.integers(min_value=0, max_value=256)),
    )

trace_stats_st = st.builds(
    TraceUnitStats,
    segments=counts,
    traces_constructed=counts,
    traces_optimized=counts,
    optimizations_dropped=counts,
    hot_executions=counts,
    optimized_executions=counts,
    trace_mispredicts=counts,
    tcache_miss_on_predict=counts,
    weighted_uop_reduction=finite,
    weighted_dep_reduction=finite,
    # Keyed by TraceId in real runs; bare ints appear in hand-built tests
    # and must survive the round trip too.
    optimized_exec_counts=st.dictionaries(
        st.one_of(trace_ids(), st.integers(min_value=0, max_value=2**31)),
        st.integers(min_value=0, max_value=2**31),
        max_size=6,
    ),
)

energy_st = st.builds(
    EnergyResult,
    dynamic=finite,
    leakage=finite,
    by_component=st.dictionaries(st.sampled_from(COMPONENTS), finite, max_size=6),
)

result_st = st.builds(
    SimulationResult,
    app_name=names,
    suite=names,
    model_name=names,
    instructions=counts,
    cycles=finite,
    uops_cold=counts,
    uops_hot=counts,
    uops_wasted=counts,
    hot_instructions=counts,
    cold_branch_mispredicts=counts,
    cold_branch_predictions=counts,
    trace_predictions=counts,
    trace_mispredictions=counts,
    energy=st.one_of(st.none(), energy_st),
    trace_stats=trace_stats_st,
    events=st.dictionaries(names, finite, max_size=6),
)


class TestRoundTripProperties:
    @given(result_st)
    def test_simulation_result_exact_json_round_trip(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert SimulationResult.from_dict(payload) == result

    @given(trace_stats_st)
    def test_trace_stats_exact_round_trip(self, stats):
        payload = json.loads(json.dumps(stats.to_dict()))
        restored = TraceUnitStats.from_dict(payload)
        assert restored == stats
        # JSON stringifies the per-trace keys; from_dict must restore the
        # original TraceId / int keys, not leave strings behind.
        assert all(
            isinstance(tid, (TraceId, int))
            for tid in restored.optimized_exec_counts
        )

    @given(energy_st)
    def test_energy_result_exact_round_trip(self, energy):
        payload = json.loads(json.dumps(energy.to_dict()))
        assert EnergyResult.from_dict(payload) == energy

    @given(
        instructions=st.integers(min_value=1, max_value=2**40),
        cycles=st.floats(min_value=1e-9, max_value=1e12, allow_nan=False),
        energy=st.floats(min_value=1e-9, max_value=1e12, allow_nan=False),
    )
    def test_performance_energy_point_round_trip(
        self, instructions, cycles, energy
    ):
        point = PerformanceEnergyPoint(
            instructions=instructions, cycles=cycles, energy=energy
        )
        payload = json.loads(json.dumps(point.to_dict()))
        assert PerformanceEnergyPoint.from_dict(payload) == point


class TestSchemaVersioning:
    def test_payload_is_stamped(self):
        result = SimulationResult(app_name="a", suite="s", model_name="N")
        assert result.to_dict()["schema_version"] == SCHEMA_VERSION

    @pytest.mark.parametrize("version", [None, 0, SCHEMA_VERSION + 1, "1"])
    def test_mismatched_schema_rejected(self, version):
        payload = SimulationResult(
            app_name="a", suite="s", model_name="N"
        ).to_dict()
        payload["schema_version"] = version
        with pytest.raises(ValueError, match="schema version"):
            SimulationResult.from_dict(payload)

    def test_missing_version_rejected(self):
        payload = SimulationResult(
            app_name="a", suite="s", model_name="N"
        ).to_dict()
        del payload["schema_version"]
        with pytest.raises(ValueError):
            SimulationResult.from_dict(payload)


class TestRealRunRoundTrip:
    def test_full_simulation_round_trips_exactly(self, swim_result_ton):
        payload = json.loads(json.dumps(swim_result_ton.to_dict()))
        restored = SimulationResult.from_dict(payload)
        assert restored == swim_result_ton
        # Derived metrics agree bit-for-bit too.
        assert restored.ipc == swim_result_ton.ipc
        assert restored.total_energy == swim_result_ton.total_energy
        assert restored.point.cmpw == swim_result_ton.point.cmpw
        assert (restored.trace_stats.mean_optimized_reuse
                == swim_result_ton.trace_stats.mean_optimized_reuse)
