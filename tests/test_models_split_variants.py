"""Unit tests: parameterised split-core variants (the §5 future-work API)."""

import pytest

from repro.core.simulator import ParrotSimulator
from repro.models.configs import model_tos
from repro.workloads.suite import application


class TestSplitVariants:
    def test_cold_width_configurable(self):
        narrow = model_tos(cold_width=2)
        assert narrow.cold_profile.rename_width == 2
        assert narrow.core.rename_width == 8  # hot core unchanged

    def test_switch_latency_configurable(self):
        config = model_tos(state_switch_latency=10)
        assert config.state_switch_latency == 10

    def test_variants_simulate(self):
        app = application("equake")
        for cold_width in (2, 4):
            config = model_tos(cold_width=cold_width, state_switch_latency=1)
            result = ParrotSimulator(config).run(app, 3000)
            assert result.instructions == 3000

    def test_higher_switch_latency_never_speeds_up(self):
        app = application("equake")
        fast = ParrotSimulator(model_tos(state_switch_latency=1)).run(app, 5000)
        slow = ParrotSimulator(model_tos(state_switch_latency=20)).run(app, 5000)
        assert slow.cycles >= fast.cycles

    def test_narrower_cold_core_never_speeds_up(self):
        app = application("gcc")  # cold-heavy: the cold width matters
        wide_cold = ParrotSimulator(model_tos(cold_width=4)).run(app, 5000)
        slim_cold = ParrotSimulator(model_tos(cold_width=2)).run(app, 5000)
        assert slim_cold.ipc <= wide_cold.ipc * 1.01
