"""Sampled simulation: config, scheduler, estimator, warmup, end-to-end.

The end-to-end contract (ISSUE 4): sampled runs at 200k instructions must
reproduce the full-detail IPC and energy of the golden (app, model) pairs
within the reported confidence interval, while ``sampling=None`` remains
the historical, bit-identical full-detail path.
"""

import math

import pytest

from repro.core.simulator import ParrotSimulator, SampledRun
from repro.errors import ConfigurationError, SimulationError
from repro.models.configs import model_config
from repro.sampling import (
    Interval,
    IntervalMeasurement,
    SamplingConfig,
    build_estimate,
    estimate_metric,
    plan_intervals,
    student_t,
)
from repro.workloads.suite import application

#: The golden pairs of the acceptance criteria.
GOLDEN_PAIRS = (("swim", "TON"), ("gcc", "N"), ("eon", "TOW"))


# -- SamplingConfig -----------------------------------------------------------


class TestSamplingConfig:
    def test_defaults_are_valid_and_describe_the_period(self):
        cfg = SamplingConfig()
        assert cfg.period == cfg.detail + cfg.gap
        assert cfg.detail_fraction == pytest.approx(cfg.detail / cfg.period)
        assert 0 < cfg.detail_fraction < 0.10

    @pytest.mark.parametrize("kwargs", [
        dict(detail=0),
        dict(gap=0),
        dict(warmup=-1),
        dict(gap=100, warmup=101),
        dict(func_warm=-1),
        dict(gap=1000, warmup=600, func_warm=500),
        dict(confidence=0.5),
        dict(min_intervals=1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingConfig(**kwargs)

    def test_fingerprint_covers_every_knob(self):
        base = SamplingConfig()
        assert base.fingerprint() == SamplingConfig().fingerprint()
        for other in (
            SamplingConfig(detail=2000),
            SamplingConfig(gap=15000),
            SamplingConfig(warmup=2000),
            SamplingConfig(func_warm=3000),
            SamplingConfig(confidence=0.99),
            SamplingConfig(min_intervals=8),
        ):
            assert other.fingerprint() != base.fingerprint()

    @pytest.mark.parametrize("spec", ["off", "none", "0", "false", "", None])
    def test_parse_off(self, spec):
        assert SamplingConfig.parse(spec) is None

    @pytest.mark.parametrize("spec", ["on", "default", "ON"])
    def test_parse_on_is_defaults(self, spec):
        assert SamplingConfig.parse(spec) == SamplingConfig()

    def test_parse_explicit_knobs(self):
        assert SamplingConfig.parse("2000:18000:1000") == SamplingConfig(
            detail=2000, gap=18000, warmup=1000
        )
        assert SamplingConfig.parse("1000:14000:1500:3000") == SamplingConfig(
            func_warm=3000
        )
        assert SamplingConfig.parse("1000:14000:1500:3000:0.99") == (
            SamplingConfig(func_warm=3000, confidence=0.99)
        )
        assert SamplingConfig.parse("2000:18000:1000:0.90") == SamplingConfig(
            detail=2000, gap=18000, warmup=1000, confidence=0.90
        )

    def test_parse_clamps_func_warm_to_short_gaps(self):
        cfg = SamplingConfig.parse("500:2000:500")
        assert cfg.func_warm == 1500  # default 4000 cannot fit a 2000 gap

    @pytest.mark.parametrize("spec", ["1:2", "a:b:c", "1:2:3:4:5:6", "zzz"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            SamplingConfig.parse(spec)


# -- the interval scheduler ---------------------------------------------------


class TestScheduler:
    def test_periodic_plan(self):
        cfg = SamplingConfig(detail=1000, gap=9000, warmup=500, func_warm=2000)
        plan = plan_intervals(100_000, cfg)
        assert len(plan) == 10
        assert all(
            iv == Interval(skip=8500, funcwarm=2000, warmup=500, detail=1000)
            for iv in plan
        )

    def test_funcwarm_clamped_to_lead(self):
        cfg = SamplingConfig(detail=1000, gap=9000, warmup=5000,
                             func_warm=4000)
        plan = plan_intervals(100_000, cfg)
        assert plan[0].skip == 4000 and plan[0].funcwarm == 4000

    def test_short_run_falls_back_to_full_detail(self):
        cfg = SamplingConfig(min_intervals=4)
        plan = plan_intervals(3 * cfg.period, cfg)
        assert plan == [Interval(skip=0, funcwarm=0, warmup=0, detail=3 * cfg.period)]

    def test_trailing_partial_period_dropped(self):
        cfg = SamplingConfig()
        plan = plan_intervals(10 * cfg.period + cfg.period // 2, cfg)
        assert len(plan) == 10

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            plan_intervals(0, SamplingConfig())


# -- the estimator ------------------------------------------------------------


class TestEstimator:
    def test_student_t_monotonic_in_dof(self):
        assert student_t(0.95, 1) > student_t(0.95, 5) > student_t(0.95, 500)

    def test_student_t_conservative_between_rows(self):
        # dof 11 is not tabulated: falls back to dof 10's (wider) value.
        assert student_t(0.95, 11) == student_t(0.95, 10)

    def test_student_t_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            student_t(0.42, 5)
        with pytest.raises(ValueError):
            student_t(0.95, 0)

    def test_estimate_metric_contains(self):
        est = estimate_metric("ipc", [1.0, 1.2, 0.8, 1.1], 0.95)
        assert est.contains(est.mean)
        assert not est.contains(est.upper + 1.0)
        assert est.lower < est.mean < est.upper

    def test_single_sample_has_unbounded_width(self):
        est = estimate_metric("ipc", [2.0], 0.95)
        assert math.isinf(est.half_width)

    def test_exact_mode_has_zero_width(self):
        est = estimate_metric("ipc", [2.0], 0.95, exact=True)
        assert est.half_width == 0.0 and est.mean == 2.0

    def test_build_estimate_energy_scales_epi(self):
        measurements = [
            IntervalMeasurement(instructions=1000, cycles=500.0, energy=3000.0),
            IntervalMeasurement(instructions=1000, cycles=400.0, energy=2800.0),
        ]
        est = build_estimate(
            measurements, total_instructions=50_000, confidence=0.95
        )
        assert est.detail_instructions == 2000
        assert est.detail_fraction == pytest.approx(0.04)
        assert est.energy.mean == pytest.approx(est.epi.mean * 50_000)

    def test_build_estimate_rejects_empty(self):
        with pytest.raises(ValueError):
            build_estimate([], total_instructions=1, confidence=0.95)


# -- fast-forward state identity ---------------------------------------------


class TestSkipIdentity:
    """The block-compiled skip paths must be bit-identical to a full walk."""

    @pytest.mark.parametrize("app_name", ["swim", "gcc", "eon"])
    def test_plain_skip_matches_materialised_walk(self, app_name):
        app = application(app_name)
        skipping, walking = app.build().stream(60_000), app.build().stream(60_000)
        for size in (1, 7, 500, 3, 4096, 999, 64):
            skipping.skip(size)
            walking.take_batch(size)
            for got, want in zip(skipping.take_batch(333), walking.take_batch(333)):
                assert got.instr.address == want.instr.address
                assert got.taken == want.taken
                assert got.next_address == want.next_address
                assert got.mem_addr == want.mem_addr

    @pytest.mark.parametrize("app_name", ["gcc", "eon"])
    def test_warm_skip_effects_match_reference(self, app_name):
        app = application(app_name)
        count, line_shift = 7000, 6

        reference, log_ref, last_line = app.build().stream(20_000), [], -1
        for dyn in reference.take_batch(count):
            instr = dyn.instr
            line = instr.address >> line_shift
            if line != last_line:
                log_ref.append(("fetch", instr.address))
                last_line = line
            if instr.is_cti:
                log_ref.append(("train", instr.address, dyn.taken,
                                dyn.next_address))
            if dyn.mem_addr is not None:
                log_ref.append(("touch", dyn.mem_addr))

        warmed, log = app.build().stream(20_000), []
        warmed.skip(count, warm=(
            lambda a: log.append(("fetch", a)),
            lambda a: log.append(("touch", a)),
            lambda i, t, n: log.append(("train", i.address, t, n)),
            line_shift,
        ))
        assert log == log_ref
        # The walker itself must end in the identical state too.
        for got, want in zip(warmed.take_batch(500), reference.take_batch(500)):
            assert got.instr.address == want.instr.address
            assert got.mem_addr == want.mem_addr


# -- end-to-end sampled simulation -------------------------------------------


class TestSampledRuns:
    def test_sampling_none_is_the_historical_path(self):
        sim = ParrotSimulator(model_config("TON"))
        app = application("swim")
        assert sim.run(app, 20_000) == sim.run(app, 20_000, sampling=None)

    def test_sampled_run_is_deterministic(self):
        sim = ParrotSimulator(model_config("N"))
        app = application("gzip")
        cfg = SamplingConfig()
        first = sim.run_sampled(app, 120_000, sampling=cfg)
        second = sim.run_sampled(app, 120_000, sampling=cfg)
        assert first.result == second.result
        assert first.estimate.ipc.mean == second.estimate.ipc.mean

    def test_config_level_sampling_flows_through_run(self):
        import dataclasses

        cfg = dataclasses.replace(
            model_config("N"), sampling=SamplingConfig()
        )
        sim = ParrotSimulator(cfg)
        result = sim.run(application("gzip"), 120_000)
        assert result.instructions == 120_000
        # Sampled extrapolation differs from the bit-exact full walk.
        full = ParrotSimulator(model_config("N")).run(
            application("gzip"), 120_000
        )
        assert result.cycles != full.cycles

    def test_short_run_degenerates_to_exact_full_detail(self):
        sim = ParrotSimulator(model_config("N"))
        app = application("gzip")
        sampled = sim.run_sampled(app, 20_000, sampling=SamplingConfig())
        assert isinstance(sampled, SampledRun)
        assert sampled.estimate.exact
        assert sampled.estimate.ipc.half_width == 0.0
        assert sampled.result == sim.run(app, 20_000)

    def test_run_sampled_rejects_nonpositive_length(self):
        sim = ParrotSimulator(model_config("N"))
        with pytest.raises(SimulationError):
            sim.run_sampled(application("gzip"), 0)

    @pytest.mark.parametrize("app_name,model_name", GOLDEN_PAIRS)
    def test_parity_with_full_detail_at_200k(self, app_name, model_name):
        """The acceptance bar: sampled tracks full detail on the goldens.

        IPC and energy-per-instruction of the full-detail run must fall
        inside the sampled run's reported 95% confidence intervals, and
        the point estimates must be close (well under 10% error).
        """
        length = 200_000
        sim = ParrotSimulator(model_config(model_name))
        app = application(app_name)
        full = sim.run(app, length)
        sampled = sim.run_sampled(app, length, sampling=SamplingConfig())
        estimate = sampled.estimate

        assert not estimate.exact
        assert len(estimate.intervals) >= SamplingConfig().min_intervals
        assert sampled.result.instructions == length

        full_ipc = full.instructions / full.cycles
        full_epi = full.energy.total / full.instructions
        assert estimate.ipc.contains(full_ipc), (
            f"full IPC {full_ipc:.4f} outside {estimate.ipc.format()}"
        )
        assert estimate.epi.contains(full_epi), (
            f"full EPI {full_epi:.4f} outside {estimate.epi.format()}"
        )
        assert abs(estimate.ipc.mean - full_ipc) / full_ipc < 0.10
        assert (
            abs(sampled.result.energy.total - full.energy.total)
            / full.energy.total
            < 0.10
        )
