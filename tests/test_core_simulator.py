"""Integration tests: the PARROT machine simulator end to end."""

import pytest

from repro.core.simulator import ParrotSimulator
from repro.errors import SimulationError
from repro.models.configs import MODEL_NAMES, model_config
from repro.workloads.suite import application


class TestBasicRuns:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_every_model_simulates(self, model):
        result = ParrotSimulator(model_config(model)).run(application("gzip"), 3000)
        assert result.instructions == 3000
        assert result.cycles > 0
        assert result.ipc > 0
        assert result.total_energy > 0
        assert result.model_name == model

    def test_zero_length_rejected(self):
        with pytest.raises(SimulationError):
            ParrotSimulator(model_config("N")).run(application("gzip"), 0)

    def test_simulation_is_deterministic(self):
        sim = ParrotSimulator(model_config("TON"))
        r1 = sim.run(application("art"), 4000)
        r2 = sim.run(application("art"), 4000)
        assert r1.cycles == r2.cycles
        assert r1.total_energy == r2.total_energy
        assert r1.coverage == r2.coverage
        assert r1.events == r2.events

    def test_simulator_reusable_across_apps(self):
        sim = ParrotSimulator(model_config("TON"))
        r1 = sim.run(application("gzip"), 2000)
        r2 = sim.run(application("swim"), 2000)
        assert r1.app_name == "gzip" and r2.app_name == "swim"
        # No state leaks: rerunning gzip reproduces the first result.
        assert sim.run(application("gzip"), 2000).cycles == r1.cycles


class TestColdOnlyModels:
    def test_no_hot_activity_without_trace_cache(self, swim_result_n):
        result = swim_result_n
        assert result.coverage == 0.0
        assert result.uops_hot == 0
        assert result.trace_stats.hot_executions == 0
        assert result.events.get("tcache_read", 0) == 0
        assert result.events.get("tpred_lookup", 0) == 0

    def test_cold_pipeline_decodes_everything(self, swim_result_n):
        assert swim_result_n.events["decode_instr"] == swim_result_n.instructions


class TestTraceCacheModels:
    def test_hot_execution_happens(self, swim_result_ton):
        result = swim_result_ton
        assert result.coverage > 0.5
        assert result.uops_hot > 0
        assert result.trace_stats.traces_constructed > 0

    def test_hot_coverage_reduces_decode(self, swim_result_ton):
        assert swim_result_ton.events["decode_instr"] < swim_result_ton.instructions

    def test_optimization_happens_on_ton(self, swim_result_ton):
        stats = swim_result_ton.trace_stats
        assert stats.traces_optimized > 0
        assert stats.optimized_executions > 0
        assert swim_result_ton.uop_reduction > 0

    def test_tn_never_optimizes(self):
        result = ParrotSimulator(model_config("TN")).run(application("swim"), 6000)
        assert result.trace_stats.traces_optimized == 0
        assert result.uop_reduction == 0.0
        assert result.events.get("optimizer_uop", 0) == 0

    def test_uop_accounting_consistent(self, swim_result_ton):
        result = swim_result_ton
        # Hot + cold uops cover all committed instructions' uops, up to
        # optimization shrinking hot traces.
        assert result.uops_cold > 0
        assert result.uops_hot > 0

    def test_instruction_partition(self, swim_result_ton):
        result = swim_result_ton
        assert 0 <= result.hot_instructions <= result.instructions


class TestSplitMachine:
    def test_tos_switches_state(self):
        result = ParrotSimulator(model_config("TOS")).run(application("swim"), 6000)
        assert result.events.get("state_switch", 0) > 0
        assert result.coverage > 0.3

    def test_tos_completes_on_irregular_code(self):
        result = ParrotSimulator(model_config("TOS")).run(application("gcc"), 4000)
        assert result.instructions == 4000


class TestPrewarm:
    def test_prewarm_reduces_memory_traffic(self):
        sim = ParrotSimulator(model_config("N"))
        warm = sim.run(application("equake"), 4000, prewarm=True)
        cold = sim.run(application("equake"), 4000, prewarm=False)
        assert warm.events.get("memory_access", 0) < cold.events.get("memory_access", 1)
        assert warm.ipc >= cold.ipc


class TestCustomStream:
    def test_run_stream_api(self, fp_workload):
        sim = ParrotSimulator(model_config("TON"))
        result = sim.run_stream(
            fp_workload.stream(2000),
            app_name="custom-fp", suite="Custom",
            program=fp_workload.program,
        )
        assert result.app_name == "custom-fp"
        assert result.instructions == 2000


class TestEnergyAccounting:
    def test_energy_components_populated(self, swim_result_ton):
        energy = swim_result_ton.energy
        assert energy is not None
        assert energy.by_component["frontend"] > 0
        assert energy.by_component["trace_unit"] > 0
        assert energy.by_component["leakage"] > 0

    def test_core_cycles_event_matches_cycles(self, swim_result_ton):
        assert swim_result_ton.events["core_cycle"] == pytest.approx(
            swim_result_ton.cycles
        )

    def test_n_has_no_trace_unit_energy(self, swim_result_n):
        assert swim_result_n.energy.by_component["trace_unit"] == 0.0
