"""Property-based tests: trace selection over arbitrary synthetic programs.

For randomly parameterised workloads, selection must always produce a
partition that (a) exactly covers the committed stream, (b) respects the
64-uop frame capacity, (c) is reproducible, and (d) assigns path-unique
TIDs.  These are the invariants the whole PARROT machine rests on: the
trace cache and predictor key on TIDs being deterministic path names.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import segment_stream
from repro.trace.trace import TRACE_CAPACITY_UOPS
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import jitter_profile, suite_profile
from repro.workloads.profiles import ALL_SUITES


@st.composite
def workload(draw):
    suite = draw(st.sampled_from(ALL_SUITES))
    seed = draw(st.integers(0, 5000))
    profile = jitter_profile(suite_profile(suite, f"prop-{suite}"), seed)
    return SyntheticWorkload(profile, seed=seed)


class TestSelectionProperties:
    @settings(max_examples=25, deadline=None)
    @given(workload(), st.integers(200, 3000))
    def test_partition_exactly_covers_stream(self, wl, length):
        segments = list(segment_stream(wl.stream(length)))
        assert sum(s.num_instructions for s in segments) == length
        flat = [d for s in segments for d in s.instructions]
        for prev, nxt in zip(flat, flat[1:]):
            assert nxt.address == prev.next_address

    @settings(max_examples=25, deadline=None)
    @given(workload())
    def test_capacity_respected(self, wl):
        for segment in segment_stream(wl.stream(2000)):
            assert segment.uop_count <= TRACE_CAPACITY_UOPS
            assert segment.uop_count == sum(
                d.instr.num_uops for d in segment.instructions
            )

    @settings(max_examples=20, deadline=None)
    @given(workload())
    def test_selection_reproducible(self, wl):
        tids1 = [s.tid for s in segment_stream(wl.stream(1500))]
        tids2 = [s.tid for s in segment_stream(wl.stream(1500))]
        assert tids1 == tids2

    @settings(max_examples=20, deadline=None)
    @given(workload())
    def test_tids_name_unique_paths(self, wl):
        """Among *complete* segments, a TID names exactly one path.

        Incomplete tail segments (stream truncation artefacts) are
        excluded: they never reached a termination condition, carry
        ``complete=False``, and the machine keeps them out of all
        TID-keyed structures.
        """
        paths: dict = {}
        for segment in segment_stream(wl.stream(2500)):
            if not segment.complete:
                continue
            path = tuple(
                (d.address, d.taken) for d in segment.instructions
            )
            if segment.tid in paths:
                assert paths[segment.tid] == path
            else:
                paths[segment.tid] = path

    @settings(max_examples=20, deadline=None)
    @given(workload())
    def test_at_most_one_incomplete_tail(self, wl):
        segments = list(segment_stream(wl.stream(1200)))
        incomplete = [s for s in segments if not s.complete]
        assert len(incomplete) <= 1
        if incomplete:
            assert segments[-1] is incomplete[0]

    @settings(max_examples=20, deadline=None)
    @given(workload())
    def test_tid_starts_match_segment_starts(self, wl):
        for segment in segment_stream(wl.stream(1500)):
            assert segment.tid.start == segment.instructions[0].address

    @settings(max_examples=20, deadline=None)
    @given(workload())
    def test_branch_counts_match_directions(self, wl):
        from repro.isa.opcodes import InstrClass
        for segment in segment_stream(wl.stream(1500)):
            branches = [
                d for d in segment.instructions
                if d.instr.iclass is InstrClass.COND_BRANCH
            ]
            assert segment.tid.num_branches == len(branches)
            for i, dyn in enumerate(branches):
                assert segment.tid.direction(i) == dyn.taken
