"""Unit tests: the cycle-level out-of-order timing core."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.instruction import Uop
from repro.isa.opcodes import FuClass, UopKind
from repro.isa.registers import REG_NONE
from repro.pipeline.core import TimingCore
from repro.pipeline.resources import (
    CoreParams,
    ExecProfile,
    narrow_core_params,
    wide_core_params,
)


def _core(**overrides) -> TimingCore:
    params = narrow_core_params()
    if overrides:
        import dataclasses
        params = dataclasses.replace(params, **overrides)
    return TimingCore(params)


def _alu(dest=0, src1=REG_NONE, src2=REG_NONE):
    return Uop(UopKind.ALU, dest, src1, src2, 1)


class TestCoreParams:
    def test_rob_must_cover_window(self):
        with pytest.raises(ConfigurationError):
            CoreParams("bad", 4, 4, 4, rob_size=16, window_size=32)

    def test_widths_positive(self):
        with pytest.raises(ConfigurationError):
            CoreParams("bad", 0, 4, 4, rob_size=64, window_size=32)

    def test_wide_core_doubles_widths(self):
        narrow, wide = narrow_core_params(), wide_core_params()
        assert wide.rename_width == 2 * narrow.rename_width
        assert wide.area > narrow.area

    def test_exec_profile_from_params(self):
        profile = ExecProfile.from_params(narrow_core_params())
        assert profile.rename_width == 4
        assert FuClass.INT in profile.fu_counts


class TestThroughput:
    def test_independent_int_uops_bound_by_int_units(self):
        """Independent ALU uops saturate the 3 integer units, not rename."""
        core = _core()
        for i in range(250):
            group = core.begin_fetch_group()
            for j in range(4):
                core.run_uop(_alu(dest=(i * 4 + j) % 12), group)
        ipc = core.uops_executed / (core.cycles - core.params.front_depth)
        assert 2.7 < ipc <= 3.1

    def test_mixed_fu_uops_sustain_rename_width(self):
        """A mix spread across FU classes reaches the 4-wide rename limit."""
        kinds = [UopKind.ALU, UopKind.ALU, UopKind.FP_ADD, UopKind.LOAD]
        core = _core()
        for i in range(250):
            group = core.begin_fetch_group()
            for j, kind in enumerate(kinds):
                dest = 16 + (i + j) % 8 if kind is UopKind.FP_ADD else (i * 4 + j) % 12
                core.run_uop(Uop(kind, dest), group,
                             mem_latency=3 if kind is UopKind.LOAD else 0)
        ipc = core.uops_executed / (core.cycles - core.params.front_depth)
        assert 3.5 < ipc <= 4.05

    def test_serial_chain_runs_at_one_per_cycle(self):
        """A fully serial dependence chain cannot exceed 1 uop/cycle."""
        core = _core()
        for i in range(200):
            group = core.begin_fetch_group()
            core.run_uop(_alu(dest=0, src1=0), group)
        assert core.uops_executed / core.cycles < 1.1

    def test_wider_profile_raises_throughput(self):
        def run(params):
            core = TimingCore(params)
            for i in range(200):
                group = core.begin_fetch_group()
                for j in range(8):
                    core.run_uop(_alu(dest=(i * 8 + j) % 12), group)
            return core.uops_executed / core.cycles

        assert run(wide_core_params()) > run(narrow_core_params()) * 1.4

    def test_fu_contention_limits_issue(self):
        """FP uops bound by the 2 FP units of the narrow core."""
        core = _core()
        for i in range(200):
            group = core.begin_fetch_group()
            for j in range(4):
                core.run_uop(Uop(UopKind.FP_ADD, 16 + (i * 4 + j) % 8), group)
        fp_per_cycle = core.uops_executed / core.cycles
        assert fp_per_cycle <= 2.05


class TestLatencyAndDependences:
    def test_dependent_completion_respects_latency(self):
        core = _core()
        group = core.begin_fetch_group()
        t1 = core.run_uop(Uop(UopKind.MUL, 1, 2, 3), group)   # latency 4
        t2 = core.run_uop(Uop(UopKind.ALU, 4, 1, REG_NONE), group)
        assert t2 >= t1 + 1  # consumer issues after producer completes

    def test_independent_uop_unaffected_by_long_latency(self):
        core = _core()
        group = core.begin_fetch_group()
        core.run_uop(Uop(UopKind.DIV, 1, 2, 3), group)        # latency 20
        t2 = core.run_uop(_alu(dest=5), group)
        assert t2 < 20 + core.params.front_depth

    def test_mem_latency_overrides_default(self):
        core = _core()
        group = core.begin_fetch_group()
        t_load = core.run_uop(Uop(UopKind.LOAD, 1, 2), group, mem_latency=100)
        t_use = core.run_uop(Uop(UopKind.ALU, 3, 1, REG_NONE), group)
        assert t_use > t_load >= 100

    def test_extra_sources_wake_up_correctly(self):
        core = _core()
        group = core.begin_fetch_group()
        slow = core.run_uop(Uop(UopKind.DIV, 5, 1, 2), group)
        packed = Uop(UopKind.SIMD2, 6, 3, 4, dest2=7, extra_srcs=(5,))
        t = core.run_uop(packed, group)
        assert t > slow

    def test_dest2_updates_register_readiness(self):
        core = _core()
        group = core.begin_fetch_group()
        packed = Uop(UopKind.SIMD2, 6, 1, 2, dest2=7, extra_srcs=(3, 4))
        t_packed = core.run_uop(packed, group)
        t_use = core.run_uop(Uop(UopKind.ALU, 8, 7, REG_NONE), group)
        assert t_use >= t_packed + 1


class TestStructuralLimits:
    def test_rob_occupancy_stalls_dispatch(self):
        """A load miss at the ROB head backs up dispatch ~rob_size later."""
        core = _core(rob_size=48, window_size=32)
        group = core.begin_fetch_group()
        core.run_uop(Uop(UopKind.LOAD, 1, 2), group, mem_latency=500)
        last = 0.0
        for i in range(100):
            group = core.begin_fetch_group()
            last = core.run_uop(_alu(dest=3 + i % 8), group)
        assert last > 500  # dispatch waited for the head to commit

    def test_fetch_redirect_stalls_following_uops(self):
        core = _core()
        group = core.begin_fetch_group()
        t_branch = core.run_uop(Uop(UopKind.BRANCH, REG_NONE, 24), group)
        core.redirect_fetch(t_branch + 1)
        group2 = core.begin_fetch_group()
        assert group2 > t_branch

    def test_stall_fetch_advances_clock(self):
        core = _core()
        before = core.begin_fetch_group()
        core.stall_fetch(37)
        assert core.begin_fetch_group() == before + 38

    def test_state_switch_penalises_in_flight_values(self):
        core = _core()
        group = core.begin_fetch_group()
        t_slow = core.run_uop(Uop(UopKind.DIV, 1, 2, 3), group)
        core.apply_state_switch(5)
        t_use = core.run_uop(Uop(UopKind.ALU, 4, 1, REG_NONE), group)
        assert t_use >= t_slow + 5


class TestAccounting:
    def test_events_counted_per_uop(self):
        core = _core()
        group = core.begin_fetch_group()
        core.run_uop(Uop(UopKind.ALU, 1, 2, 3), group)
        core.flush_events()
        events = core.events
        assert events.get("rename_uop") == 1
        assert events.get("issue_uop") == 1
        assert events.get("regfile_read") == 2
        assert events.get("regfile_write") == 1
        assert events.get("exec_int") == 1

    def test_flush_events_is_single_shot(self):
        core = _core()
        group = core.begin_fetch_group()
        core.run_uop(_alu(dest=1), group)
        core.flush_events()
        with pytest.raises(Exception):
            core.flush_events()

    def test_cycles_monotone(self):
        core = _core()
        last = 0.0
        for i in range(100):
            group = core.begin_fetch_group()
            core.run_uop(_alu(dest=i % 12), group)
            assert core.cycles >= last
            last = core.cycles

    def test_invariants_hold_after_mixed_run(self, rng):
        core = _core()
        kinds = [UopKind.ALU, UopKind.LOAD, UopKind.MUL, UopKind.FP_ADD,
                 UopKind.STORE, UopKind.BRANCH]
        for i in range(500):
            group = core.begin_fetch_group()
            for _ in range(rng.randrange(1, 5)):
                kind = rng.choice(kinds)
                core.run_uop(
                    Uop(kind, rng.randrange(12), rng.randrange(12),
                        rng.randrange(12)),
                    group,
                    mem_latency=3 if kind is UopKind.LOAD else 0,
                )
        core.check_invariants()

    def test_slot_pruning_preserves_correct_timing(self):
        """Pruning old issue slots must not let past cycles be reused."""
        core = _core()
        for i in range(20000):
            group = core.begin_fetch_group()
            core.run_uop(_alu(dest=i % 12), group)
        core.check_invariants()
        assert core.cycles >= 20000  # one group per cycle minimum
