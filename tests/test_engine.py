"""Unit + integration tests: Scale, the result store, the parallel engine."""

import json
import multiprocessing
import os
import pathlib
import shutil
import time
from argparse import Namespace
from pathlib import Path

import pytest

from repro.core.results import SimulationResult
from repro.errors import ExperimentError
from repro.experiments import engine as engine_mod
from repro.experiments.engine import (
    DEFAULT_APPS,
    DEFAULT_LENGTH,
    ExperimentEngine,
    ResultStore,
    Scale,
    config_fingerprint,
    default_jobs,
    parse_apps,
    run_key,
)
from repro.experiments.runner import ExperimentRunner
from repro.models.configs import model_config
from repro.sampling import SamplingConfig

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


class TestScale:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        scale = Scale()
        assert scale.apps == DEFAULT_APPS
        assert scale.length == DEFAULT_LENGTH
        assert scale.jobs == default_jobs()
        assert scale.cache is True

    def test_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "all")
        monkeypatch.setenv("REPRO_BENCH_LENGTH", "1234")
        monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        monkeypatch.delenv("REPRO_BENCH_SAMPLING", raising=False)
        scale = Scale.from_environment()
        assert scale == Scale(apps=None, length=1234, jobs=3, cache=False)

    def test_sampling_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SAMPLING", "2000:18000:1000")
        assert Scale.from_environment().sampling == SamplingConfig(
            detail=2000, gap=18000, warmup=1000
        )
        monkeypatch.setenv("REPRO_BENCH_SAMPLING", "off")
        assert Scale.from_environment().sampling is None

    def test_sampling_from_args_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SAMPLING", "on")
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        args = Namespace(apps="2", length=100, jobs=1, no_cache=False,
                         sampling="2000:18000:1000")
        assert Scale.from_args(args).sampling == SamplingConfig(
            detail=2000, gap=18000, warmup=1000
        )
        args.sampling = None  # no CLI flag: the environment wins
        assert Scale.from_args(args).sampling == SamplingConfig()

    def test_from_environment_defaults(self, monkeypatch):
        for var in ("REPRO_BENCH_APPS", "REPRO_BENCH_LENGTH",
                    "REPRO_BENCH_JOBS", "REPRO_BENCH_CACHE"):
            monkeypatch.delenv(var, raising=False)
        scale = Scale.from_environment()
        assert scale.apps == DEFAULT_APPS and scale.length == DEFAULT_LENGTH
        assert scale.jobs >= 1 and scale.cache is True

    def test_from_args(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        args = Namespace(apps="7", length=5000, jobs=2, no_cache=True)
        assert Scale.from_args(args) == Scale(
            apps=7, length=5000, jobs=2, cache=False
        )

    def test_from_args_jobs_falls_back_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "5")
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        args = Namespace(apps="all", length=100, jobs=None, no_cache=False)
        assert Scale.from_args(args) == Scale(
            apps=None, length=100, jobs=5, cache=True
        )

    def test_env_cache_flag_overrides_cli_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        args = Namespace(apps="2", length=100, jobs=1, no_cache=False)
        assert Scale.from_args(args).cache is False

    def test_artifacts_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ARTIFACTS", raising=False)
        assert Scale(apps=1, length=10, jobs=1).artifacts is True
        monkeypatch.setenv("REPRO_BENCH_ARTIFACTS", "0")
        assert Scale.from_environment().artifacts is False
        monkeypatch.delenv("REPRO_BENCH_ARTIFACTS", raising=False)
        args = Namespace(apps="2", length=100, jobs=1, no_cache=False,
                         no_artifacts=True)
        assert Scale.from_args(args).artifacts is False
        args.no_artifacts = False
        assert Scale.from_args(args).artifacts is True
        monkeypatch.setenv("REPRO_BENCH_ARTIFACTS", "off")
        assert Scale.from_args(args).artifacts is False

    def test_parse_apps(self):
        assert parse_apps("all") is None
        assert parse_apps("44") is None
        assert parse_apps("12") == 12
        with pytest.raises(ValueError):
            parse_apps("0")
        with pytest.raises(ValueError):
            parse_apps("nope")

    def test_default_jobs_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        with pytest.raises(ValueError):
            default_jobs()

    def test_default_jobs_respects_affinity_mask(self, monkeypatch):
        # A container pinned to 3 of a 64-core host must get 3 workers,
        # not 64: the affinity mask, not cpu_count, is what is usable.
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5, 9},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_jobs() == 3

    def test_default_jobs_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_jobs() == 5

    def test_env_jobs_overrides_affinity(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "7")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0},
                            raising=False)
        assert default_jobs() == 7

    def test_scale_is_hashable(self):
        assert Scale(apps=2, length=10, jobs=1, cache=True) in {
            Scale(apps=2, length=10, jobs=1, cache=True)
        }


class TestRunKey:
    def test_deterministic(self):
        config = model_config("TON")
        assert run_key(config, "swim", 2000) == run_key(config, "swim", 2000)

    def test_sensitive_to_every_input(self, monkeypatch):
        ton = model_config("TON")
        base = run_key(ton, "swim", 2000)
        assert run_key(model_config("N"), "swim", 2000) != base
        assert run_key(ton, "gzip", 2000) != base
        assert run_key(ton, "swim", 2001) != base
        monkeypatch.setattr(engine_mod, "SCHEMA_VERSION", 999)
        assert run_key(ton, "swim", 2000) != base

    def test_fingerprint_covers_microarchitecture(self):
        assert "bpred_entries=2048" in config_fingerprint(model_config("TON"))
        assert config_fingerprint(model_config("TON")) != config_fingerprint(
            model_config("TOW")
        )

    def test_sampled_and_full_runs_never_collide(self):
        config = model_config("TON")
        full = run_key(config, "swim", 2000)
        sampled = run_key(config, "swim", 2000, SamplingConfig())
        assert sampled != full
        assert run_key(config, "swim", 2000, None) == full
        assert run_key(
            config, "swim", 2000, SamplingConfig(detail=2000)
        ) != sampled


def _dummy_result(model="N", app="gzip", instructions=100):
    return SimulationResult(
        app_name=app, suite="SpecInt", model_name=model,
        instructions=instructions, cycles=50.0,
    )


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _dummy_result()
        store.store("ab" + "0" * 62, result)
        assert store.load("ab" + "0" * 62) == result
        assert store.hits == 1 and store.writes == 1

    def test_miss_on_absent(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("cd" + "0" * 62) is None
        assert store.misses == 1

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "0" * 62
        store.store(key, _dummy_result())
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert store.load(key) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "01" + "0" * 62
        store.store(key, _dummy_result())
        path = tmp_path / key[:2] / f"{key}.json"
        record = json.loads(path.read_text())
        record["result"]["schema_version"] = -1
        path.write_text(json.dumps(record))
        assert store.load(key) is None

    def test_info_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(3):
            store.store(f"{index:02x}" + "0" * 62, _dummy_result())
        info = store.info()
        assert info.entries == 3 and info.total_bytes > 0
        assert info.path == tmp_path
        assert store.clear() == 3
        assert store.info().entries == 0

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultStore().root == tmp_path / "elsewhere"

    def test_info_sweeps_orphaned_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("ab" + "0" * 62, _dummy_result())
        orphans = [
            tmp_path / "ab" / ("ab" + "0" * 62 + ".json.tmp.123"),
            tmp_path / "cd" / ("cd" + "0" * 62 + ".json.tmp.456"),
        ]
        for orphan in orphans:
            orphan.parent.mkdir(exist_ok=True)
            orphan.write_text("half-written")
        info = store.info()
        assert info.stale_tmp == 2 and info.entries == 1
        assert not any(orphan.exists() for orphan in orphans)
        assert store.info().stale_tmp == 0  # second sweep finds nothing

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("ab" + "0" * 62, _dummy_result())
        orphan = tmp_path / "ab" / ("ab" + "0" * 62 + ".json.tmp.123")
        orphan.write_text("half-written")
        assert store.clear() == 1  # orphans are swept, not counted
        assert not orphan.exists()
        assert store.info().entries == 0

    def test_scan_tolerates_shard_deleted_mid_walk(self, tmp_path,
                                                   monkeypatch):
        # A concurrent clear() can remove a shard directory between the
        # root listing and the per-shard scan; the walk must skip it, not
        # raise (the pathlib.glob it replaced raised FileNotFoundError).
        store = ResultStore(tmp_path)
        store.store("ab" + "0" * 62, _dummy_result())
        store.store("cd" + "0" * 62, _dummy_result())
        doomed = tmp_path / "ab"
        real_scandir = os.scandir

        def racing_scandir(path):
            if isinstance(path, (str, os.PathLike)) \
                    and Path(path) == doomed and doomed.exists():
                shutil.rmtree(doomed)  # the "concurrent" deleter wins
            return real_scandir(path)

        monkeypatch.setattr(os, "scandir", racing_scandir)
        assert store.keys() == ["cd" + "0" * 62]

    def test_clear_tolerates_record_deleted_mid_walk(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("ab" + "0" * 62, _dummy_result())
        ghost = tmp_path / "cd" / ("cd" + "0" * 62 + ".json")
        records = store._records() + [ghost]
        store._records = lambda: list(records)  # type: ignore[method-assign]
        assert store.clear() == 1  # the ghost is skipped, not fatal
        assert store.info().entries == 0

    def test_info_tolerates_record_deleted_mid_walk(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("ab" + "0" * 62, _dummy_result())
        ghost = tmp_path / "cd" / ("cd" + "0" * 62 + ".json")
        records = store._records() + [ghost]
        store._records = lambda: list(records)  # type: ignore[method-assign]
        info = store.info()
        assert info.entries == 1 and info.total_bytes > 0

    def test_sweep_tolerates_concurrent_sweeper(self, tmp_path):
        store = ResultStore(tmp_path)
        orphan = tmp_path / "ab" / ("ab" + "0" * 62 + ".json.tmp.9")
        orphan.parent.mkdir()
        orphan.write_text("half-written")
        tmps = store._scan(lambda name: ".tmp." in name)
        orphan.unlink()  # the "other" sweeper got there first
        store._scan = lambda match: list(tmps)  # type: ignore[method-assign]
        assert store._sweep_stale_tmp() == 0  # skipped, not raised


class TestResultStoreLRU:
    def test_disabled_by_default(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        store.store(key, _dummy_result())
        (tmp_path / "ab" / f"{key}.json").unlink()
        assert store.load(key) is None  # no LRU: disk is the only truth

    def test_warm_load_skips_disk(self, tmp_path):
        store = ResultStore(tmp_path, lru=4)
        key = "ab" + "0" * 62
        result = _dummy_result()
        store.store(key, result)
        (tmp_path / "ab" / f"{key}.json").unlink()
        assert store.load(key) == result  # served from the LRU
        assert store.hits == 1 and store.lru_hits == 1

    def test_eviction_is_least_recently_used(self, tmp_path):
        store = ResultStore(tmp_path, lru=2)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for key in keys:
            store.store(key, _dummy_result())
        store.clear()  # drops disk *and* the LRU
        assert all(store.load(key) is None for key in keys)

        for key in keys[:2]:
            store.store(key, _dummy_result())
        store.load(keys[0])  # refresh 0: key 1 is now the LRU victim
        store.store(keys[2], _dummy_result())
        for path in store._records():
            path.unlink()
        assert store.load(keys[0]) is not None
        assert store.load(keys[1]) is None  # evicted
        assert store.load(keys[2]) is not None


class TestEngine:
    def test_unknown_model_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentEngine(1000).run_one("QQ", "gzip")

    def test_parallel_matches_serial_exactly(self):
        tasks = [("N", "gzip"), ("N", "swim"), ("TON", "gzip"), ("TON", "swim")]
        serial = ExperimentEngine(1200, jobs=1).run(tasks)
        parallel = ExperimentEngine(1200, jobs=2).run(tasks)
        assert serial == parallel

    def test_store_serves_second_engine(self, tmp_path):
        tasks = [("N", "gzip"), ("N", "swim")]
        first = ExperimentEngine(1200, store=ResultStore(tmp_path))
        results = first.run(tasks)
        assert first.simulations_run == 2 and first.cache_hits == 0

        second = ExperimentEngine(1200, store=ResultStore(tmp_path))
        again = second.run(tasks)
        assert second.simulations_run == 0 and second.cache_hits == 2
        assert again == results

    def test_store_keys_on_length(self, tmp_path):
        store = ResultStore(tmp_path)
        ExperimentEngine(1200, store=store).run([("N", "gzip")])
        other = ExperimentEngine(1300, store=ResultStore(tmp_path))
        other.run([("N", "gzip")])
        assert other.simulations_run == 1  # different length, no hit

    def test_progress_reporting(self):
        seen = []
        engine = ExperimentEngine(
            1200, progress=lambda *call: seen.append(call)
        )
        engine.run([("N", "gzip"), ("N", "swim")])
        assert [c[:2] for c in seen] == [(1, 2), (2, 2)]

    def test_serial_progress_labels_carry_chunks(self):
        seen = []
        engine = ExperimentEngine(
            1200, progress=lambda *call: seen.append(call)
        )
        engine.run([("N", "gzip"), ("N", "swim")])
        assert [c[2] for c in seen] == [
            "N/gzip [chunk 1/2]", "N/swim [chunk 2/2]",
        ]

    @pytest.mark.skipif(not FORK_AVAILABLE,
                        reason="needs the fork start method")
    def test_parallel_progress_labels_match_serial_format(self):
        # Satellite guarantee: the serial and parallel paths emit the same
        # "model/app [chunk i/n]" labels, so shard logs line up 1:1.
        tasks = [("N", "gzip"), ("W", "gzip"), ("N", "swim"), ("W", "swim")]
        serial_seen, parallel_seen = [], []
        ExperimentEngine(
            800, progress=lambda *call: serial_seen.append(call)
        ).run(tasks)
        ExperimentEngine(
            800, jobs=2, progress=lambda *call: parallel_seen.append(call),
            mp_context=multiprocessing.get_context("fork"),
        ).run(tasks)
        assert sorted(c[2] for c in parallel_seen) == \
            sorted(c[2] for c in serial_seen)
        assert all(" [chunk " in c[2] for c in parallel_seen)

    def test_shard_label_prefixes_progress(self, tmp_path):
        seen = []
        engine = ExperimentEngine(
            1200, store=ResultStore(tmp_path), shard="shard 2/3",
            progress=lambda *call: seen.append(call),
        )
        engine.run([("N", "gzip")])
        engine.run([("N", "gzip")])  # second pass: a store hit
        assert [c[3] for c in seen] == ["run", "store"]
        assert all(c[2].startswith("shard 2/3:N/gzip") for c in seen)

    def test_duplicate_tasks_run_once(self):
        engine = ExperimentEngine(1200)
        engine.run([("N", "gzip"), ("N", "gzip")])
        assert engine.simulations_run == 1

    def test_sampled_runs_keyed_separately_in_store(self, tmp_path):
        task = [("N", "gzip")]
        full = ExperimentEngine(1200, store=ResultStore(tmp_path))
        full.run(task)
        sampled = ExperimentEngine(
            1200, store=ResultStore(tmp_path), sampling=SamplingConfig()
        )
        sampled.run(task)
        assert sampled.simulations_run == 1 and sampled.cache_hits == 0
        # ... but a second sampled engine with the same config hits.
        again = ExperimentEngine(
            1200, store=ResultStore(tmp_path), sampling=SamplingConfig()
        )
        again.run(task)
        assert again.simulations_run == 0 and again.cache_hits == 1


# -- fault injection ----------------------------------------------------------
# Worker functions must be module-level so the pool can pickle them by
# reference; the tests pin the fork start method so monkeypatched state and
# environment markers are inherited by the children.


def _crash_once_task(model: str, app: str, length: int) -> dict:
    marker = pathlib.Path(os.environ["REPRO_TEST_CRASH_MARKER"])
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(17)
    return _dummy_result(model, app, length).to_dict()


def _always_crash_task(model: str, app: str, length: int) -> dict:
    os._exit(17)


def _sleepy_task(model: str, app: str, length: int) -> dict:
    time.sleep(5.0)
    return _dummy_result(model, app, length).to_dict()  # pragma: no cover


def _raising_task(model: str, app: str, length: int) -> dict:
    if app == "swim":
        raise ValueError("synthetic worker failure")
    return _dummy_result(model, app, length).to_dict()


def _raise_once_task(model: str, app: str, length: int) -> dict:
    marker = pathlib.Path(os.environ["REPRO_TEST_CRASH_MARKER"])
    if not marker.exists():
        marker.write_text("raised")
        raise ValueError("synthetic worker failure")
    return _dummy_result(model, app, length).to_dict()  # pragma: no cover


@pytest.mark.skipif(not FORK_AVAILABLE, reason="needs the fork start method")
class TestFaultHandling:
    def _engine(self, task_fn, **kwargs):
        return ExperimentEngine(
            100, jobs=2, task_fn=task_fn,
            mp_context=multiprocessing.get_context("fork"), **kwargs,
        )

    def test_worker_crash_retried_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_MARKER", str(tmp_path / "marker")
        )
        engine = self._engine(_crash_once_task)
        results = engine.run([("N", "gzip"), ("N", "swim")])
        assert set(results) == {("N", "gzip"), ("N", "swim")}

    def test_persistent_crash_raises(self):
        engine = self._engine(_always_crash_task)
        with pytest.raises(ExperimentError, match="crashed twice"):
            engine.run([("N", "gzip"), ("N", "swim")])

    def test_stalled_grid_times_out(self):
        engine = self._engine(_sleepy_task, timeout=0.4)
        start = time.monotonic()
        with pytest.raises(ExperimentError, match="finished within"):
            engine.run([("N", "gzip"), ("N", "swim")])
        assert time.monotonic() - start < 4.0  # workers were terminated

    def test_worker_exception_names_the_task(self):
        engine = self._engine(_raising_task)
        with pytest.raises(ExperimentError) as excinfo:
            engine.run([("TON", "gzip"), ("TON", "swim")])
        message = str(excinfo.value)
        assert "TON/swim" in message
        assert "ValueError" in message
        assert "synthetic worker failure" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_worker_exception_is_not_retried(self, tmp_path, monkeypatch):
        # A Python-level failure is deterministic: unlike a pool crash it
        # must surface immediately rather than burn a retry pass (which
        # would succeed here, since the task only raises once).
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_MARKER", str(tmp_path / "marker")
        )
        engine = self._engine(_raise_once_task)
        with pytest.raises(ExperimentError, match="ValueError"):
            engine.run([("N", "gzip"), ("N", "swim")])

    def test_chunked_crash_retried_once(self, tmp_path, monkeypatch):
        # Two apps x two models -> two multi-cell chunks; a worker crash
        # loses a whole chunk, and the retry pass must recover all of it.
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_MARKER", str(tmp_path / "marker")
        )
        engine = self._engine(_crash_once_task)
        tasks = [("N", "gzip"), ("TON", "gzip"), ("N", "swim"),
                 ("TON", "swim")]
        results = engine.run(tasks)
        assert set(results) == set(tasks)
        assert engine.simulations_run == len(tasks)

    def test_multi_cell_chunk_exception_names_the_chunk(self):
        engine = self._engine(_raising_task)
        tasks = [("N", "gzip"), ("TON", "gzip"), ("N", "swim"),
                 ("TON", "swim")]
        with pytest.raises(ExperimentError) as excinfo:
            engine.run(tasks)
        message = str(excinfo.value)
        assert "swim" in message
        assert "ValueError" in message and "synthetic worker failure" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_retry_progress_is_monotonic(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_MARKER", str(tmp_path / "marker")
        )
        seen = []
        engine = self._engine(
            _crash_once_task,
            progress=lambda done, total, task, source: seen.append(done),
        )
        tasks = [("N", "gzip"), ("N", "swim"), ("N", "vpr"), ("N", "eon")]
        results = engine.run(tasks)
        assert set(results) == set(tasks)
        assert seen == sorted(seen), f"progress went backwards: {seen}"
        assert seen[-1] == len(tasks)


class TestChunkPlanning:
    def test_one_chunk_per_app(self):
        tasks = [("N", "gzip"), ("TON", "gzip"), ("N", "swim"), ("TON", "swim")]
        chunks = ExperimentEngine._plan_chunks(tasks, 2)
        assert sorted(sorted(c) for c in chunks) == [
            [("N", "gzip"), ("TON", "gzip")],
            [("N", "swim"), ("TON", "swim")],
        ]

    def test_splits_to_saturate_workers(self):
        tasks = [(m, "gzip") for m in ("N", "T", "TON", "TOW")]
        chunks = ExperimentEngine._plan_chunks(tasks, 4)
        assert len(chunks) == 4
        assert sorted(c[0] for c in chunks) == sorted(tasks)

    def test_chunks_stay_single_app(self):
        tasks = [
            (m, a) for a in ("gzip", "swim", "vpr") for m in ("N", "TON")
        ]
        for jobs in (1, 2, 4, 8):
            for chunk in ExperimentEngine._plan_chunks(tasks, jobs):
                assert len({app for _, app in chunk}) == 1

    def test_split_stops_at_single_cells(self):
        tasks = [("N", "gzip"), ("TON", "gzip")]
        chunks = ExperimentEngine._plan_chunks(tasks, 8)
        assert sorted(len(c) for c in chunks) == [1, 1]

    def test_covers_every_task_exactly_once(self):
        tasks = [
            (m, a) for a in ("gzip", "swim", "vpr", "eon", "art")
            for m in ("N", "T", "TON")
        ]
        chunks = ExperimentEngine._plan_chunks(tasks, 4)
        flat = [task for chunk in chunks for task in chunk]
        assert sorted(flat) == sorted(tasks)


class TestRunnerIntegration:
    def test_from_scale(self):
        runner = ExperimentRunner.from_scale(
            Scale(apps=3, length=1500, jobs=2, cache=False)
        )
        assert runner.max_apps == 3 and runner.length == 1500
        assert runner.jobs == 2 and runner.cache is False
        assert runner.engine.store is None

    def test_runner_counts_store_hits(self, tmp_path):
        first = ExperimentRunner(
            length=1200, max_apps=2, cache=True, cache_dir=tmp_path
        )
        first.results("N")
        assert first.simulations_run == 2 and first.cache_hits == 0

        second = ExperimentRunner(
            length=1200, max_apps=2, cache=True, cache_dir=tmp_path
        )
        assert second.results("N") == first.results("N")
        assert second.simulations_run == 0 and second.cache_hits == 2

    def test_parallel_runner_grid_matches_serial(self, tmp_path):
        serial = ExperimentRunner(length=1200, max_apps=2)
        parallel = ExperimentRunner(
            length=1200, max_apps=2, jobs=2, cache=True, cache_dir=tmp_path
        )
        assert serial.grid(["N", "TON"]) == parallel.grid(["N", "TON"])

    def test_grid_memoises_across_calls(self):
        runner = ExperimentRunner(length=1200, max_apps=2)
        runner.grid(["N", "TON"])
        runs = runner.simulations_run
        runner.grid(["N", "TON"])
        runner.results("N")
        assert runner.simulations_run == runs
        assert runner.runs_cached == 4
