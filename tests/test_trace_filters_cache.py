"""Unit + property tests: counter filters and the trace cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TraceError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.trace.filters import CounterFilter
from repro.trace.tid import TraceId
from repro.trace.trace import Trace
from repro.trace.trace_cache import TraceCache


def tid(n: int) -> TraceId:
    return TraceId(start=0x1000 + n * 0x10, directions=0, num_branches=0)


def make_trace(n: int, uops: int = 8) -> Trace:
    return Trace(
        tid=tid(n),
        uops=[Uop(UopKind.ALU, 0, 1, 2, origin=0) for _ in range(uops)],
        num_instructions=1,
        original_uop_count=uops,
    )


class TestCounterFilter:
    def test_triggers_exactly_once_at_threshold(self):
        filt = CounterFilter(capacity=16, threshold=3)
        t = tid(1)
        assert [filt.access(t) for t in [t, t, t, t, t]] == [
            False, False, True, False, False
        ]
        assert filt.stats.triggers == 1

    def test_threshold_one_triggers_immediately(self):
        filt = CounterFilter(capacity=4, threshold=1)
        assert filt.access(tid(1)) is True

    def test_eviction_loses_count(self):
        """Infrequent TIDs are filtered out by capacity pressure."""
        filt = CounterFilter(capacity=2, threshold=2)
        filt.access(tid(1))
        filt.access(tid(2))
        filt.access(tid(3))       # evicts tid(1) (LRU)
        assert filt.count(tid(1)) == 0
        assert filt.access(tid(1)) is False  # restarts from scratch
        assert filt.stats.evictions >= 1

    def test_lru_refresh_on_access(self):
        filt = CounterFilter(capacity=2, threshold=10)
        filt.access(tid(1))
        filt.access(tid(2))
        filt.access(tid(1))       # refresh 1; 2 becomes LRU
        filt.access(tid(3))       # evicts 2
        assert filt.count(tid(1)) == 2
        assert filt.count(tid(2)) == 0

    def test_forget(self):
        filt = CounterFilter(capacity=8, threshold=2)
        filt.access(tid(1))
        filt.forget(tid(1))
        assert filt.count(tid(1)) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CounterFilter(0, 1)
        with pytest.raises(ConfigurationError):
            CounterFilter(4, 0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=300),
           st.integers(1, 8))
    def test_size_never_exceeds_capacity(self, accesses, capacity):
        filt = CounterFilter(capacity, threshold=3)
        for n in accesses:
            filt.access(tid(n))
        assert len(filt) <= capacity

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 10))
    def test_trigger_requires_threshold_accesses(self, threshold):
        filt = CounterFilter(capacity=4, threshold=threshold)
        t = tid(0)
        triggers = [filt.access(t) for _ in range(threshold * 2)]
        assert triggers.count(True) == 1
        assert triggers.index(True) == threshold - 1


class TestTraceCache:
    def test_insert_then_lookup(self):
        cache = TraceCache(1024)
        trace = make_trace(1)
        cache.insert(trace)
        assert cache.lookup(trace.tid) is trace
        assert cache.stats.hit_rate == 1.0

    def test_miss_counts(self):
        cache = TraceCache(1024)
        assert cache.lookup(tid(9)) is None
        assert cache.stats.lookups == 1 and cache.stats.hits == 0

    def test_capacity_eviction_is_lru(self):
        cache = TraceCache(64 * 3)
        t1, t2, t3, t4 = (make_trace(i, uops=64) for i in range(4))
        cache.insert(t1)
        cache.insert(t2)
        cache.insert(t3)
        cache.lookup(t1.tid)        # refresh t1; t2 is LRU
        evicted = cache.insert(t4)
        assert t2.tid in evicted
        assert cache.contains(t1.tid) and cache.contains(t4.tid)
        assert not cache.contains(t2.tid)

    def test_replacement_in_place(self):
        """Writing an optimized trace replaces the original, same TID."""
        cache = TraceCache(1024)
        original = make_trace(1, uops=32)
        cache.insert(original)
        optimized = make_trace(1, uops=20)
        optimized.optimized = True
        cache.insert(optimized)
        assert cache.num_traces == 1
        assert cache.lookup(tid(1)).optimized
        assert cache.stats.replacements == 1
        assert cache.used_uops == 20

    def test_used_uops_accounting(self):
        cache = TraceCache(1024)
        for i in range(5):
            cache.insert(make_trace(i, uops=10))
        assert cache.used_uops == 50
        assert cache.num_traces == 5

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceCache(32)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 64)),
                    min_size=1, max_size=120))
    def test_capacity_invariant(self, inserts):
        cache = TraceCache(512)
        for n, uops in inserts:
            cache.insert(make_trace(n, uops=uops))
        assert cache.used_uops <= 512
        assert cache.used_uops == sum(
            t.num_uops for t in cache.resident_traces()
        )


class TestTraceValidation:
    def test_empty_trace_rejected(self):
        trace = make_trace(1, uops=1)
        trace.uops.clear()
        with pytest.raises(TraceError):
            trace.validate()

    def test_oversized_trace_rejected(self):
        trace = make_trace(1, uops=65)
        with pytest.raises(TraceError, match="frame capacity"):
            trace.validate()

    def test_bad_origin_rejected(self):
        trace = make_trace(1, uops=2)
        trace.uops[0].origin = 5
        with pytest.raises(TraceError, match="origin"):
            trace.validate()
