"""Property-based tests: timing-core invariants under arbitrary uop streams.

The one-pass timing model must uphold, for *any* uop sequence:

* monotone non-decreasing commit times (in-order commit),
* completion after issue after dispatch for every uop,
* throughput never exceeding the machine's rename width,
* determinism (same stream, same cycles),
* internal invariants (no negative clocks).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import NUM_ARCH_REGS, REG_NONE
from repro.pipeline.core import TimingCore
from repro.pipeline.resources import narrow_core_params

_KINDS = [
    UopKind.ALU, UopKind.MOV, UopKind.MOV_IMM, UopKind.LOGIC, UopKind.MUL,
    UopKind.LOAD, UopKind.STORE, UopKind.FP_ADD, UopKind.BRANCH, UopKind.CMP,
]


@st.composite
def uop_stream(draw):
    n = draw(st.integers(1, 120))
    rng = random.Random(draw(st.integers(0, 2**31)))
    stream = []
    for _ in range(n):
        kind = rng.choice(_KINDS)
        uop = Uop(
            kind,
            rng.randrange(NUM_ARCH_REGS) if rng.random() < 0.8 else REG_NONE,
            rng.randrange(NUM_ARCH_REGS) if rng.random() < 0.8 else REG_NONE,
            rng.randrange(NUM_ARCH_REGS) if rng.random() < 0.5 else REG_NONE,
        )
        mem_latency = 0
        if kind is UopKind.LOAD:
            mem_latency = rng.choice([3, 3, 3, 15, 165])
        group_break = rng.random() < 0.3
        stream.append((uop, mem_latency, group_break))
    return stream


def _run(stream):
    core = TimingCore(narrow_core_params())
    group = core.begin_fetch_group()
    completions = []
    for uop, mem_latency, group_break in stream:
        if group_break:
            group = core.begin_fetch_group()
        completions.append(core.run_uop(uop, group, mem_latency))
    return core, completions


class TestTimingProperties:
    @settings(max_examples=100, deadline=None)
    @given(uop_stream())
    def test_invariants_and_determinism(self, stream):
        core1, completions1 = _run(stream)
        core2, completions2 = _run(stream)
        core1.check_invariants()
        assert completions1 == completions2
        assert core1.cycles == core2.cycles

    @settings(max_examples=100, deadline=None)
    @given(uop_stream())
    def test_cycles_cover_all_completions(self, stream):
        core, completions = _run(stream)
        # Every uop must commit at or before the final cycle count.
        assert core.cycles >= max(completions)

    @settings(max_examples=100, deadline=None)
    @given(uop_stream())
    def test_throughput_bounded_by_rename_width(self, stream):
        core, _ = _run(stream)
        params = core.params
        # n uops cannot retire in fewer than n / rename_width cycles
        # (minus the pipeline-fill offset).
        active_cycles = core.cycles - params.front_depth
        assert len(stream) <= (active_cycles + 2) * params.rename_width

    @settings(max_examples=100, deadline=None)
    @given(uop_stream())
    def test_dependent_reads_never_beat_their_producer(self, stream):
        core = TimingCore(narrow_core_params())
        group = core.begin_fetch_group()
        last_write: dict[int, float] = {}
        for uop, mem_latency, group_break in stream:
            if group_break:
                group = core.begin_fetch_group()
            produced_after = max(
                (last_write.get(src, 0.0) for src in uop.sources()),
                default=0.0,
            )
            completion = core.run_uop(uop, group, mem_latency)
            # A consumer cannot complete before its producers completed.
            assert completion > produced_after or produced_after == 0.0
            for dest in uop.destinations():
                last_write[dest] = completion

    @settings(max_examples=50, deadline=None)
    @given(uop_stream(), st.integers(1, 40))
    def test_redirects_only_push_time_forward(self, stream, redirect_at):
        core, _ = _run(stream)
        before = core.fetch_cycle
        core.redirect_fetch(before - 10)   # past redirects are no-ops
        assert core.fetch_cycle == before
        core.redirect_fetch(before + redirect_at)
        assert core.fetch_cycle == before + redirect_at
