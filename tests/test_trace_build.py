"""Unit tests: executable-trace construction and critical-path measurement."""

import pytest

from repro.core.simulator import segment_stream
from repro.errors import TraceError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import REG_NONE
from repro.trace.trace import build_trace, critical_path_length
from repro.trace.tid import TraceId


class TestCriticalPath:
    def test_serial_chain(self):
        uops = [
            Uop(UopKind.ALU, 1, 0, REG_NONE),
            Uop(UopKind.ALU, 2, 1, REG_NONE),
            Uop(UopKind.ALU, 3, 2, REG_NONE),
        ]
        assert critical_path_length(uops) == 3

    def test_parallel_chains_take_max(self):
        uops = [
            Uop(UopKind.MUL, 1, 0, 0),             # latency 4
            Uop(UopKind.ALU, 2, 0, REG_NONE),      # latency 1
        ]
        assert critical_path_length(uops) == 4

    def test_latency_weighted(self):
        uops = [
            Uop(UopKind.LOAD, 1, 0),               # 3
            Uop(UopKind.FP_ADD, 17, 1, 16),        # +4 (reads int? fine, reg-based)
            Uop(UopKind.ALU, 2, 17, REG_NONE),     # +1
        ]
        assert critical_path_length(uops) == 8

    def test_empty(self):
        assert critical_path_length([]) == 0

    def test_independent_uops_depth_is_max_latency(self):
        uops = [Uop(UopKind.ALU, i, REG_NONE, REG_NONE) for i in range(5)]
        assert critical_path_length(uops) == 1


class TestBuildTrace:
    def test_build_from_real_segment(self, int_workload):
        segment = next(iter(segment_stream(int_workload.stream(500))))
        trace = build_trace(segment.tid, segment.instructions)
        assert trace.num_uops == segment.uop_count
        assert trace.num_instructions == segment.num_instructions
        assert not trace.optimized
        assert trace.critical_path == trace.original_critical_path > 0

    def test_origins_map_to_instructions(self, fp_workload):
        segment = next(iter(segment_stream(fp_workload.stream(500))))
        trace = build_trace(segment.tid, segment.instructions)
        for uop in trace.uops:
            source = segment.instructions[uop.origin]
            assert uop.kind in {u.kind for u in source.instr.uops}

    def test_uops_are_copies_not_templates(self, fp_workload):
        segment = next(iter(segment_stream(fp_workload.stream(500))))
        trace = build_trace(segment.tid, segment.instructions)
        template_ids = {
            id(u) for d in segment.instructions for u in d.instr.uops
        }
        assert all(id(u) not in template_ids for u in trace.uops)

    def test_empty_segment_rejected(self):
        with pytest.raises(TraceError):
            build_trace(TraceId(0x100, 0, 0), [])

    def test_reduction_properties_before_optimization(self, int_workload):
        segment = next(iter(segment_stream(int_workload.stream(500))))
        trace = build_trace(segment.tid, segment.instructions)
        assert trace.uop_reduction == 0.0
        assert trace.dependency_reduction == 0.0
