"""Unit + property tests: set-associative LRU cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheGeometry


def _small_cache(assoc=2, sets=4, line=64) -> Cache:
    return Cache("t", CacheGeometry(assoc * sets * line, assoc, line))


class TestGeometry:
    def test_derived_quantities(self):
        geo = CacheGeometry(32 * 1024, 4, 64)
        assert geo.num_sets == 128
        assert geo.num_lines == 512

    @pytest.mark.parametrize(
        "size,assoc,line",
        [(1000, 2, 64),      # size not divisible
         (0, 1, 64),          # zero size
         (1024, 0, 64),       # zero assoc
         (1024, 2, 60)],      # line not power of two
    )
    def test_invalid_geometry_rejected(self, size, assoc, line):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size, assoc, line)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(3 * 2 * 64, 2, 64)  # 3 sets


class TestAccessBehaviour:
    def test_miss_then_hit(self):
        cache = _small_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_offsets_hit(self):
        cache = _small_cache()
        cache.access(0x1000)
        assert cache.access(0x103F) is True     # same 64B line
        assert cache.access(0x1040) is False    # next line

    def test_lru_eviction_order(self):
        cache = _small_cache(assoc=2, sets=1)
        a, b, c = 0x0, 0x40, 0x80  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(a)        # refresh a; b is now LRU
        cache.access(c)        # evicts b
        assert cache.probe(a) and cache.probe(c)
        assert not cache.probe(b)
        assert cache.stats.evictions == 1

    def test_occupancy_bounded_by_capacity(self):
        cache = _small_cache(assoc=2, sets=4)
        for i in range(100):
            cache.access(i * 64)
        assert cache.occupancy == 8

    def test_probe_has_no_side_effects(self):
        cache = _small_cache()
        cache.probe(0x5000)
        assert cache.stats.accesses == 0
        assert not cache.probe(0x5000)

    def test_flush_and_reset(self):
        cache = _small_cache()
        cache.access(0x1000)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.probe(0x1000)   # contents survive stat reset
        cache.flush()
        assert not cache.probe(0x1000)

    def test_miss_rate(self):
        cache = _small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(1 / 3)
        assert Cache("e", CacheGeometry(512, 2, 64)).stats.miss_rate == 0.0


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_lines(self, addresses):
        cache = _small_cache(assoc=2, sets=2)
        for address in addresses:
            cache.access(address)
        assert cache.occupancy <= cache.geometry.num_lines

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = _small_cache()
        for address in addresses:
            cache.access(address)
        assert cache.stats.hits + cache.stats.misses == len(addresses)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=2, max_size=200))
    def test_immediate_reaccess_always_hits(self, addresses):
        cache = _small_cache()
        for address in addresses:
            cache.access(address)
            assert cache.access(address) is True
