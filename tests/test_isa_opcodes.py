"""Unit tests: uop/instruction taxonomies (repro.isa.opcodes)."""

from repro.isa.opcodes import (
    CTI_CLASSES,
    CTI_KINDS,
    OPTIMIZER_ONLY_KINDS,
    UOP_FU,
    UOP_LATENCY,
    FuClass,
    InstrClass,
    UopKind,
)


class TestUopTables:
    def test_every_kind_has_latency(self):
        for kind in UopKind:
            assert kind in UOP_LATENCY, kind

    def test_every_kind_has_fu_class(self):
        for kind in UopKind:
            assert kind in UOP_FU, kind

    def test_latencies_positive(self):
        assert all(latency >= 1 for latency in UOP_LATENCY.values())

    def test_divide_slower_than_multiply(self):
        assert UOP_LATENCY[UopKind.DIV] > UOP_LATENCY[UopKind.MUL]
        assert UOP_LATENCY[UopKind.FP_DIV] > UOP_LATENCY[UopKind.FP_MUL]

    def test_fp_slower_than_int(self):
        assert UOP_LATENCY[UopKind.FP_ADD] > UOP_LATENCY[UopKind.ALU]

    def test_load_latency_is_l1_hit(self):
        assert UOP_LATENCY[UopKind.LOAD] == 3

    def test_memory_kinds_use_memory_units(self):
        assert UOP_FU[UopKind.LOAD] is FuClass.MEM_LOAD
        assert UOP_FU[UopKind.STORE] is FuClass.MEM_STORE

    def test_ctis_execute_on_branch_unit(self):
        for kind in CTI_KINDS:
            assert UOP_FU[kind] is FuClass.BRANCH


class TestKindSets:
    def test_cti_kinds_complete(self):
        assert UopKind.BRANCH in CTI_KINDS
        assert UopKind.RETURN in CTI_KINDS
        assert UopKind.SYSCALL in CTI_KINDS
        assert UopKind.ALU not in CTI_KINDS

    def test_optimizer_only_kinds_are_not_ctis(self):
        # Asserts replace branches but are not themselves control transfers.
        assert not OPTIMIZER_ONLY_KINDS & CTI_KINDS

    def test_packed_kinds_are_optimizer_only(self):
        assert UopKind.SIMD2 in OPTIMIZER_ONLY_KINDS
        assert UopKind.FUSED_ALU in OPTIMIZER_ONLY_KINDS

    def test_cti_classes(self):
        assert InstrClass.COND_BRANCH in CTI_CLASSES
        assert InstrClass.CALL_DIRECT in CTI_CLASSES
        assert InstrClass.LOAD not in CTI_CLASSES
        assert InstrClass.RMW not in CTI_CLASSES
