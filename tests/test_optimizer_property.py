"""Property-based tests: the optimizer preserves trace semantics.

Strategy: generate random—but structurally valid—trace uop sequences
(register dataflow, memory operations, flag-writing compares followed by
branches), build the matching TID, run the full optimizer, and check:

* architectural equivalence (final register state + ordered stores),
* structural validity of the result (origins, capacity),
* monotonicity (optimization never increases uop count).

This is the library's strongest correctness net: each Hypothesis example
is an arbitrary trace the hardware optimizer must not miscompile.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import FLAGS_REG, NUM_INT_REGS, REG_NONE
from repro.optimizer.asserts import promote_control
from repro.optimizer.pipeline import OptimizerConfig, TraceOptimizer
from repro.optimizer.verify import check_equivalence, interpret
from repro.trace.tid import TraceId
from repro.trace.trace import Trace, critical_path_length

_REGS = st.integers(0, NUM_INT_REGS - 2)
_IMMS = st.integers(0, 255)


@st.composite
def _uop(draw, origin):
    choice = draw(st.integers(0, 9))
    if choice == 0:
        return Uop(UopKind.MOV_IMM, draw(_REGS), imm=draw(_IMMS), origin=origin)
    if choice == 1:
        return Uop(UopKind.MOV, draw(_REGS), draw(_REGS), origin=origin)
    if choice == 2:
        return Uop(UopKind.ALU, draw(_REGS), draw(_REGS), REG_NONE,
                   draw(_IMMS), origin=origin)
    if choice == 3:
        return Uop(UopKind.LOGIC, draw(_REGS), draw(_REGS), draw(_REGS),
                   origin=origin)
    if choice == 4:
        return Uop(UopKind.SHIFT, draw(_REGS), draw(_REGS), REG_NONE,
                   draw(st.integers(0, 31)), origin=origin)
    if choice == 5:
        return Uop(UopKind.LOAD, draw(_REGS), draw(_REGS), origin=origin)
    if choice == 6:
        return Uop(UopKind.STORE, REG_NONE, draw(_REGS), draw(_REGS),
                   origin=origin)
    if choice == 7:
        return Uop(UopKind.CMP, FLAGS_REG, draw(_REGS), draw(_REGS),
                   origin=origin)
    if choice == 8:
        return Uop(UopKind.MUL, draw(_REGS), draw(_REGS), draw(_REGS),
                   origin=origin)
    return Uop(UopKind.ALU, draw(_REGS), draw(_REGS), draw(_REGS),
               origin=origin)


@st.composite
def random_trace(draw):
    """A structurally valid trace: value uops with occasional branches."""
    n = draw(st.integers(2, 40))
    uops = []
    directions = 0
    num_branches = 0
    for i in range(n):
        uops.append(draw(_uop(i)))
        # Occasionally insert a conditional branch after a compare.
        if draw(st.booleans()) and draw(st.integers(0, 4)) == 0:
            uops.append(
                Uop(UopKind.CMP, FLAGS_REG, draw(_REGS), draw(_REGS), origin=i)
            )
            uops.append(Uop(UopKind.BRANCH, REG_NONE, FLAGS_REG, origin=i))
            if draw(st.booleans()):
                directions |= 1 << num_branches
            num_branches += 1
        if len(uops) >= 60:
            break
    tid = TraceId(0x40_0000, directions, num_branches, n)
    trace = Trace(
        tid=tid,
        uops=uops,
        num_instructions=n,
        original_uop_count=len(uops),
        original_critical_path=critical_path_length(uops),
        critical_path=critical_path_length(uops),
    )
    return trace


class TestOptimizerProperties:
    @settings(max_examples=200, deadline=None)
    @given(random_trace())
    def test_full_optimizer_preserves_semantics(self, trace):
        optimized, report = TraceOptimizer().optimize(trace)
        baseline, _ = promote_control(trace.uops, trace.tid)
        result = check_equivalence(baseline, optimized.uops)
        assert result.equivalent, result.reason

    @settings(max_examples=100, deadline=None)
    @given(random_trace())
    def test_generic_only_preserves_semantics(self, trace):
        config = OptimizerConfig(enable_core_specific=False)
        optimized, _ = TraceOptimizer(config).optimize(trace)
        baseline, _ = promote_control(trace.uops, trace.tid)
        result = check_equivalence(baseline, optimized.uops)
        assert result.equivalent, result.reason

    @settings(max_examples=100, deadline=None)
    @given(random_trace())
    def test_optimization_never_grows_traces(self, trace):
        optimized, report = TraceOptimizer().optimize(trace)
        assert optimized.num_uops <= trace.num_uops
        assert report.uop_reduction >= 0.0

    @settings(max_examples=100, deadline=None)
    @given(random_trace())
    def test_optimized_trace_is_structurally_valid(self, trace):
        optimized, _ = TraceOptimizer().optimize(trace)
        optimized.validate()
        # No raw control uops survive promotion.
        from repro.isa.opcodes import CTI_KINDS
        assert all(u.kind not in CTI_KINDS for u in optimized.uops)

    @settings(max_examples=100, deadline=None)
    @given(random_trace())
    def test_idempotence_of_interpretation(self, trace):
        """The reference interpreter itself is deterministic."""
        state1 = interpret(trace.uops)
        state2 = interpret(trace.uops)
        assert state1.registers == state2.registers
        assert state1.stores == state2.stores

    @settings(max_examples=100, deadline=None)
    @given(random_trace())
    def test_store_count_preserved(self, trace):
        optimized, _ = TraceOptimizer().optimize(trace)
        original_stores = sum(
            1 for u in trace.uops if u.kind is UopKind.STORE
        )
        optimized_stores = sum(
            1 for u in optimized.uops if u.kind is UopKind.STORE
        )
        assert original_stores == optimized_stores

    @settings(max_examples=100, deadline=None)
    @given(random_trace())
    def test_critical_path_never_worsens_much(self, trace):
        """Packing may merge chains but must not blow up the critical path."""
        optimized, report = TraceOptimizer().optimize(trace)
        # Fusion replaces two 1-cycle ops with one 2-cycle op: path-neutral.
        # Allow slack of one fused latency for boundary effects.
        assert optimized.critical_path <= trace.original_critical_path + 2
