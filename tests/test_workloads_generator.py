"""Unit + property tests: whole-application synthesis and stream walking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.isa.opcodes import InstrClass
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import (
    dotnet_profile,
    multimedia_profile,
    office_profile,
    specfp_profile,
    specint_profile,
)
from repro.workloads.stream import InstructionStream


class TestProgramSynthesis:
    def test_stats_match_profile_structure(self, int_workload):
        stats = int_workload.stats
        profile = int_workload.profile
        assert stats.hot_kernels + stats.switch_kernels >= profile.n_hot_kernels - 1
        assert stats.cold_kernels == profile.n_cold_kernels
        assert stats.static_instructions > 100

    def test_program_validates(self, fp_workload, int_workload):
        fp_workload.program.validate()
        int_workload.program.validate()

    @pytest.mark.parametrize(
        "factory",
        [specint_profile, specfp_profile, office_profile,
         multimedia_profile, dotnet_profile],
    )
    def test_all_suite_profiles_synthesise_and_run(self, factory):
        workload = SyntheticWorkload(factory(), seed=3)
        stream = workload.stream(2000)
        count = 0
        while not stream.exhausted:
            stream.take()
            count += 1
        assert count == 2000


class TestStreamWalking:
    def test_stream_is_deterministic(self, fp_workload):
        s1 = fp_workload.stream(3000)
        s2 = fp_workload.stream(3000)
        while not s1.exhausted:
            a, b = s1.take(), s2.take()
            assert a.address == b.address
            assert a.taken == b.taken
            assert a.mem_addr == b.mem_addr

    def test_different_stream_seeds_diverge(self, int_workload):
        s1 = int_workload.stream(3000, stream_seed=1)
        s2 = int_workload.stream(3000, stream_seed=2)
        diffs = 0
        while not s1.exhausted and not s2.exhausted:
            if s1.take().address != s2.take().address:
                diffs += 1
        assert diffs > 0

    def test_control_flow_is_consistent(self, int_workload):
        """Each instruction's next_address must be the successor's address."""
        stream = int_workload.stream(5000)
        prev = None
        while not stream.exhausted:
            dyn = stream.take()
            if prev is not None:
                assert dyn.address == prev.next_address
            prev = dyn

    def test_taken_semantics(self, int_workload):
        stream = int_workload.stream(5000)
        while not stream.exhausted:
            dyn = stream.take()
            iclass = dyn.instr.iclass
            if iclass is InstrClass.COND_BRANCH:
                if dyn.taken:
                    assert dyn.next_address == dyn.instr.taken_target
                else:
                    assert dyn.next_address == dyn.instr.fallthrough
            elif dyn.is_cti:
                assert dyn.taken
            else:
                assert not dyn.taken
                assert dyn.next_address == dyn.instr.fallthrough

    def test_memory_instructions_carry_addresses(self, fp_workload):
        stream = fp_workload.stream(5000)
        seen_mem = 0
        while not stream.exhausted:
            dyn = stream.take()
            has_mem_uop = any(u.is_mem for u in dyn.instr.uops)
            if dyn.mem_addr is not None:
                assert has_mem_uop
                seen_mem += 1
        assert seen_mem > 100

    def test_hot_cold_skew(self, fp_workload):
        """The hot/cold (90/10) paradigm: a small static footprint carries
        nearly all dynamic execution."""
        from collections import Counter
        stream = fp_workload.stream(10000)
        counts = Counter()
        while not stream.exhausted:
            counts[stream.take().address] += 1
        static_total = fp_workload.stats.static_instructions
        touched = len(counts)
        # Most static instructions (the cold region) were never executed.
        assert touched < static_total * 0.5
        # And among touched code, the hottest few dominate the stream.
        top_share = sum(c for _, c in counts.most_common(30)) / 10000
        assert top_share > 0.5


class TestInstructionStream:
    def test_peek_does_not_consume(self, fp_workload):
        stream = fp_workload.stream(100)
        first = stream.peek(0)
        second = stream.peek(1)
        assert stream.consumed == 0
        assert stream.take() is first
        assert stream.take() is second

    def test_take_many_respects_limit(self, fp_workload):
        stream = fp_workload.stream(10)
        got = stream.take_many(50)
        assert len(got) == 10
        assert stream.exhausted

    def test_peek_past_end_returns_none(self, fp_workload):
        stream = fp_workload.stream(5)
        assert stream.peek(10) is None

    def test_take_on_exhausted_raises(self, fp_workload):
        stream = fp_workload.stream(1)
        stream.take()
        with pytest.raises(WorkloadError):
            stream.take()

    @given(st.integers(-5, 0))
    def test_nonpositive_limit_rejected(self, limit):
        with pytest.raises(WorkloadError):
            InstructionStream(iter([]), limit)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 400))
    def test_stream_yields_exactly_limit(self, limit):
        workload = SyntheticWorkload(specint_profile("prop"), seed=5)
        stream = workload.stream(limit)
        count = 0
        while not stream.exhausted:
            stream.take()
            count += 1
        assert count == limit
