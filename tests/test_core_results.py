"""Unit tests: SimulationResult derived metrics."""

import pytest

from repro.core.results import SimulationResult, TraceUnitStats
from repro.power.energy import EnergyResult


def _result(**kwargs):
    result = SimulationResult(app_name="a", suite="SpecInt", model_name="N")
    for key, value in kwargs.items():
        setattr(result, key, value)
    return result


class TestDerivedMetrics:
    def test_ipc(self):
        assert _result(instructions=1000, cycles=500.0).ipc == 2.0
        assert _result(instructions=0, cycles=0.0).ipc == 0.0

    def test_coverage(self):
        result = _result(instructions=1000, hot_instructions=600)
        assert result.coverage == 0.6
        assert _result().coverage == 0.0

    def test_mispredict_rates_per_kinstr(self):
        result = _result(instructions=2000, cold_branch_mispredicts=10,
                         trace_mispredictions=4)
        assert result.cold_mispredicts_per_kinstr == 5.0
        assert result.trace_mispredicts_per_kinstr == 2.0

    def test_total_energy(self):
        result = _result()
        assert result.total_energy == 0.0
        result.energy = EnergyResult(dynamic=100.0, leakage=50.0)
        assert result.total_energy == 150.0

    def test_point_conversion(self):
        result = _result(instructions=100, cycles=50.0)
        result.energy = EnergyResult(dynamic=10.0, leakage=5.0)
        point = result.point
        assert point.ipc == 2.0 and point.energy == 15.0

    def test_reductions_weighted_by_executions(self):
        stats = TraceUnitStats(
            hot_executions=4,
            weighted_uop_reduction=0.8,
            weighted_dep_reduction=0.4,
        )
        result = _result(trace_stats=stats)
        assert result.uop_reduction == pytest.approx(0.2)
        assert result.dependency_reduction == pytest.approx(0.1)

    def test_reductions_zero_without_hot_executions(self):
        assert _result().uop_reduction == 0.0


class TestTraceUnitStats:
    def test_mean_optimized_reuse(self):
        stats = TraceUnitStats()
        assert stats.mean_optimized_reuse == 0.0
        stats.optimized_exec_counts = {1: 10, 2: 20}
        assert stats.mean_optimized_reuse == 15.0
