"""Property tests for the adaptive sampler's phase machinery.

Three contracts, in the style of ``tests/test_optimizer_property.py``:

* :class:`~repro.sampling.phases.PhaseSignature` is a pure function of
  the profiled window — identical block sequences yield identical
  signatures, and the distance metric is insertion-order independent
  (the generating walker observes targets in first-execution order while
  artifact replay accumulates them sorted; both must classify alike);
* profiled fast-forward is bit-identical across every skip path — the
  plain block-compiled walk, the functionally warmed walk and artifact
  replay produce the same profile for the same window, so classifier
  state round-trips through ``skip``/``warm_skip`` without divergence;
* :class:`~repro.trace.selection.ColumnarSelector` (both its
  boundary-jumping scan and its per-row mirror loop) segments a recorded
  stream exactly like the reference :class:`TraceSelector`, including
  the in-progress state handed over by ``transfer``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.phases import PhaseClassifier, PhaseSignature
from repro.trace.selection import TraceSelector
from repro.workloads.suite import application
from repro.workloads.tracefile import compile_artifact

#: Stream length of the recorded fixtures (compiled once per module).
REPLAY_LENGTH = 6000

APPS = ("swim", "gcc", "eon")

_profiles = st.dictionaries(
    keys=st.integers(min_value=0, max_value=(1 << 32) - 1),
    values=st.integers(min_value=1, max_value=64),
    max_size=24,
)


@pytest.fixture(scope="module")
def replay(tmp_path_factory):
    """Compiled artifacts of the property apps, keyed by name."""
    root = tmp_path_factory.mktemp("phase-artifacts")
    artifacts = {}
    for name in APPS:
        app = application(name)
        artifacts[name] = compile_artifact(app, app.seed, REPLAY_LENGTH,
                                           root=root)
    return artifacts


class TestSignatureProperties:
    @given(profile=_profiles)
    def test_identical_profiles_yield_identical_signatures(self, profile):
        a = PhaseSignature.from_profile(profile)
        b = PhaseSignature.from_profile(dict(profile))
        assert a == b
        assert a.distance(b) == 0.0
        assert a.total == sum(profile.values())

    @given(p=_profiles, q=_profiles)
    def test_distance_is_symmetric_bounded_and_order_independent(self, p, q):
        a, b = PhaseSignature.from_profile(p), PhaseSignature.from_profile(q)
        d = a.distance(b)
        assert 0.0 <= d <= 2.0
        assert b.distance(a) == d
        # Reversed insertion order must not move the value by even one
        # ulp: the numerator is computed in exact integer arithmetic.
        ra = PhaseSignature.from_profile(
            dict(reversed(list(p.items())))
        )
        rb = PhaseSignature.from_profile(
            dict(reversed(list(q.items())))
        )
        assert ra.distance(rb) == d

    @given(p=_profiles, q=_profiles)
    def test_disjoint_and_empty_extremes(self, p, q):
        a = PhaseSignature.from_profile(p)
        empty = PhaseSignature.from_profile({})
        assert empty.distance(empty) == 0.0
        if p:
            assert a.distance(empty) == 2.0
        disjoint = PhaseSignature.from_profile(
            {target + (1 << 40): count for target, count in p.items()}
        )
        if p:
            assert a.distance(disjoint) == 2.0

    @given(
        signatures=st.lists(_profiles, min_size=1, max_size=16),
        threshold=st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
        max_phases=st.integers(min_value=1, max_value=6),
    )
    def test_classification_is_a_pure_function_of_the_sequence(
        self, signatures, threshold, max_phases
    ):
        first = PhaseClassifier(threshold=threshold, max_phases=max_phases)
        second = PhaseClassifier(threshold=threshold, max_phases=max_phases)
        ids_first = [
            first.classify(PhaseSignature.from_profile(p))
            for p in signatures
        ]
        ids_second = [
            second.classify(PhaseSignature.from_profile(p))
            for p in signatures
        ]
        assert ids_first == ids_second
        assert len(first) <= max_phases
        assert first.evictions == second.evictions


def _noop(*_args) -> None:
    return None


def _profile_windows(stream, windows, *, warm: bool):
    """Profile successive skip windows; returns one dict per window."""
    profiles = []
    for window in windows:
        profile: dict[int, int] = {}
        if warm:
            stream.skip(window, warm=(_noop, _noop, _noop, 6),
                        profile=profile)
        else:
            stream.skip(window, profile=profile)
        profiles.append(profile)
    return profiles


class TestProfiledSkipRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(
        app_name=st.sampled_from(APPS),
        windows=st.lists(
            st.integers(min_value=100, max_value=2200),
            min_size=1, max_size=4,
        ),
    )
    def test_profiles_identical_across_all_skip_paths(
        self, replay, app_name, windows
    ):
        plain = _profile_windows(
            application(app_name).build().stream(REPLAY_LENGTH),
            windows, warm=False,
        )
        warmed = _profile_windows(
            application(app_name).build().stream(REPLAY_LENGTH),
            windows, warm=True,
        )
        replayed = _profile_windows(
            replay[app_name].stream(), windows, warm=False,
        )
        assert plain == warmed == replayed

    @settings(max_examples=6, deadline=None)
    @given(
        app_name=st.sampled_from(APPS),
        windows=st.lists(
            st.integers(min_value=100, max_value=1500),
            min_size=2, max_size=4,
        ),
    )
    def test_classifier_state_round_trips_bit_identically(
        self, replay, app_name, windows
    ):
        """The classification sequence is path-independent.

        Feeding the per-window signatures from the generating walker and
        from warmed artifact replay into fresh classifiers must visit the
        exact same phase ids — the adaptive scheduler's decisions (and so
        its results) cannot depend on which fast-forward path ran.
        """
        walker_side = _profile_windows(
            application(app_name).build().stream(REPLAY_LENGTH),
            windows, warm=False,
        )
        replay_side = _profile_windows(
            replay[app_name].stream(), windows, warm=True,
        )
        left = PhaseClassifier(threshold=0.5, max_phases=4)
        right = PhaseClassifier(threshold=0.5, max_phases=4)
        left_ids = [
            left.classify(PhaseSignature.from_profile(p))
            for p in walker_side
        ]
        right_ids = [
            right.classify(PhaseSignature.from_profile(p))
            for p in replay_side
        ]
        assert left_ids == right_ids


def _reference_scan(stream, total):
    """Feed ``total`` replayed instructions through a fresh TraceSelector."""
    selector = TraceSelector()
    segments = []
    seen = 0
    while seen < total:
        batch = stream.take_batch(min(512, total - seen))
        if not batch:
            break
        for dyn in batch:
            seen += 1
            completed = selector.advance(dyn)
            if completed is not None:
                for segment in completed:
                    segments.append((segment, seen))
    return selector, segments, seen


def _columnar_scan(stream, total, *, use_scan: bool):
    """Mirror ``_reference_scan`` through a ColumnarSelector + transfer."""
    selector = TraceSelector()
    scanner = None
    segments = []
    consumed = 0
    def on_segment(segment, position):
        segments.append((segment, position))
    while consumed < total:
        raw = stream.consume_raw(total - consumed)
        if raw is None:
            break
        walker, lo, index, taken, nxt, _mem = raw
        if not index:
            break
        if scanner is None:
            _instructions, addresses, flow, uop_counts = (
                walker.select_tables()
            )
            scanner = selector.columnar_scanner(
                walker.materialize, flow, uop_counts, addresses,
                scan=(walker.scan_tables() if use_scan else None),
            )
        scanner.consume(lo, index, taken, nxt, consumed, on_segment)
        consumed += len(index)
    if scanner is not None:
        scanner.transfer(selector)
    return selector, segments, consumed


def _segment_key(segment, position):
    return (
        segment.tid,
        segment.num_instructions,
        segment.uop_count,
        segment.join_count,
        segment.complete,
        [dyn.instr.address for dyn in segment.instructions],
        position,
    )


class TestColumnarSelectorEquivalence:
    """ColumnarSelector mirrors TraceSelector.advance bit-for-bit."""

    @settings(max_examples=8, deadline=None)
    @given(
        app_name=st.sampled_from(APPS),
        total=st.integers(min_value=64, max_value=REPLAY_LENGTH),
        use_scan=st.booleans(),
    )
    def test_segments_and_transferred_state_match_reference(
        self, replay, app_name, total, use_scan
    ):
        artifact = replay[app_name]
        ref_stream = artifact.stream()
        col_stream = artifact.stream()
        ref_sel, ref_segments, ref_seen = _reference_scan(ref_stream, total)
        col_sel, col_segments, col_seen = _columnar_scan(
            col_stream, total, use_scan=use_scan
        )
        assert col_seen == ref_seen
        assert (
            [_segment_key(s, p) for s, p in col_segments]
            == [_segment_key(s, p) for s, p in ref_segments]
        )
        assert col_sel.terminations == ref_sel.terminations

        # The transferred in-progress state must continue identically:
        # feed both selectors the same object tail and compare everything
        # that completes (including the final flush).
        tail_ref = []
        tail_col = []
        for dyn in ref_stream.take_batch(600):
            completed = ref_sel.advance(dyn)
            if completed is not None:
                tail_ref.extend(completed)
        for dyn in col_stream.take_batch(600):
            completed = col_sel.advance(dyn)
            if completed is not None:
                tail_col.extend(completed)
        tail_ref.extend(ref_sel.flush())
        tail_col.extend(col_sel.flush())
        assert (
            [_segment_key(s, 0) for s in tail_col]
            == [_segment_key(s, 0) for s in tail_ref]
        )

    def test_scan_and_row_paths_agree_on_the_whole_record(self, replay):
        """The boundary-jumping scan equals the per-row mirror loop."""
        for app_name in APPS:
            artifact = replay[app_name]
            _sel_rows, rows, _ = _columnar_scan(
                artifact.stream(), REPLAY_LENGTH, use_scan=False
            )
            _sel_scan, scan, _ = _columnar_scan(
                artifact.stream(), REPLAY_LENGTH, use_scan=True
            )
            assert (
                [_segment_key(s, p) for s, p in scan]
                == [_segment_key(s, p) for s, p in rows]
            )
