"""Scale-out sharding: partitioning, plans, execution and store merge.

The merge properties are the heart of the scale-out story and are tested
as *properties* (Hypothesis): over randomly populated stores drawn from
one content-keyed universe, ``merge(A, B) == merge(B, A)`` and
``merge(S, S) == S`` — plus the adversarial cases (conflicts, corrupt
records) as examples.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.results import SCHEMA_VERSION, SimulationResult
from repro.errors import ExperimentError
from repro.experiments.engine import ExperimentEngine, ResultStore
from repro.experiments.shard import (
    ShardPlan,
    merge_stores,
    missing_keys,
    partition_tasks,
    plan_grid,
    run_shard,
)
from repro.models.configs import MODEL_NAMES
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling import SamplingConfig

# -- partitioning -------------------------------------------------------------

APPS = ["gzip", "swim", "ammp", "excel", "gcc", "mesa"]


def _grid(napps: int, nmodels: int) -> list[tuple[str, str]]:
    return [
        (model, app)
        for app in APPS[:napps]
        for model in MODEL_NAMES[:nmodels]
    ]


class TestPartitionTasks:
    def test_deterministic(self):
        tasks = _grid(4, 3)
        assert partition_tasks(tasks, 3) == partition_tasks(list(tasks), 3)

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            partition_tasks(_grid(2, 2), 0)

    def test_duplicates_dropped(self):
        tasks = _grid(2, 2)
        assert partition_tasks(tasks * 3, 2) == partition_tasks(tasks, 2)

    def test_app_affinity_when_shards_divide_evenly(self):
        # 2 apps x 3 models onto 2 shards: each shard is single-app, so a
        # host resolves exactly one compiled-trace artifact.
        bins = partition_tasks(_grid(2, 3), 2)
        for shard in bins:
            assert len({app for _, app in shard}) == 1

    @given(
        napps=st.integers(min_value=1, max_value=6),
        nmodels=st.integers(min_value=1, max_value=7),
        shards=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_is_balanced_and_exact(self, napps, nmodels, shards):
        tasks = _grid(napps, nmodels)
        bins = partition_tasks(tasks, shards)
        assert len(bins) == shards
        flat = [task for shard in bins for task in shard]
        assert sorted(flat) == sorted(tasks)  # exact cover, no dupes
        loads = sorted(len(shard) for shard in bins)
        if len(tasks) >= shards:
            assert loads[-1] - loads[0] <= 1  # balanced to one cell


# -- the plan -----------------------------------------------------------------


class TestShardPlan:
    def _plan(self, **overrides) -> ShardPlan:
        defaults = dict(models=["N", "TON"], apps=["gzip", "swim"],
                        length=1500, shards=2)
        defaults.update(overrides)
        return plan_grid(**defaults)

    def test_round_trip(self):
        plan = self._plan(sampling=SamplingConfig(),
                          backend=ExecutionBackend.COLUMNAR)
        again = ShardPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.digest() == plan.digest()

    def test_save_load(self, tmp_path):
        plan = self._plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert ShardPlan.load(path) == plan

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="cannot read"):
            ShardPlan.load(path)

    @pytest.mark.parametrize("tamper", [
        {"length": 2500},
        {"shards": [[["N", "gzip"]]]},
        {"backend": "columnar"},
    ])
    def test_tampered_plan_is_rejected(self, tamper):
        payload = self._plan().to_dict()
        payload.update(tamper)
        with pytest.raises(ExperimentError, match="digest mismatch"):
            ShardPlan.from_dict(payload)

    def test_schema_drift_is_rejected(self):
        payload = self._plan().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ExperimentError, match="schema"):
            ShardPlan.from_dict(payload)

    def test_unsupported_plan_version_is_rejected(self):
        payload = self._plan().to_dict()
        payload["plan_version"] = 99
        with pytest.raises(ExperimentError, match="format v99"):
            ShardPlan.from_dict(payload)

    def test_unknown_names_rejected(self):
        with pytest.raises(ExperimentError, match="unknown model"):
            plan_grid(models=["N", "NOPE"], apps=1, length=100, shards=1)
        with pytest.raises(ExperimentError, match="unknown application"):
            plan_grid(models=["N"], apps=["nope"], length=100, shards=1)

    def test_empty_plan_rejected(self):
        with pytest.raises(ExperimentError, match="at least one cell"):
            ShardPlan(length=100, shards=((),))

    def test_run_keys_cover_every_cell(self):
        plan = self._plan()
        keys = plan.run_keys()
        assert sorted(keys) == sorted(
            f"{model}/{app}" for model, app in plan.cells
        )
        assert len(set(keys.values())) == len(keys)  # content-distinct


# -- shard execution ----------------------------------------------------------


class TestRunShard:
    def test_runs_only_its_cells(self, tmp_path):
        plan = plan_grid(models=["N", "TON"], apps=["gzip", "swim"],
                         length=1200, shards=2)
        report = run_shard(plan, 0, store_root=tmp_path / "s0")
        assert report.cells == len(plan.shards[0])
        assert report.simulated == report.cells
        store = ResultStore(tmp_path / "s0")
        assert store.info().entries == report.cells

    def test_rerun_serves_from_store(self, tmp_path):
        plan = plan_grid(models=["N"], apps=["gzip"], length=1200, shards=1)
        run_shard(plan, 0, store_root=tmp_path)
        again = run_shard(plan, 0, store_root=tmp_path)
        assert again.simulated == 0 and again.from_store == 1

    def test_index_out_of_range(self, tmp_path):
        plan = plan_grid(models=["N"], apps=["gzip"], length=100, shards=1)
        with pytest.raises(ExperimentError, match="out of range"):
            run_shard(plan, 1, store_root=tmp_path)

    def test_progress_carries_shard_label(self, tmp_path):
        plan = plan_grid(models=["N"], apps=["gzip", "swim"],
                         length=1200, shards=2)
        seen = []
        run_shard(plan, 1, store_root=tmp_path,
                  progress=lambda *call: seen.append(call))
        assert seen and all(c[2].startswith("shard 2/2:") for c in seen)

    def test_missing_keys_audits_completeness(self, tmp_path):
        plan = plan_grid(models=["N"], apps=["gzip", "swim"],
                         length=1200, shards=2)
        store = ResultStore(tmp_path)
        assert len(missing_keys(plan, store)) == 2
        run_shard(plan, 0, store_root=tmp_path)
        left = missing_keys(plan, store)
        assert sorted(left) == sorted(
            f"{model}/{app}" for model, app in plan.shards[1]
        )
        run_shard(plan, 1, store_root=tmp_path)
        assert missing_keys(plan, store) == []


# -- merging ------------------------------------------------------------------

# One content-keyed universe of (key, record) pairs: in the real system a
# run key *derives from* the run request, so two stores can only ever
# hold the same payload under one key.  The strategies below draw store
# populations as subsets of this universe.
UNIVERSE_KEYS = [f"{i:02x}" + f"{i:062x}" for i in range(12)]


def _variant(template: SimulationResult, index: int) -> SimulationResult:
    payload = template.to_dict()
    payload["cycles"] = payload["cycles"] + index  # distinct content
    return SimulationResult.from_dict(payload)


def _populate(root, template, indices) -> ResultStore:
    store = ResultStore(root)
    for i in indices:
        store.store(UNIVERSE_KEYS[i], _variant(template, i))
    return store


def _contents(store: ResultStore) -> dict[str, str]:
    return {
        path.name[: -len(".json")]: path.read_text()
        for path in store._records()
    }


subsets = st.sets(
    st.integers(min_value=0, max_value=len(UNIVERSE_KEYS) - 1), max_size=8
)


class TestMergeProperties:
    @given(a=subsets, b=subsets)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_merge_is_commutative(self, tmp_path_factory, swim_result_ton,
                                  a, b):
        base = tmp_path_factory.mktemp("merge")
        store_a = _populate(base / "a", swim_result_ton, a)
        store_b = _populate(base / "b", swim_result_ton, b)
        ab = ResultStore(base / "ab")
        ab.merge_from(store_a)
        ab.merge_from(store_b)
        ba = ResultStore(base / "ba")
        ba.merge_from(store_b)
        ba.merge_from(store_a)
        assert _contents(ab) == _contents(ba)
        assert set(ab.keys()) == {UNIVERSE_KEYS[i] for i in a | b}

    @given(s=subsets)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_merge_is_idempotent(self, tmp_path_factory, swim_result_ton, s):
        base = tmp_path_factory.mktemp("merge")
        store = _populate(base / "s", swim_result_ton, s)
        before = _contents(store)
        report = store.merge_from(store.root)  # merge(S, S)
        assert _contents(store) == before
        assert report.copied == 0 and report.identical == len(s)
        assert not report.conflicts and report.quarantined == 0


class TestMergeExamples:
    def test_conflict_is_audited_and_destination_wins(
        self, tmp_path, swim_result_ton
    ):
        key = UNIVERSE_KEYS[0]
        dest = ResultStore(tmp_path / "dest")
        dest.store(key, _variant(swim_result_ton, 0))
        src = ResultStore(tmp_path / "src")
        src.store(key, _variant(swim_result_ton, 1))  # same key, new payload
        kept = _contents(dest)[key]
        report = dest.merge_from(src)
        assert report.conflicts == [key] and report.copied == 0
        assert _contents(dest)[key] == kept  # destination record survives

    def test_corrupt_source_records_are_quarantined(
        self, tmp_path, swim_result_ton
    ):
        src = ResultStore(tmp_path / "src")
        src.store(UNIVERSE_KEYS[0], _variant(swim_result_ton, 0))
        garbled = src._path(UNIVERSE_KEYS[1])
        garbled.parent.mkdir(parents=True, exist_ok=True)
        garbled.write_text("{not json")
        lying = src._path(UNIVERSE_KEYS[2])
        record = json.loads(src._path(UNIVERSE_KEYS[0]).read_text())
        lying.parent.mkdir(parents=True, exist_ok=True)
        lying.write_text(json.dumps(record))  # embedded key != filename
        dest = ResultStore(tmp_path / "dest")
        report = dest.merge_from(src)
        assert report.copied == 1 and report.quarantined == 2
        assert not garbled.exists() and not lying.exists()  # quarantined
        assert dest.merge_from(src).scanned == 1  # next pass is clean

    def test_keep_corrupt_records_when_asked(self, tmp_path):
        src = ResultStore(tmp_path / "src")
        garbled = src._path(UNIVERSE_KEYS[1])
        garbled.parent.mkdir(parents=True, exist_ok=True)
        garbled.write_text("{not json")
        report = ResultStore(tmp_path / "dest").merge_from(
            src, quarantine=False
        )
        assert report.quarantined == 1 and garbled.exists()

    def test_merge_stores_fans_out(self, tmp_path, swim_result_ton):
        for index, name in enumerate(["s0", "s1"]):
            _populate(tmp_path / name, swim_result_ton, {index})
        reports = merge_stores(
            tmp_path / "merged", [tmp_path / "s0", tmp_path / "s1"]
        )
        assert [r.copied for r in reports] == [1, 1]
        assert len(ResultStore(tmp_path / "merged").keys()) == 2


# -- end to end: shard, merge, replay ----------------------------------------


class TestShardedGridEndToEnd:
    def test_merged_store_replays_grid_without_simulating(self, tmp_path):
        plan = plan_grid(models=["N", "TON"], apps=["gzip", "swim"],
                         length=1200, shards=2)
        for index in range(2):
            run_shard(plan, index, store_root=tmp_path / f"s{index}")
        merge_stores(tmp_path / "merged",
                     [tmp_path / "s0", tmp_path / "s1"])
        merged = ResultStore(tmp_path / "merged")
        assert missing_keys(plan, merged) == []
        replay = ExperimentEngine(plan.length, store=merged)
        replay.run(plan.cells)
        assert replay.simulations_run == 0
        assert replay.cache_hits == len(plan.cells)
