"""Unit tests: background phases — filtering, construction, optimization."""

import pytest

from repro.core.background import BackgroundProcessor
from repro.core.results import TraceUnitStats
from repro.core.simulator import segment_stream
from repro.models.configs import model_config, model_tn, model_ton
from repro.power.events import EventCounts


def _processor(config=None):
    config = config or model_ton()
    return BackgroundProcessor(config, EventCounts(), TraceUnitStats())


def _segments(workload, n=200, length=4000):
    return list(segment_stream(workload.stream(length)))[:n]


class TestHotFiltering:
    def test_construction_gated_by_hot_threshold(self, fp_workload):
        processor = _processor()
        threshold = processor.config.hot_threshold
        segments = _segments(fp_workload)
        tid = segments[0].tid
        same = [s for s in segments if s.tid == tid][: threshold - 1]
        for segment in same:
            processor.after_commit(segment, now=0.0)
        assert not processor.trace_cache.contains(tid)

    def test_hot_tid_constructed_once(self, fp_workload):
        processor = _processor()
        segments = _segments(fp_workload)
        tid = segments[0].tid
        same = [s for s in segments if s.tid == tid]
        if len(same) <= processor.config.hot_threshold:
            pytest.skip("first TID not hot enough in this prefix")
        for segment in same:
            processor.after_commit(segment, now=0.0)
        assert processor.trace_cache.contains(tid)
        assert processor.stats.traces_constructed == 1

    def test_construction_charges_energy(self, fp_workload):
        processor = _processor()
        for segment in _segments(fp_workload):
            processor.after_commit(segment, now=0.0)
        assert processor.events.get("construct_uop") > 0
        assert processor.events.get("tcache_write") > 0
        # Filter accesses batch inside the processor and fold in at flush
        # points (the simulator flushes at the end of every segment batch).
        processor.flush_filter_events()
        assert processor.events.get("filter_access") > 0


class TestBlazingAndOptimization:
    def _hot_trace(self, processor, fp_workload):
        segments = _segments(fp_workload, n=400)
        for segment in segments:
            processor.after_commit(segment, now=0.0)
        traces = processor.trace_cache.resident_traces()
        assert traces
        return traces[0]

    def test_blazing_triggers_optimization(self, fp_workload):
        processor = _processor()
        trace = self._hot_trace(processor, fp_workload)
        for _ in range(processor.config.blazing_threshold):
            processor.after_hot_execution(trace, now=0.0)
        assert processor.stats.traces_optimized == 1
        assert processor.events.get("optimizer_uop") > 0

    def test_optimized_trace_installed_after_latency(self, fp_workload):
        processor = _processor()
        trace = self._hot_trace(processor, fp_workload)
        for _ in range(processor.config.blazing_threshold):
            processor.after_hot_execution(trace, now=100.0)
        # Not yet visible: the optimizer needs ~100 cycles.
        assert not processor.trace_cache.lookup(trace.tid).optimized
        processor.after_hot_execution(trace, now=100.0 + 200.0)
        assert processor.trace_cache.lookup(trace.tid).optimized

    def test_tn_config_never_optimizes(self, fp_workload):
        processor = _processor(model_tn())
        trace = self._hot_trace(processor, fp_workload)
        for _ in range(processor.config.blazing_threshold * 2):
            processor.after_hot_execution(trace, now=0.0)
        assert processor.stats.traces_optimized == 0

    def test_already_optimized_trace_not_reoptimized(self, fp_workload):
        processor = _processor()
        trace = self._hot_trace(processor, fp_workload)
        for _ in range(processor.config.blazing_threshold):
            processor.after_hot_execution(trace, now=0.0)
        processor.after_hot_execution(trace, now=10_000.0)  # install
        optimized = processor.trace_cache.lookup(trace.tid)
        count = processor.stats.traces_optimized
        for _ in range(processor.config.blazing_threshold * 2):
            processor.after_hot_execution(optimized, now=20_000.0)
        assert processor.stats.traces_optimized == count


class TestEvictionCoherence:
    """Regression tests for filter/cache coherence under eviction
    (found by adversarial review)."""

    def test_evicted_tid_can_be_reconstructed(self, fp_workload):
        """Eviction must reset the hot counter or the TID never re-heats."""
        import dataclasses
        from repro.core.simulator import segment_stream
        config = dataclasses.replace(model_ton(), tcache_uops=128)
        processor = _processor(config)
        segments = _segments(fp_workload, n=600, length=8000)
        for segment in segments:
            processor.after_commit(segment, now=0.0)
        # With a 2-frame cache, many TIDs were evicted.  Feed the stream
        # again: previously evicted hot TIDs must be able to re-trigger.
        constructed_before = processor.stats.traces_constructed
        for segment in segments:
            processor.after_commit(segment, now=1e6)
        assert processor.stats.traces_constructed > constructed_before

    def test_dropped_blazing_trigger_retriggers(self, int_workload):
        """Queue overflow drops a trigger; continued execution re-triggers."""
        import dataclasses
        processor = _processor(dataclasses.replace(model_ton(), hot_threshold=2))
        segments = _segments(int_workload, n=600, length=8000)
        for segment in segments:
            processor.after_commit(segment, now=0.0)
        traces = processor.trace_cache.resident_traces()
        assert len(traces) >= 5
        # Fill the optimizer queue (depth 4) with other traces, never
        # draining (now stays 0 and latency is 100).
        for trace in traces[:4]:
            for _ in range(processor.config.blazing_threshold):
                processor.after_hot_execution(trace, now=0.0)
        victim = traces[4]
        for _ in range(processor.config.blazing_threshold):
            processor.after_hot_execution(victim, now=0.0)
        assert processor.stats.optimizations_dropped >= 1
        # Drain the queue, then keep executing the victim: it must
        # eventually be optimized, not permanently lost.
        processor.after_hot_execution(victim, now=1e9)
        before = processor.stats.traces_optimized
        for _ in range(processor.config.blazing_threshold + 1):
            processor.after_hot_execution(victim, now=1e9)
        assert processor.stats.traces_optimized > before

    def test_stale_optimization_not_reinstalled(self, fp_workload):
        """An optimized trace whose TID was evicted mid-flight is dropped."""
        processor = _processor()
        trace = None
        for segment in _segments(fp_workload, n=400):
            processor.after_commit(segment, now=0.0)
        trace = processor.trace_cache.resident_traces()[0]
        for _ in range(processor.config.blazing_threshold):
            processor.after_hot_execution(trace, now=0.0)
        assert processor._pending
        # Simulate eviction of the TID while the optimizer is busy.
        processor.trace_cache._traces.pop(trace.tid)
        processor._drain_ready(now=1e9)
        assert not processor.trace_cache.contains(trace.tid)
