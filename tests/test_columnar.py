"""Columnar execution backend: bit-identity with the scalar reference.

The columnar executors (:mod:`repro.pipeline.columnar`) replay
column-compiled plans instead of per-uop row tuples; their contract is
exact agreement with the scalar batch executors, which are themselves
pinned against the golden results in ``tests/golden/``.  These tests pin
the columnar backend directly against those goldens, against the scalar
backend across machine models (including the split-pipeline and
wide-fetch shapes), and across the artifact and sampled regimes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.simulator import ColdPlanCache, ParrotSimulator, RunOptions
from repro.isa.opcodes import FuClass
from repro.isa.registers import NUM_ARCH_REGS, REG_NONE
from repro.models.configs import model_config
from repro.pipeline.columnar import ExecutionBackend, _dependency_links
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import application
from repro.workloads.tracefile import compile_artifact

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The same pinned runs the scalar parity gate uses.
PARITY_RUNS = [
    ("swim", "TON", 4000),
    ("gcc", "N", 4000),
    ("eon", "TOW", 4000),
]

COLUMNAR = RunOptions(backend=ExecutionBackend.COLUMNAR)


def _simulate(app_name: str, model_name: str, length: int,
              options: RunOptions) -> dict:
    simulator = ParrotSimulator(model_config(model_name))
    result = simulator.simulate(
        application(app_name), options, length=length
    )
    return result.to_dict()


@pytest.mark.parametrize("app_name,model_name,length", PARITY_RUNS)
def test_columnar_matches_golden(app_name, model_name, length):
    """The columnar backend reproduces the scalar goldens bit-for-bit."""
    golden_path = GOLDEN_DIR / f"{app_name}_{model_name}_{length}.json"
    golden = json.loads(golden_path.read_text())
    produced = json.loads(
        json.dumps(_simulate(app_name, model_name, length, COLUMNAR))
    )
    assert produced == golden, (
        f"columnar run of {app_name}/{model_name}/{length} diverged from "
        f"the golden result — the backends must stay bit-identical"
    )


@pytest.mark.parametrize("app_name,model_name", [
    ("gzip", "TOS"),   # split pipeline: state switches between cores
    ("swim", "W"),     # wide baseline, no trace unit at all
    ("mesa", "TN"),    # narrow trace machine, no optimizer
])
def test_columnar_matches_scalar_across_models(app_name, model_name):
    scalar = _simulate(app_name, model_name, 3000, RunOptions())
    columnar = _simulate(app_name, model_name, 3000, COLUMNAR)
    assert columnar == scalar


def test_columnar_matches_scalar_sampled():
    sampling = SamplingConfig(detail=500, gap=1500, warmup=300,
                              func_warm=500)
    scalar = _simulate("swim", "TON", 20_000, RunOptions(sampling=sampling))
    columnar = _simulate(
        "swim", "TON", 20_000,
        RunOptions(sampling=sampling, backend=ExecutionBackend.COLUMNAR),
    )
    assert columnar == scalar


def test_columnar_matches_scalar_adaptive():
    """Adaptive sampling is backend-independent, estimate included.

    Extends the fixed-mode parity gate above: the phase classifier's
    decisions (which periods re-measure, which reuse) and the resulting
    per-phase estimate must be bit-identical across backends, not just
    the machine counters.
    """
    sampling = SamplingConfig(mode="adaptive", detail=500, gap=1500,
                              warmup=300, func_warm=500,
                              phase_threshold=0.3)
    runs = {}
    for backend in (ExecutionBackend.SCALAR, ExecutionBackend.COLUMNAR):
        simulator = ParrotSimulator(model_config("TON"))
        runs[backend] = simulator.simulate(
            application("swim"),
            RunOptions(sampling=sampling, backend=backend, estimate=True),
            length=30_000,
        )
    scalar, columnar = (runs[ExecutionBackend.SCALAR],
                        runs[ExecutionBackend.COLUMNAR])
    assert columnar.result.to_dict() == scalar.result.to_dict()
    assert columnar.estimate.intervals == scalar.estimate.intervals
    assert columnar.estimate.ipc.mean == scalar.estimate.ipc.mean
    assert columnar.estimate.epi.mean == scalar.estimate.epi.mean
    assert len(columnar.estimate.phases) == len(scalar.estimate.phases)
    for c_phase, s_phase in zip(columnar.estimate.phases,
                                scalar.estimate.phases):
        assert (c_phase.phase, c_phase.periods, c_phase.measured,
                c_phase.closed, c_phase.reused) == (
            s_phase.phase, s_phase.periods, s_phase.measured,
            s_phase.closed, s_phase.reused)
        assert c_phase.ipc.mean == s_phase.ipc.mean
        assert c_phase.epi.mean == s_phase.epi.mean


def test_columnar_artifact_with_shared_caches(tmp_path):
    """Artifact + shared segments + ColdPlanCache replay, both backends.

    Two models with equal fetch parameters share one cache across both
    backends; every combination must match the generator-path scalar run.
    """
    app = application("gcc")
    artifact = compile_artifact(app, app.seed, 3000, root=tmp_path)
    segments = artifact.segments()
    cache = ColdPlanCache(segments)
    for model_name in ("N", "TON"):
        reference = _simulate(model_name=model_name, app_name="gcc",
                              length=3000, options=RunOptions())
        for backend in (ExecutionBackend.SCALAR, ExecutionBackend.COLUMNAR):
            result = ParrotSimulator(model_config(model_name)).simulate(
                artifact,
                RunOptions(backend=backend, segments=segments,
                           cold_plans=cache),
            )
            assert result.to_dict() == reference


class TestDependencyLinks:
    """The compile-time wake-up resolution the replay loops rely on."""

    @staticmethod
    def _row(src1=REG_NONE, src2=REG_NONE, extra=(), dest=REG_NONE,
             dest2=REG_NONE):
        return (FuClass.INT, 1, src1, src2, tuple(extra), dest, dest2,
                0, 0)

    def test_in_segment_producers_and_carried_reads(self):
        rows = [
            self._row(dest=3),            # uop 0 writes r3
            self._row(src1=3, src2=4),    # uop 1: r3 in-segment, r4 carried
        ]
        producers, carried, last_writers = _dependency_links(rows)
        assert producers == [None, (0,)]
        assert carried == [None, (4,)]
        assert dict(last_writers) == {3: 1 - 1}

    def test_last_writer_wins(self):
        rows = [self._row(dest=5), self._row(dest=5)]
        _producers, _carried, last_writers = _dependency_links(rows)
        assert dict(last_writers) == {5: 1}

    def test_negative_extra_sources_alias_like_the_scalar_loop(self):
        # The scalar executor reads ``reg_ready[src]`` unguarded for
        # packed extra sources, so REG_NONE (-1) wraps to the register
        # file's last cell in CPython; the links must alias identically.
        rows = [self._row(extra=(REG_NONE,))]
        _producers, carried, _last_writers = _dependency_links(rows)
        assert carried == [(REG_NONE + NUM_ARCH_REGS,)]
