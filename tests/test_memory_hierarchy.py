"""Unit tests: the L1I/L1D/L2/DRAM hierarchy."""

import pytest

from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture()
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy()


class TestLoadPath:
    def test_cold_load_pays_full_stack(self, hierarchy):
        config = hierarchy.config
        latency = hierarchy.load_latency(0x10000)
        assert latency == (
            config.l1_latency + config.l2_latency + config.memory_latency
        )
        assert hierarchy.events.memory_accesses == 1

    def test_warm_load_is_l1_hit(self, hierarchy):
        hierarchy.load_latency(0x10000)
        assert hierarchy.load_latency(0x10000) == hierarchy.config.l1_latency
        assert hierarchy.events.l1d_misses == 1

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.load_latency(0x10000)
        # Thrash L1D (32KB, 8-way): touch > 32KB of conflicting lines.
        for i in range(1, 1200):
            hierarchy.load_latency(0x10000 + i * 64)
        latency = hierarchy.load_latency(0x10000)
        assert latency == hierarchy.config.l1_latency + hierarchy.config.l2_latency

    def test_store_counts_without_latency(self, hierarchy):
        hierarchy.store_access(0x2000)
        assert hierarchy.events.l1d_accesses == 1
        hierarchy.store_access(0x2000)
        assert hierarchy.events.l1d_misses == 1


class TestFetchPath:
    def test_fetch_hit_costs_nothing_extra(self, hierarchy):
        hierarchy.fetch_latency(0x400000)
        assert hierarchy.fetch_latency(0x400000) == 0

    def test_fetch_miss_pays_l2(self, hierarchy):
        first = hierarchy.fetch_latency(0x400000)
        assert first == hierarchy.config.l2_latency + hierarchy.config.memory_latency
        assert hierarchy.events.l1i_misses == 1


class TestPrewarm:
    def test_prewarm_installs_code_and_data(self, hierarchy):
        hierarchy.prewarm(
            code_addresses=[0x400000, 0x400040],
            data_ranges=[(0x10000, 4096)],
        )
        # Code is in L1I.
        assert hierarchy.fetch_latency(0x400000) == 0
        # Data is in L2 (L1 miss, L2 hit).
        assert hierarchy.load_latency(0x10000) == (
            hierarchy.config.l1_latency + hierarchy.config.l2_latency
        )

    def test_prewarm_charges_no_events(self, hierarchy):
        hierarchy.prewarm(code_addresses=[0x400000], data_ranges=[(0, 8192)])
        events = hierarchy.events
        assert events.l1i_accesses == 0
        assert events.l2_accesses == 0
        assert events.memory_accesses == 0

    def test_reset_flushes_everything(self, hierarchy):
        hierarchy.prewarm(code_addresses=[0x400000])
        hierarchy.reset()
        assert hierarchy.fetch_latency(0x400000) > 0


class TestConfig:
    def test_l2_mbytes(self):
        assert HierarchyConfig().l2_mbytes == 1.0
        big = HierarchyConfig(l2=CacheGeometry(4 * 1024 * 1024, 8, 64))
        assert big.l2_mbytes == 4.0

    def test_custom_latencies_respected(self):
        config = HierarchyConfig(l1_latency=2, l2_latency=9, memory_latency=77)
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.load_latency(0) == 2 + 9 + 77
