"""The simulate()/RunOptions API: parity with the legacy entry points.

``ParrotSimulator.simulate`` is the one non-deprecated run entry point;
the four historical methods (``run``/``run_sampled``/``run_stream``/
``run_artifact``) are thin shims over it.  These tests pin three
contracts:

* every legacy call shape produces the bit-identical result through
  ``simulate`` — for all three source types and both execution backends;
* the legacy methods warn ``DeprecationWarning`` (they still work);
* validation is unified in ``simulate`` and raises
  :class:`~repro.errors.SimulationError` naming the offending source.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.simulator import (
    ColdPlanCache,
    ParrotSimulator,
    RunOptions,
    SampledRun,
    segment_stream,
)
from repro.errors import SimulationError
from repro.experiments.engine import parse_backend, resolve_run_options, run_key
from repro.models.configs import model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import application
from repro.workloads.tracefile import compile_artifact

LENGTH = 2000


def _legacy(method, *args, **kwargs):
    """Call a deprecated entry point with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return method(*args, **kwargs)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    app = application("gzip")
    root = tmp_path_factory.mktemp("artifacts")
    return compile_artifact(app, app.seed, LENGTH, root=root)


class TestLegacyParity:
    """simulate() is bit-identical to each legacy path it replaces."""

    @pytest.mark.parametrize(
        "backend", [ExecutionBackend.SCALAR, ExecutionBackend.COLUMNAR]
    )
    def test_application_source_matches_run(self, backend):
        app = application("swim")
        legacy = _legacy(
            ParrotSimulator(model_config("TON")).run, app, LENGTH
        )
        unified = ParrotSimulator(model_config("TON")).simulate(
            app, RunOptions(backend=backend), length=LENGTH
        )
        assert unified.to_dict() == legacy.to_dict()

    @pytest.mark.parametrize(
        "backend", [ExecutionBackend.SCALAR, ExecutionBackend.COLUMNAR]
    )
    def test_stream_source_matches_run_stream(self, backend):
        workload = application("gcc").build()
        legacy = _legacy(
            ParrotSimulator(model_config("N")).run_stream,
            workload.stream(LENGTH),
            app_name="gcc", suite="SpecInt", program=workload.program,
        )
        workload = application("gcc").build()
        unified = ParrotSimulator(model_config("N")).simulate(
            workload.stream(LENGTH), RunOptions(backend=backend),
            app_name="gcc", suite="SpecInt", program=workload.program,
        )
        assert unified.to_dict() == legacy.to_dict()

    @pytest.mark.parametrize(
        "backend", [ExecutionBackend.SCALAR, ExecutionBackend.COLUMNAR]
    )
    def test_artifact_source_matches_run_artifact(self, artifact, backend):
        legacy = _legacy(
            ParrotSimulator(model_config("TON")).run_artifact, artifact
        )
        unified = ParrotSimulator(model_config("TON")).simulate(
            artifact, RunOptions(backend=backend)
        )
        assert unified.to_dict() == legacy.to_dict()

    def test_artifact_shared_caches_match_private_ones(self, artifact):
        segments = artifact.segments()
        cache = ColdPlanCache(segments)
        private = ParrotSimulator(model_config("TON")).simulate(artifact)
        shared = ParrotSimulator(model_config("TON")).simulate(
            artifact, RunOptions(segments=segments, cold_plans=cache)
        )
        assert shared.to_dict() == private.to_dict()

    def test_sampled_matches_run_sampled(self):
        app = application("swim")
        sampling = SamplingConfig(detail=400, gap=1000, warmup=200,
                                  func_warm=300)
        legacy = _legacy(
            ParrotSimulator(model_config("TON")).run_sampled,
            app, 8000, sampling=sampling,
        )
        unified = ParrotSimulator(model_config("TON")).simulate(
            app, RunOptions(sampling=sampling, estimate=True), length=8000
        )
        assert isinstance(unified, SampledRun)
        assert unified.result.to_dict() == legacy.result.to_dict()
        assert unified.estimate.ipc.mean == legacy.estimate.ipc.mean

    def test_sampling_without_estimate_returns_bare_result(self):
        app = application("swim")
        sampling = SamplingConfig(detail=400, gap=1000, warmup=200,
                                  func_warm=300)
        result = ParrotSimulator(model_config("TON")).simulate(
            app, RunOptions(sampling=sampling), length=8000
        )
        sampled = ParrotSimulator(model_config("TON")).simulate(
            app, RunOptions(sampling=sampling, estimate=True), length=8000
        )
        assert result.to_dict() == sampled.result.to_dict()


def _sole_deprecation(invoke):
    """Invoke a shim, returning its single captured DeprecationWarning."""
    with warnings.catch_warnings(record=True) as captured:
        warnings.simplefilter("always")
        invoke()
    records = [w for w in captured
               if issubclass(w.category, DeprecationWarning)]
    assert len(records) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(w.message) for w in records]}"
    )
    return records[0]


class TestDeprecationShims:
    """Each shim warns once, names its replacement, and blames the caller.

    The warning text must carry the full migration target (so the fix is
    copy-pasteable from the console), and ``stacklevel=2`` must attribute
    the warning to the *calling* file — this one — not to the module the
    shim lives in.
    """

    def test_run_warning_text_and_stacklevel(self):
        record = _sole_deprecation(
            lambda: ParrotSimulator(model_config("N")).run(
                application("gzip"), 1000
            )
        )
        assert str(record.message) == (
            "ParrotSimulator.run() is deprecated; use "
            "simulate(app, RunOptions(...), length=...)"
        )
        assert record.filename == __file__

    def test_run_sampled_warning_text_and_stacklevel(self):
        record = _sole_deprecation(
            lambda: ParrotSimulator(model_config("N")).run_sampled(
                application("gzip"), 6000,
                sampling=SamplingConfig(detail=400, gap=1000, warmup=200,
                                        func_warm=300),
            )
        )
        assert str(record.message) == (
            "ParrotSimulator.run_sampled() is deprecated; use "
            "simulate(app, RunOptions(sampling=..., estimate=True), "
            "length=...)"
        )
        assert record.filename == __file__

    def test_run_stream_warning_text_and_stacklevel(self):
        workload = application("gzip").build()
        record = _sole_deprecation(
            lambda: ParrotSimulator(model_config("N")).run_stream(
                workload.stream(1000), app_name="gzip"
            )
        )
        assert str(record.message) == (
            "ParrotSimulator.run_stream() is deprecated; use "
            "simulate(stream, app_name=..., suite=..., program=...)"
        )
        assert record.filename == __file__

    def test_run_artifact_warning_text_and_stacklevel(self, artifact):
        record = _sole_deprecation(
            lambda: ParrotSimulator(model_config("N")).run_artifact(artifact)
        )
        assert str(record.message) == (
            "ParrotSimulator.run_artifact() is deprecated; use "
            "simulate(artifact, RunOptions(segments=..., cold_plans=...))"
        )
        assert record.filename == __file__

    def test_bench_scale_warning_text_and_stacklevel(self):
        from repro.experiments.runner import bench_scale
        record = _sole_deprecation(lambda: bench_scale())
        assert str(record.message) == (
            "bench_scale() is deprecated; use Scale.from_environment()"
        )
        assert record.filename == __file__


class TestUnifiedValidation:
    """simulate() raises SimulationError naming the offending source."""

    def test_application_requires_length(self):
        with pytest.raises(SimulationError, match="simulate\\(swim\\).*length"):
            ParrotSimulator(model_config("N")).simulate(application("swim"))

    def test_application_rejects_non_positive_length(self):
        with pytest.raises(SimulationError, match="simulate\\(swim\\).*0"):
            ParrotSimulator(model_config("N")).simulate(
                application("swim"), length=0
            )

    def test_application_rejects_stream_kwargs(self):
        with pytest.raises(SimulationError,
                           match="simulate\\(swim\\).*InstructionStream"):
            ParrotSimulator(model_config("N")).simulate(
                application("swim"), length=1000, app_name="other"
            )

    def test_application_rejects_shared_caches(self):
        with pytest.raises(SimulationError,
                           match="simulate\\(swim\\).*artifact runs only"):
            ParrotSimulator(model_config("N")).simulate(
                application("swim"), RunOptions(segments=[]), length=1000
            )

    def test_artifact_rejects_explicit_length(self, artifact):
        with pytest.raises(SimulationError,
                           match="gzip artifact.*its own length"):
            ParrotSimulator(model_config("N")).simulate(artifact, length=500)

    def test_sampled_stream_requires_length(self):
        workload = application("gzip").build()
        with pytest.raises(SimulationError,
                           match="custom stream.*explicit length"):
            ParrotSimulator(model_config("N")).simulate(
                workload.stream(1000),
                RunOptions(sampling=SamplingConfig()),
            )

    def test_unknown_source_type_is_named(self):
        with pytest.raises(SimulationError, match="cannot run a str"):
            ParrotSimulator(model_config("N")).simulate("swim", length=1000)

    def test_cold_plan_cache_requires_matching_segments(self, artifact):
        segments = artifact.segments()
        foreign = list(segment_stream(artifact.stream()))
        cache = ColdPlanCache(foreign)
        with pytest.raises(SimulationError, match="different segment list"):
            ParrotSimulator(model_config("N")).simulate(
                artifact, RunOptions(segments=segments, cold_plans=cache)
            )

    def test_cold_plan_cache_requires_segments_alongside(self, artifact):
        cache = ColdPlanCache(artifact.segments())
        with pytest.raises(SimulationError, match="matching segments"):
            ParrotSimulator(model_config("N")).simulate(
                artifact, RunOptions(cold_plans=cache)
            )

    def test_bare_dict_cold_plans_are_scalar_only(self, artifact):
        segments = artifact.segments()
        options = RunOptions(
            segments=segments, cold_plans={},
            backend=ExecutionBackend.COLUMNAR,
        )
        with pytest.raises(SimulationError, match="scalar-only"):
            ParrotSimulator(model_config("N")).simulate(artifact, options)
        # The deprecated bare-dict contract still works on the scalar path.
        scalar = ParrotSimulator(model_config("N")).simulate(
            artifact, RunOptions(segments=segments, cold_plans={})
        )
        assert scalar.instructions == LENGTH


class TestRunOptionsKeys:
    """RunOptions round-trips into the persistent store's run keys."""

    def test_run_key_accepts_options_or_sampling(self):
        config = model_config("TON")
        sampling = SamplingConfig()
        assert run_key(config, "swim", 2000, RunOptions()) == run_key(
            config, "swim", 2000
        )
        assert run_key(
            config, "swim", 2000, RunOptions(sampling=sampling)
        ) == run_key(config, "swim", 2000, sampling)

    def test_backend_never_splits_the_key(self):
        # Scalar and columnar are pinned bit-identical, so either backend
        # may serve a stored cell: the key must not depend on it.
        config = model_config("TON")
        assert run_key(
            config, "swim", 2000,
            RunOptions(backend=ExecutionBackend.COLUMNAR),
        ) == run_key(config, "swim", 2000, RunOptions())

    def test_prewarm_splits_the_key(self):
        # Prewarming changes results, so it must key separately.
        config = model_config("TON")
        assert run_key(
            config, "swim", 2000, RunOptions(prewarm=False)
        ) != run_key(config, "swim", 2000, RunOptions())

    def test_fingerprint_covers_regime_fields(self):
        base = RunOptions()
        assert base.fingerprint() == "sampling=off|prewarm=1|backend=scalar"
        varied = [
            RunOptions(sampling=SamplingConfig()),
            RunOptions(prewarm=False),
            RunOptions(backend=ExecutionBackend.COLUMNAR),
        ]
        prints = {options.fingerprint() for options in varied}
        assert len(prints) == 3 and base.fingerprint() not in prints


class TestBackendParsing:
    def test_parse_backend(self):
        assert parse_backend(None) is ExecutionBackend.SCALAR
        assert parse_backend("") is ExecutionBackend.SCALAR
        assert parse_backend("scalar") is ExecutionBackend.SCALAR
        assert parse_backend("COLUMNAR") is ExecutionBackend.COLUMNAR

    def test_parse_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            parse_backend("vectorised")

    def test_resolve_run_options_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "columnar")
        monkeypatch.setenv("REPRO_BENCH_SAMPLING", "on")
        options = resolve_run_options()
        assert options.backend is ExecutionBackend.COLUMNAR
        assert options.sampling == SamplingConfig()
        # Explicit specs win over the environment.
        explicit = resolve_run_options("off", "scalar")
        assert explicit == RunOptions()
