#!/usr/bin/env python
"""Watch the dynamic optimizer transform one real hot trace.

Pulls the hottest trace-shaped segment out of a SpecFP application,
builds the decoded trace, runs the full optimizer pass pipeline on it,
and prints the before/after uop listings, the per-pass application
counts, and the machine-checked architectural-equivalence verdict.

Usage:  python examples/optimizer_deep_dive.py [app]
"""

import sys
from collections import Counter

from repro import application, segment_stream
from repro.optimizer import TraceOptimizer, check_equivalence, promote_control
from repro.trace import build_trace


def hottest_segment(app_name: str, length: int = 20_000):
    workload = application(app_name).build()
    counts = Counter()
    samples = {}
    for segment in segment_stream(workload.stream(length)):
        counts[segment.tid] += 1
        samples.setdefault(segment.tid, segment)
    tid, occurrences = counts.most_common(1)[0]
    return samples[tid], occurrences


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "wupwise"
    segment, occurrences = hottest_segment(app_name)
    print(f"hottest trace of {app_name}: {segment.tid}")
    print(f"  executed {occurrences} times, {segment.num_instructions} "
          f"instructions, {segment.uop_count} uops, "
          f"join_count={segment.join_count}\n")

    trace = build_trace(segment.tid, segment.instructions)
    optimized, report = TraceOptimizer().optimize(trace)

    print("original decoded uops:")
    for i, uop in enumerate(trace.uops):
        print(f"  {i:3d}  {uop}")
    print("\noptimized uops:")
    for i, uop in enumerate(optimized.uops):
        print(f"  {i:3d}  {uop}")

    print("\npass applications:")
    promotion = report.promotion
    print(f"  control promotion: {promotion.branches_promoted} branches -> "
          f"asserts, {promotion.jumps_eliminated} jumps, "
          f"{promotion.calls_eliminated + promotion.returns_eliminated} "
          f"call/return uops eliminated")
    for pass_name, count in report.pass_applications.items():
        print(f"  {pass_name:22s} {count}")

    print(f"\nuop reduction:        {report.uop_reduction:6.1%} "
          f"({report.uops_before} -> {report.uops_after})")
    print(f"dependency reduction: {report.dependency_reduction:6.1%} "
          f"(critical path {report.critical_path_before} -> "
          f"{report.critical_path_after})")
    print(f"virtual renames:      {report.virtual_renames}")

    baseline, _ = promote_control(trace.uops, trace.tid)
    verdict = check_equivalence(baseline, optimized.uops)
    print(f"\narchitectural equivalence check: "
          f"{'PASS' if verdict.equivalent else 'FAIL: ' + verdict.reason}")


if __name__ == "__main__":
    main()
