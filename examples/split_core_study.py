#!/usr/bin/env python
"""Future-work study: alternatives for the decoupled split core (§5).

The paper closes with: "One major topic for future research is related to
split-core micro-architectures.  We intend to investigate the potential
advantage of such design for establishing even better performance/energy
tradeoffs by considering different alternatives for the decoupled split
cores."

This study sweeps the two knobs our TOS model exposes — the cold
pipeline's width and the cold/hot state-switch latency — and compares
each variant against the unified TOW machine, quantifying how cheap the
cold core can get (idle-power savings) before switch costs and cold-phase
slowdowns eat the benefit.

Usage:  python examples/split_core_study.py [--apps N] [--length L]
"""

import argparse

from repro import ParrotSimulator, benchmark_suite, model_config
from repro.experiments.aggregate import geomean
from repro.models.configs import model_tos


def sweep(apps, length):
    variants = {"TOW (unified)": model_config("TOW")}
    for cold_width in (2, 4):
        for switch_latency in (1, 3, 8):
            name = f"TOS cold={cold_width}w switch={switch_latency}"
            variants[name] = model_tos(
                cold_width=cold_width, state_switch_latency=switch_latency
            )
    rows = {}
    for name, config in variants.items():
        results = [ParrotSimulator(config).run(app, length) for app in apps]
        rows[name] = {
            "ipc": geomean([r.ipc for r in results]),
            "energy": geomean([r.total_energy for r in results]),
            "cmpw": geomean([r.point.cmpw for r in results]),
        }
    return rows


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--apps", type=int, default=8)
    parser.add_argument("--length", type=int, default=12_000)
    args = parser.parse_args()

    apps = benchmark_suite(max_apps=args.apps)
    rows = sweep(apps, args.length)
    base = rows["TOW (unified)"]

    header = f"{'variant':28}{'IPC':>8}{'energy':>10}{'CMPW':>9}"
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        print(f"{name:28}{row['ipc'] / base['ipc'] - 1:>+7.1%} "
              f"{row['energy'] / base['energy'] - 1:>+9.1%}"
              f"{row['cmpw'] / base['cmpw'] - 1:>+9.1%}")

    print(
        "\n(vs the unified TOW machine.)  The split design pays switch\n"
        "latency and the second core's leakage; a narrower cold core\n"
        "saves little because cold code is rare but switch-bound.  This\n"
        "is the trade the paper flags as open future work."
    )


if __name__ == "__main__":
    main()
