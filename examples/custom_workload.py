#!/usr/bin/env python
"""Build a custom synthetic application and simulate it on PARROT.

Demonstrates the workload-construction API: a hand-assembled program
(one hot streaming kernel + one rarely-taken error path) driven through
the machine models.  This is how a user studies *their own* code shape —
e.g. "how much does PARROT help a tight DSP loop with a 1% error branch?"

Usage:  python examples/custom_workload.py
"""

import random

from repro import ParrotSimulator, model_config
from repro.core.simulator import ParrotSimulator  # noqa: F811 (explicitness)
from repro.isa.opcodes import InstrClass
from repro.workloads import (
    BiasedBranchSpec,
    BodyEmitter,
    LoopBranchSpec,
    ProgramBuilder,
    StrideMemSpec,
    multimedia_profile,
)
from repro.workloads.stream import InstructionStream, StreamWalker


def build_dsp_program():
    """A multiply-accumulate style streaming loop with a rare error check."""
    builder = ProgramBuilder("custom-dsp", seed=2026)
    profile = multimedia_profile("custom-dsp").derive(
        pairable_density=0.5, fusable_density=0.3
    )
    rng = random.Random(7)

    error_path = builder.label("error_path")
    resume = builder.label("resume")

    entry = builder.place(builder.label("entry"))
    emitter = BodyEmitter(builder, profile, rng, hot=True)

    # Streaming input/output arrays.
    src = builder.alloc_data(64 * 1024)
    dst = builder.alloc_data(64 * 1024)

    loop = builder.place(builder.label("loop"))
    builder.emit(InstrClass.FP_LOAD, dest=16, src1=0,
                 mem=StrideMemSpec(src, 8, 64 * 1024))
    builder.emit(InstrClass.FP_LOAD, dest=17, src1=0,
                 mem=StrideMemSpec(src + 8, 8, 64 * 1024))
    builder.emit(InstrClass.FP_ARITH, dest=18, src1=16, src2=17, fp_mul=True)
    builder.emit(InstrClass.FP_ARITH, dest=19, src1=18, src2=20)
    emitter.emit_body(10)  # profile-driven filler (SIMD/fusion food)
    builder.emit(InstrClass.FP_STORE, src1=1, src2=19,
                 mem=StrideMemSpec(dst, 8, 64 * 1024))
    # Rare error check: taken once in ~200 iterations.
    builder.emit(InstrClass.COMPARE, src1=2, src2=3)
    builder.cond_branch(error_path, BiasedBranchSpec(p_taken=0.005))
    builder.place(resume)
    builder.emit(InstrClass.COMPARE, src1=4)
    builder.cond_branch(loop, LoopBranchSpec(1 << 30, 1 << 30))
    builder.jump(loop)

    # Cold error path: bounds fixing, executed almost never.
    builder.place(error_path)
    cold = BodyEmitter(builder, profile, rng, hot=False)
    cold.emit_body(20)
    builder.jump(resume)

    return builder.finish(entry)


def main() -> None:
    program = build_dsp_program()
    print(f"built '{program.name}': {program.num_static_instructions} static "
          f"instructions, {program.code_bytes} code bytes\n")

    length = 20_000
    for model_name in ("N", "TN", "TON"):
        simulator = ParrotSimulator(model_config(model_name))
        stream = InstructionStream(StreamWalker(program, seed=1), length)
        result = simulator.run_stream(
            stream, app_name=program.name, suite="Custom", program=program
        )
        print(f"{model_name:4s} IPC={result.ipc:5.2f}  "
              f"energy={result.total_energy:9.0f}  "
              f"coverage={result.coverage:5.1%}  "
              f"uop-reduction={result.uop_reduction:5.1%}")

    print(
        "\nA tight streaming kernel is PARROT's best case: near-total\n"
        "coverage, heavy trace reuse, and SIMD/fusion-friendly bodies."
    )


if __name__ == "__main__":
    main()
