#!/usr/bin/env python
"""Quickstart: simulate one application on the baseline and on PARROT.

Runs swim (SpecFP) on the 4-wide reference machine N and on the PARROT
TON machine (same width + selective trace cache + dynamic optimizer),
then prints the performance / energy / power-awareness comparison that
is the paper's core claim.

Usage:  python examples/quickstart.py [app] [instructions]
"""

import sys

from repro import ParrotSimulator, application, model_config
from repro.power.metrics import cmpw_improvement, energy_increase, ipc_improvement


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "swim"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    app = application(app_name)
    print(f"application: {app.name} ({app.suite}), {length} instructions\n")

    results = {}
    for model_name in ("N", "TON"):
        config = model_config(model_name)
        result = ParrotSimulator(config).run(app, length)
        results[model_name] = result
        print(f"model {model_name:3s} — {config.description}")
        print(f"  IPC               {result.ipc:8.3f}")
        print(f"  cycles            {result.cycles:8.0f}")
        print(f"  total energy      {result.total_energy:8.0f} units")
        print(f"  coverage          {result.coverage:8.1%}")
        if result.trace_stats.traces_constructed:
            print(f"  traces built      {result.trace_stats.traces_constructed:8d}")
            print(f"  traces optimized  {result.trace_stats.traces_optimized:8d}")
            print(f"  uop reduction     {result.uop_reduction:8.1%}")
        print()

    base, parrot = results["N"].point, results["TON"].point
    print("PARROT (TON) vs baseline (N):")
    print(f"  IPC    {ipc_improvement(parrot, base):+8.1%}")
    print(f"  energy {energy_increase(parrot, base):+8.1%}")
    print(f"  CMPW   {cmpw_improvement(parrot, base):+8.1%}   (cubic-MIPS-per-WATT)")


if __name__ == "__main__":
    main()
