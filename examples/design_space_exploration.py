#!/usr/bin/env python
"""Design-space exploration: all seven machine models over the suite.

Reproduces the paper's §4.1 trade-off discussion: for each model of
Table 3.1 (N, W, TN, TW, TON, TOW, TOS), print geometric-mean IPC,
energy and CMPW relative to the baseline N, plus coverage — the view a
power-aware architect would use to pick a design point under a given
power budget.

Usage:  python examples/design_space_exploration.py [--apps N] [--length L]
"""

import argparse

from repro import ExperimentRunner, MODEL_NAMES
from repro.experiments.aggregate import OVERALL, geomean, paired_ratio_by_suite


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--apps", type=int, default=12,
                        help="applications (balanced across suites)")
    parser.add_argument("--length", type=int, default=15_000,
                        help="instructions per application")
    args = parser.parse_args()

    runner = ExperimentRunner(length=args.length, max_apps=args.apps)
    apps = runner.applications()
    print(f"sweeping {len(MODEL_NAMES)} models x {len(apps)} applications "
          f"x {args.length} instructions ...\n")

    base = runner.results("N", apps)
    header = f"{'model':6}{'IPC':>10}{'energy':>10}{'CMPW':>10}{'coverage':>10}"
    print(header)
    print("-" * len(header))
    for model_name in MODEL_NAMES:
        results = runner.results(model_name, apps)
        ipc = paired_ratio_by_suite(results, base, lambda r: r.ipc)[OVERALL]
        energy = paired_ratio_by_suite(
            results, base, lambda r: r.total_energy
        )[OVERALL]
        cmpw = paired_ratio_by_suite(
            results, base, lambda r: r.point.cmpw
        )[OVERALL]
        coverage = geomean([max(r.coverage, 1e-9) for r in results])
        coverage_text = f"{coverage:9.1%}" if coverage > 1e-6 else "        -"
        print(f"{model_name:6}{ipc:>+9.1%} {energy:>+9.1%} {cmpw:>+9.1%} "
              f"{coverage_text}")

    print(
        "\nReading the table like the paper does: the conventional path to\n"
        "performance (W) costs a disproportionate amount of energy; PARROT\n"
        "on the narrow machine (TON) reaches W-class performance near\n"
        "baseline energy; PARROT on the wide machine (TOW) is the fastest\n"
        "design while being far more power-aware than W."
    )


if __name__ == "__main__":
    main()
