"""Declarative branch and memory behaviours for synthetic programs.

A static program annotates every conditional branch, indirect jump and
memory instruction with a *spec* describing how that site behaves
dynamically.  Specs are immutable and declarative; the stream walker
instantiates a fresh mutable *state* per spec at stream start, which makes
streams replayable and fully deterministic under a fixed seed.

The spec vocabulary is chosen to span the predictability spectrum the paper
relies on: loop-exit branches (predictable by counters and by gshare),
biased branches (predictable), short periodic patterns (predictable with
history) and data-dependent branches (essentially random, the "irregular"
SpecInt behaviour).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


# --------------------------------------------------------------------------
# Branch specs
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LoopBranchSpec:
    """A loop back-edge: taken ``trip - 1`` times, then not-taken once.

    When ``trip_hi > trip_lo`` the trip count is drawn uniformly from
    ``[trip_lo, trip_hi]``.  With ``fixed=True`` the draw happens once and
    every re-entry reuses it (compile-time loop bounds, typical of regular
    FP/multimedia kernels); otherwise the count is redrawn per entry
    (data-dependent bounds, typical of irregular integer code).
    """

    trip_lo: int
    trip_hi: int
    fixed: bool = False


@dataclass(frozen=True, slots=True)
class BiasedBranchSpec:
    """Taken with fixed probability ``p_taken``, independently per execution."""

    p_taken: float


@dataclass(frozen=True, slots=True)
class PatternBranchSpec:
    """Deterministic periodic direction pattern (e.g. TTNT repeating).

    ``period`` directions are drawn once (seeded) and then repeat forever —
    highly predictable for a history-based predictor.
    """

    period: int
    p_taken: float = 0.5


@dataclass(frozen=True, slots=True)
class DataDependentBranchSpec:
    """Effectively random direction — models data-dependent SpecInt branches."""

    p_taken: float = 0.5


@dataclass(frozen=True, slots=True)
class SwitchSpec:
    """An indirect jump choosing among ``n_targets`` with Zipf-ish skew."""

    n_targets: int
    skew: float = 1.0


BranchSpec = (
    LoopBranchSpec | BiasedBranchSpec | PatternBranchSpec | DataDependentBranchSpec
)


class _LoopState:
    __slots__ = ("spec", "rng", "remaining", "_fixed_trip")

    def __init__(self, spec: LoopBranchSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self._fixed_trip = self._draw() if spec.fixed else None
        self.remaining = self._fixed_trip if spec.fixed else self._draw()

    def _draw(self) -> int:
        if self.spec.trip_hi > self.spec.trip_lo:
            return self.rng.randint(self.spec.trip_lo, self.spec.trip_hi)
        return self.spec.trip_lo

    def next_taken(self) -> bool:
        """Back-edge is taken while iterations remain; reset on exit."""
        self.remaining -= 1
        if self.remaining > 0:
            return True
        self.remaining = (
            self._fixed_trip if self._fixed_trip is not None else self._draw()
        )
        return False


class _BiasedState:
    __slots__ = ("p", "rng")

    def __init__(self, spec: BiasedBranchSpec, rng: random.Random):
        self.p = spec.p_taken
        self.rng = rng

    def next_taken(self) -> bool:
        return self.rng.random() < self.p


class _PatternState:
    __slots__ = ("pattern", "index")

    def __init__(self, spec: PatternBranchSpec, rng: random.Random):
        self.pattern = [rng.random() < spec.p_taken for _ in range(spec.period)]
        if not any(self.pattern):
            self.pattern[0] = True
        self.index = 0

    def next_taken(self) -> bool:
        taken = self.pattern[self.index]
        self.index = (self.index + 1) % len(self.pattern)
        return taken


class _DataDependentState:
    __slots__ = ("p", "rng")

    def __init__(self, spec: DataDependentBranchSpec, rng: random.Random):
        self.p = spec.p_taken
        self.rng = rng

    def next_taken(self) -> bool:
        return self.rng.random() < self.p


class _SwitchState:
    __slots__ = ("weights", "rng", "n")

    def __init__(self, spec: SwitchSpec, rng: random.Random):
        self.n = spec.n_targets
        self.weights = [1.0 / (i + 1) ** spec.skew for i in range(spec.n_targets)]
        self.rng = rng

    def next_index(self) -> int:
        return self.rng.choices(range(self.n), weights=self.weights, k=1)[0]


def make_branch_state(spec: BranchSpec, rng: random.Random):
    """Instantiate the mutable runtime state for a branch spec."""
    if isinstance(spec, LoopBranchSpec):
        return _LoopState(spec, rng)
    if isinstance(spec, BiasedBranchSpec):
        return _BiasedState(spec, rng)
    if isinstance(spec, PatternBranchSpec):
        return _PatternState(spec, rng)
    if isinstance(spec, DataDependentBranchSpec):
        return _DataDependentState(spec, rng)
    raise TypeError(f"unknown branch spec {spec!r}")


def make_switch_state(spec: SwitchSpec, rng: random.Random) -> _SwitchState:
    """Instantiate the mutable runtime state for an indirect-jump spec."""
    return _SwitchState(spec, rng)


# --------------------------------------------------------------------------
# Memory specs
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StrideMemSpec:
    """Sequential access: ``base + (k * stride) % extent`` on the k-th access.

    Models array streaming (SpecFP / multimedia).  ``extent`` bounds the
    touched region so the working set is controllable.
    """

    base: int
    stride: int
    extent: int


@dataclass(frozen=True, slots=True)
class RandomMemSpec:
    """Uniform random access within ``[base, base + extent)``.

    Models pointer-chasing / hash-table behaviour (SpecInt, office apps).
    """

    base: int
    extent: int


MemSpec = StrideMemSpec | RandomMemSpec


class _StrideMemState:
    __slots__ = ("spec", "offset")

    def __init__(self, spec: StrideMemSpec):
        self.spec = spec
        self.offset = 0

    def next_address(self) -> int:
        addr = self.spec.base + self.offset
        self.offset = (self.offset + self.spec.stride) % max(self.spec.extent, 1)
        return addr


class _RandomMemState:
    __slots__ = ("spec", "rng")

    def __init__(self, spec: RandomMemSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng

    def next_address(self) -> int:
        # Align to 8 bytes like typical scalar accesses.
        return self.spec.base + (self.rng.randrange(max(self.spec.extent, 8)) & ~7)


def make_mem_state(spec: MemSpec, rng: random.Random):
    """Instantiate the mutable runtime state for a memory spec."""
    if isinstance(spec, StrideMemSpec):
        return _StrideMemState(spec)
    if isinstance(spec, RandomMemSpec):
        return _RandomMemState(spec, rng)
    raise TypeError(f"unknown memory spec {spec!r}")
