"""Program-skeleton kernels: the building blocks of synthetic applications.

A synthetic application is assembled from *kernels* — loop nests, call
trees, switch dispatchers and straight-line cold blocks — emitted into a
:class:`~repro.workloads.program.ProgramBuilder`.  The
:class:`BodyEmitter` generates straight-line instruction sequences matching
a profile's instruction mix, and deliberately plants the idioms the dynamic
optimizer feeds on (constant producers, dead writes, fusable dependent
pairs, SIMD-pairable independent pairs) at profile-controlled densities.
"""

from __future__ import annotations

import random

from repro.isa.opcodes import InstrClass
from repro.isa.registers import FP_REG_BASE, NUM_FP_REGS
from repro.workloads.behaviors import (
    BiasedBranchSpec,
    BranchSpec,
    DataDependentBranchSpec,
    LoopBranchSpec,
    MemSpec,
    PatternBranchSpec,
    RandomMemSpec,
    StrideMemSpec,
    SwitchSpec,
)
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.program import Label, ProgramBuilder

#: Integer registers available to body code (r12-r13 are scratch for
#: switches; r15 is the stack pointer; r14 reserved for indirect targets).
BODY_INT_REGS = tuple(range(0, 12))
SWITCH_REG = 14
FP_REGS = tuple(range(FP_REG_BASE, FP_REG_BASE + NUM_FP_REGS))


class BodyEmitter:
    """Emit straight-line body instructions matching a profile's mix.

    One emitter is created per kernel so that register rotation and memory
    sites are kernel-local, giving each kernel its own dependence structure
    and data region.
    """

    def __init__(
        self,
        builder: ProgramBuilder,
        profile: WorkloadProfile,
        rng: random.Random,
        *,
        hot: bool,
    ):
        self.builder = builder
        self.profile = profile
        self.rng = rng
        self.hot = hot
        self._dest_cursor = rng.randrange(len(BODY_INT_REGS))
        self._fp_cursor = rng.randrange(len(FP_REGS))
        self._recent: list[int] = []
        #: FP registers whose current value came from a load — reading them
        #: starts a fresh (short) dependence chain, the way streaming FP
        #: kernels read array elements rather than long accumulator chains.
        self._fp_loaded: set[int] = set()
        # The profile working set is an *application* total; each kernel's
        # region is its share, so the app footprint matches the profile.
        if hot:
            share = max(1, profile.n_hot_kernels)
            ws = max(4096, profile.hot_ws_bytes // share)
        else:
            share = max(1, profile.n_cold_kernels)
            ws = max(4096, profile.cold_ws_bytes // share)
        self._region_base = builder.alloc_data(ws)
        self._region_size = ws

    # -- register selection --------------------------------------------------

    def _next_dest(self) -> int:
        reg = BODY_INT_REGS[self._dest_cursor]
        self._dest_cursor = (self._dest_cursor + 1) % len(BODY_INT_REGS)
        self._remember(reg)
        return reg

    def _next_fp_dest(self) -> int:
        reg = FP_REGS[self._fp_cursor]
        self._fp_cursor = (self._fp_cursor + 1) % len(FP_REGS)
        self._fp_loaded.discard(reg)
        return reg

    def _fp_load_dest(self) -> int:
        reg = FP_REGS[self._fp_cursor]
        self._fp_cursor = (self._fp_cursor + 1) % len(FP_REGS)
        self._fp_loaded.add(reg)
        return reg

    def _remember(self, reg: int) -> None:
        self._recent.append(reg)
        if len(self._recent) > 4:
            self._recent.pop(0)

    def _src(self) -> int:
        """Mostly-independent sources with some value locality.

        A low recent-value bias keeps multiple dependence chains live in
        parallel — matching the instruction-level parallelism real compiled
        loop bodies expose to a 4-wide machine.
        """
        if self._recent and self.rng.random() < 0.2:
            return self.rng.choice(self._recent)
        return self.rng.choice(BODY_INT_REGS)

    def _fp_src(self) -> int:
        """Prefer load-produced values: breaks accumulator chains."""
        if self._fp_loaded and self.rng.random() < 0.85:
            return self.rng.choice(tuple(self._fp_loaded))
        return self.rng.choice(FP_REGS)

    # -- memory sites -------------------------------------------------------

    def _mem_spec(self) -> MemSpec:
        """Create a fresh memory-site spec inside this kernel's region."""
        if self.rng.random() < self.profile.stride_frac:
            extent = max(self._region_size // 2, 64)
            offset = self.rng.randrange(max(self._region_size - extent, 1))
            return StrideMemSpec(
                base=self._region_base + offset,
                stride=self.profile.mem_stride,
                extent=extent,
            )
        return RandomMemSpec(base=self._region_base, extent=self._region_size)

    # -- emission -----------------------------------------------------------

    def emit_body(self, n_instructions: int) -> int:
        """Emit approximately ``n_instructions`` straight-line instructions.

        Returns the exact number emitted (idiom pairs may overshoot by one).
        """
        emitted = 0
        while emitted < n_instructions:
            emitted += self._emit_one()
        return emitted

    def _emit_one(self) -> int:
        p = self.profile
        rng = self.rng
        # Normalised category weights: the profile densities are *relative*
        # shares, with plain integer code absorbing at least a 15% floor so
        # over-specified profiles cannot starve any category.
        weights = (
            p.const_density,
            p.dead_write_density,
            p.fusable_density,
            p.pairable_density,
            p.frac_mem,
            p.frac_fp,
            p.frac_mul,
        )
        plain = max(0.15, 1.0 - sum(weights))
        roll = rng.random() * (sum(weights) + plain)
        if roll < p.const_density:
            self.builder.emit(
                InstrClass.LOAD_IMM, dest=self._next_dest(), imm=rng.randrange(1, 256)
            )
            return 1
        roll -= p.const_density
        if roll < p.dead_write_density:
            return self._emit_dead_write()
        roll -= p.dead_write_density
        if roll < p.fusable_density:
            return self._emit_fusable_pair()
        roll -= p.fusable_density
        if roll < p.pairable_density:
            return self._emit_pairable_pair()
        roll -= p.pairable_density
        if roll < p.frac_mem:
            return self._emit_memory_op()
        roll -= p.frac_mem
        if roll < p.frac_fp:
            return self._emit_fp_op()
        roll -= p.frac_fp
        if roll < p.frac_mul:
            self.builder.emit(
                InstrClass.INT_MUL, dest=self._next_dest(), src1=self._src(), src2=self._src()
            )
            return 1
        return self._emit_plain_int()

    def _emit_dead_write(self) -> int:
        """A value produced and overwritten before any read: DCE food."""
        victim = self._next_dest()
        self.builder.emit(InstrClass.LOAD_IMM, dest=victim, imm=self.rng.randrange(1024))
        self.builder.emit(
            InstrClass.SIMPLE_ALU, dest=victim, src1=self._src(), src2=self._src()
        )
        return 2

    def _emit_fusable_pair(self) -> int:
        """Two dependent single-use ALU ops: micro-op fusion food."""
        tmp = self._next_dest()
        dst = self._next_dest()
        self.builder.emit(InstrClass.SIMPLE_ALU, dest=tmp, src1=self._src(), src2=self._src())
        self.builder.emit(
            InstrClass.ALU_IMM, dest=dst, src1=tmp, imm=self.rng.randrange(1, 64)
        )
        return 2

    def _emit_pairable_pair(self) -> int:
        """Two independent identical-kind ops: SIMDification food."""
        if self.profile.frac_fp > 0 and self.rng.random() < self.profile.frac_fp * 2:
            d1, d2 = self._next_fp_dest(), self._next_fp_dest()
            fp_mul = self.rng.random() < 0.5
            self.builder.emit(
                InstrClass.FP_ARITH, dest=d1, src1=self._fp_src(), src2=self._fp_src(),
                fp_mul=fp_mul,
            )
            self.builder.emit(
                InstrClass.FP_ARITH, dest=d2, src1=self._fp_src(), src2=self._fp_src(),
                fp_mul=fp_mul,
            )
        else:
            d1, d2 = self._next_dest(), self._next_dest()
            s = [self._src() for _ in range(4)]
            self.builder.emit(InstrClass.SIMPLE_ALU, dest=d1, src1=s[0], src2=s[1])
            self.builder.emit(InstrClass.SIMPLE_ALU, dest=d2, src1=s[2], src2=s[3])
        return 2

    def _emit_memory_op(self) -> int:
        p, rng = self.profile, self.rng
        spec = self._mem_spec()
        base = self._src()
        if rng.random() < p.frac_complex:
            iclass = rng.choice(
                (InstrClass.LOAD_OP, InstrClass.RMW, InstrClass.COMPLEX_ADDR)
            )
            self.builder.emit(
                iclass, dest=self._next_dest(), src1=base, src2=self._src(), mem=spec
            )
            return 1
        if rng.random() < p.frac_store:
            if p.frac_fp > 0 and rng.random() < p.frac_fp:
                self.builder.emit(
                    InstrClass.FP_STORE, src1=base, src2=self._fp_src(), mem=spec
                )
            else:
                self.builder.emit(
                    InstrClass.STORE, src1=base, src2=self._src(), mem=spec
                )
            return 1
        if p.frac_fp > 0 and rng.random() < p.frac_fp:
            self.builder.emit(
                InstrClass.FP_LOAD, dest=self._fp_load_dest(), src1=base, mem=spec
            )
        else:
            self.builder.emit(
                InstrClass.LOAD, dest=self._next_dest(), src1=base, mem=spec
            )
        return 1

    def _emit_fp_op(self) -> int:
        if self.rng.random() < 0.02:
            self.builder.emit(
                InstrClass.FP_DIVIDE,
                dest=self._next_fp_dest(),
                src1=self._fp_src(),
                src2=self._fp_src(),
            )
        else:
            self.builder.emit(
                InstrClass.FP_ARITH,
                dest=self._next_fp_dest(),
                src1=self._fp_src(),
                src2=self._fp_src(),
                fp_mul=self.rng.random() < 0.45,
            )
        return 1

    def _emit_plain_int(self) -> int:
        rng = self.rng
        choice = rng.random()
        dest = self._next_dest()
        if choice < 0.45:
            self.builder.emit(
                InstrClass.SIMPLE_ALU, dest=dest, src1=self._src(), src2=self._src()
            )
        elif choice < 0.65:
            self.builder.emit(
                InstrClass.ALU_IMM, dest=dest, src1=self._src(), imm=rng.randrange(1, 128)
            )
        elif choice < 0.80:
            self.builder.emit(
                InstrClass.LOGIC_OP, dest=dest, src1=self._src(), src2=self._src()
            )
        elif choice < 0.90:
            self.builder.emit(
                InstrClass.SHIFT_OP, dest=dest, src1=self._src(), imm=rng.randrange(1, 31)
            )
        else:
            self.builder.emit(InstrClass.REG_MOV, dest=dest, src1=self._src())
        return 1

    # -- control-flow idioms --------------------------------------------------

    def diamond_spec(self) -> BranchSpec:
        """Draw the behaviour spec of one if/else diamond per the profile."""
        p, rng = self.profile, self.rng
        if rng.random() < p.irregular_branch_frac:
            return DataDependentBranchSpec(p_taken=rng.uniform(0.35, 0.65))
        if rng.random() < 0.2:
            # Short periodic patterns, mostly one direction: learnable by a
            # history predictor even with some aliasing noise.
            return PatternBranchSpec(period=rng.randint(2, 3), p_taken=0.25)
        # Biased toward fall-through (the common "error check" shape).
        return BiasedBranchSpec(p_taken=1.0 - p.diamond_bias)

    def emit_diamond(self, then_size: int = 3, else_size: int = 3) -> None:
        """Emit a compare + if/else diamond with profile-driven behaviour."""
        b = self.builder
        b.emit(InstrClass.COMPARE, src1=self._src(), src2=self._src())
        else_lbl = b.label("else")
        join_lbl = b.label("join")
        b.cond_branch(else_lbl, self.diamond_spec())
        self.emit_body(then_size)
        b.jump(join_lbl)
        b.place(else_lbl)
        self.emit_body(else_size)
        b.place(join_lbl)


def build_loop_kernel(
    builder: ProgramBuilder,
    profile: WorkloadProfile,
    rng: random.Random,
    *,
    hot: bool = True,
    name: str = "loop",
) -> Label:
    """Emit a (possibly nested) loop kernel as a callable procedure.

    The loop back-edge is a backward taken conditional branch — exactly the
    construct PARROT's trace selection cuts traces at, so each iteration
    forms one trace and identical consecutive iterations may be joined
    (implicit unrolling).
    """
    entry = builder.place(builder.label(f"{name}_entry"))
    emitter = BodyEmitter(builder, profile, rng, hot=hot)
    body_lo, body_hi = profile.hot_body_range if hot else profile.cold_body_range
    body_size = rng.randint(body_lo, body_hi)
    n_diamonds = rng.randint(*profile.diamonds_per_body)
    nested = hot and rng.random() < profile.nested_loop_prob

    # Pre-header: loop-invariant setup.
    emitter.emit_body(rng.randint(1, 3))
    head = builder.place(builder.label(f"{name}_head"))

    # The body is split into chunks with diamonds / an inner loop between.
    n_chunks = max(1, n_diamonds + (1 if nested else 0)) + 1
    chunk = max(1, body_size // n_chunks)
    emitter.emit_body(chunk)
    for _ in range(n_diamonds):
        emitter.emit_diamond(
            then_size=rng.randint(2, 5), else_size=rng.randint(2, 5)
        )
        emitter.emit_body(chunk)
    fixed_trips = hot and rng.random() < profile.loop_regularity
    if nested:
        # The inner loop dominates the dynamic stream (trips multiply), so
        # give it a representative, full-size body.  Regular (fixed-bound)
        # inner loops keep long trips — their rare exits are what keeps FP
        # codes so predictable; irregular inner loops exit often.
        inner_head = builder.place(builder.label(f"{name}_inner"))
        emitter.emit_body(max(4, chunk))
        builder.emit(InstrClass.COMPARE, src1=rng.choice(BODY_INT_REGS))
        trip_lo, trip_hi = profile.hot_trip_range
        if fixed_trips:
            inner_trips = (max(8, trip_lo // 2), max(12, trip_hi // 2))
        else:
            inner_trips = (max(2, trip_lo // 8), max(3, trip_hi // 16))
        builder.cond_branch(
            inner_head,
            LoopBranchSpec(*inner_trips, fixed=fixed_trips),
        )
        emitter.emit_body(chunk)

    builder.emit(InstrClass.COMPARE, src1=rng.choice(BODY_INT_REGS))
    if hot:
        trips = LoopBranchSpec(*profile.hot_trip_range, fixed=fixed_trips)
    else:
        trips = LoopBranchSpec(1, 3)
    builder.cond_branch(head, trips)
    builder.ret()
    return entry


def build_switch_kernel(
    builder: ProgramBuilder,
    profile: WorkloadProfile,
    rng: random.Random,
    *,
    name: str = "switch",
) -> Label:
    """Emit a loop whose body dispatches through an indirect jump.

    Models interpreter/virtual-dispatch hot code: the indirect jump makes
    every iteration's path differ, producing many distinct TIDs (the
    SpecInt-style coverage limiter) and exercising the indirect-CTI trace
    termination rule.
    """
    entry = builder.place(builder.label(f"{name}_entry"))
    emitter = BodyEmitter(builder, profile, rng, hot=True)
    fanout = rng.randint(*profile.switch_fanout)
    emitter.emit_body(rng.randint(1, 3))
    head = builder.place(builder.label(f"{name}_head"))
    emitter.emit_body(rng.randint(2, 5))

    case_labels = [builder.label(f"{name}_case{i}") for i in range(fanout)]
    latch = builder.label(f"{name}_latch")
    builder.indirect_jump(SWITCH_REG, case_labels, SwitchSpec(fanout, skew=2.0))
    for case_lbl in case_labels:
        builder.place(case_lbl)
        emitter.emit_body(rng.randint(2, 6))
        builder.jump(latch)
    builder.place(latch)
    builder.emit(InstrClass.COMPARE, src1=rng.choice(BODY_INT_REGS))
    builder.cond_branch(head, LoopBranchSpec(*profile.hot_trip_range))
    builder.ret()
    return entry


def build_call_tree_kernel(
    builder: ProgramBuilder,
    profile: WorkloadProfile,
    rng: random.Random,
    *,
    depth: int,
    name: str = "tree",
) -> Label:
    """Emit a call tree whose leaves are small hot loops.

    Exercises CALL/RETURN trace-selection rules (the context counter that
    achieves procedure inlining inside traces).
    """
    if depth <= 0:
        return build_loop_kernel(builder, profile, rng, hot=True, name=f"{name}_leaf")
    children = [
        build_call_tree_kernel(
            builder, profile, rng, depth=depth - 1, name=f"{name}_{i}"
        )
        for i in range(2)
    ]
    entry = builder.place(builder.label(f"{name}_entry"))
    emitter = BodyEmitter(builder, profile, rng, hot=True)
    emitter.emit_body(rng.randint(2, 4))
    for child in children:
        builder.call(child)
        emitter.emit_body(rng.randint(1, 3))
    builder.ret()
    return entry


def build_cold_kernel(
    builder: ProgramBuilder,
    profile: WorkloadProfile,
    rng: random.Random,
    *,
    name: str = "cold",
) -> Label:
    """Emit a rarely-executed straight-line kernel (error paths, init code).

    A fraction of cold kernels issue a software interrupt (system call),
    exercising the exception trace-termination rule on real streams.
    """
    entry = builder.place(builder.label(f"{name}_entry"))
    emitter = BodyEmitter(builder, profile, rng, hot=False)
    lo, hi = profile.cold_body_range
    emitter.emit_body(rng.randint(lo, hi))
    if rng.random() < 0.25:
        builder.emit(InstrClass.SOFTWARE_INT)
    if rng.random() < 0.5:
        emitter.emit_diamond(then_size=rng.randint(2, 4), else_size=rng.randint(2, 4))
    if rng.random() < 0.3:
        # An occasional short cold loop.
        head = builder.place(builder.label(f"{name}_loop"))
        emitter.emit_body(rng.randint(2, 5))
        builder.emit(InstrClass.COMPARE, src1=rng.choice(BODY_INT_REGS))
        builder.cond_branch(head, LoopBranchSpec(1, 4))
    emitter.emit_body(rng.randint(2, 6))
    builder.ret()
    return entry
