"""Whole-application synthesis: profile -> program -> dynamic stream.

:class:`SyntheticWorkload` assembles a complete application image from a
:class:`~repro.workloads.profiles.WorkloadProfile`: a one-shot startup
section, a compact *hot region* (loop kernels, switch kernels, call trees)
driven by an endless outer loop, and a sprawling *cold region* (a switch
dispatcher over many rarely-executed kernels) entered with small
probability per outer iteration.  The layout reproduces the hot/cold (90/10)
structure the PARROT concept exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.opcodes import InstrClass
from repro.workloads.behaviors import BiasedBranchSpec, LoopBranchSpec, SwitchSpec
from repro.workloads.kernels import (
    SWITCH_REG,
    BodyEmitter,
    build_call_tree_kernel,
    build_cold_kernel,
    build_loop_kernel,
    build_switch_kernel,
)
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.program import Program, ProgramBuilder
from repro.workloads.stream import InstructionStream, StreamWalker

#: Trip count of the endless outer loop ("run until the stream budget ends").
_OUTER_TRIPS = 1 << 30


@dataclass(slots=True)
class WorkloadStats:
    """Structural statistics of a synthesised application."""

    static_instructions: int = 0
    code_bytes: int = 0
    hot_kernels: int = 0
    cold_kernels: int = 0
    switch_kernels: int = 0
    call_trees: int = 0


class SyntheticWorkload:
    """A complete synthetic application: static image + stream factory."""

    def __init__(self, profile: WorkloadProfile, seed: int = 1):
        profile.validate()
        self.profile = profile
        self.seed = seed
        self.stats = WorkloadStats()
        self.program = self._build_program()
        self.stats.static_instructions = self.program.num_static_instructions
        self.stats.code_bytes = self.program.code_bytes

    def _build_program(self) -> Program:
        profile = self.profile
        builder = ProgramBuilder(profile.name, self.seed)
        rng = random.Random(self.seed ^ 0x5EED)

        main_lbl = builder.label("main")
        cold_area_lbl = builder.label("cold_area")
        resume_lbl = builder.label("resume")

        # ---- startup section: executed exactly once, then jump to main.
        startup = builder.place(builder.label("startup"))
        startup_emitter = BodyEmitter(builder, profile, rng, hot=False)
        startup_emitter.emit_body(rng.randint(10, 25))
        builder.jump(main_lbl)

        # ---- hot region: loop kernels, switch kernels, call trees.
        hot_entries = []
        n_plain = max(1, profile.n_hot_kernels - profile.n_switch_kernels)
        for i in range(n_plain):
            hot_entries.append(
                build_loop_kernel(builder, profile, rng, hot=True, name=f"hot{i}")
            )
            self.stats.hot_kernels += 1
        for i in range(profile.n_switch_kernels):
            hot_entries.append(
                build_switch_kernel(builder, profile, rng, name=f"sw{i}")
            )
            self.stats.switch_kernels += 1
        if profile.call_depth >= 2:
            hot_entries.append(
                build_call_tree_kernel(
                    builder, profile, rng, depth=min(profile.call_depth - 1, 2),
                    name="tree",
                )
            )
            self.stats.call_trees += 1

        # ---- main outer loop: call every hot kernel, occasionally detour cold.
        builder.place(main_lbl)
        main_head = builder.place(builder.label("main_head"))
        glue = BodyEmitter(builder, profile, rng, hot=True)
        for entry in hot_entries:
            builder.call(entry)
            glue.emit_body(rng.randint(1, 2))
        builder.emit(InstrClass.COMPARE, src1=0)
        builder.cond_branch(cold_area_lbl, BiasedBranchSpec(p_taken=profile.p_cold))
        builder.place(resume_lbl)
        glue.emit_body(rng.randint(1, 3))
        builder.emit(InstrClass.COMPARE, src1=1)
        builder.cond_branch(main_head, LoopBranchSpec(_OUTER_TRIPS, _OUTER_TRIPS))
        # Fallen off the outer loop (never happens within stream budgets):
        builder.jump(main_head)

        # ---- cold region: dispatcher plus many rarely-run kernels.
        cold_entries = []
        for i in range(profile.n_cold_kernels):
            cold_entries.append(
                build_cold_kernel(builder, profile, rng, name=f"cold{i}")
            )
            self.stats.cold_kernels += 1
        builder.place(cold_area_lbl)
        case_labels = [builder.label(f"colddisp{i}") for i in range(len(cold_entries))]
        builder.indirect_jump(
            SWITCH_REG, case_labels, SwitchSpec(len(case_labels), skew=0.8)
        )
        for case_lbl, entry in zip(case_labels, cold_entries):
            builder.place(case_lbl)
            builder.call(entry)
            builder.jump(resume_lbl)

        return builder.finish(startup)

    def stream(self, limit: int, *, stream_seed: int | None = None) -> InstructionStream:
        """Create a fresh, replayable dynamic stream of ``limit`` instructions."""
        seed = self.seed ^ 0xC0FFEE if stream_seed is None else stream_seed
        return InstructionStream(StreamWalker(self.program, seed), limit)

    def walker(self, *, stream_seed: int | None = None) -> StreamWalker:
        """Create an unbounded walker (mostly useful for tests)."""
        seed = self.seed ^ 0xC0FFEE if stream_seed is None else stream_seed
        return StreamWalker(self.program, seed)
