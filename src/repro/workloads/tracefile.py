"""Execution-trace files: capture, store and replay dynamic streams.

The paper's simulators are *trace-driven*: they replay recorded execution
traces of real applications (§3).  This module provides the same workflow
for this reproduction — capture any dynamic stream (synthetic or
otherwise) into a compact ``.npz`` trace file, and replay it later without
the generating program:

    >>> from repro.workloads import application
    >>> from repro.workloads.tracefile import capture_trace, TraceFile
    >>> wl = application("swim").build()
    >>> capture_trace(wl.stream(100_000), "swim.trace.npz")
    >>> trace = TraceFile.load("swim.trace.npz")
    >>> result = ParrotSimulator(config).run_stream(
    ...     trace.stream(), app_name="swim", program=None)

A trace file is self-contained: it stores the static image of every
*executed* instruction (addresses, lengths, classes, complete uop
encodings) plus the dynamic record (instruction index, branch outcome,
successor, effective memory address), so third-party traces can be
converted into this format and run on all machine models.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import WorkloadError
from repro.isa.instruction import DynamicInstruction, MacroInstruction, Uop
from repro.isa.opcodes import InstrClass, UopKind
from repro.isa.registers import REG_NONE
from repro.workloads.stream import InstructionStream

#: Trace-file format version (stored in the archive for forward safety).
FORMAT_VERSION = 1

#: Sentinel for "no memory access" in the mem-address column.
_NO_MEM = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
#: Sentinel for "no immediate" in the uop imm column.
_NO_IMM = np.int64(-(1 << 62))


def capture_trace(
    stream: InstructionStream,
    path: str | pathlib.Path,
) -> int:
    """Record ``stream`` into a trace file; returns instructions captured.

    Only the static instructions actually executed are stored, so cold
    code that never runs costs nothing.
    """
    records: list[tuple[int, bool, int, int | None]] = []
    static_index: dict[int, int] = {}
    statics: list[MacroInstruction] = []
    while not stream.exhausted:
        dyn = stream.take()
        address = dyn.address
        index = static_index.get(address)
        if index is None:
            index = len(statics)
            static_index[address] = index
            statics.append(dyn.instr)
        records.append((index, dyn.taken, dyn.next_address, dyn.mem_addr))
    if not records:
        raise WorkloadError("cannot capture an empty stream")

    # ---- static tables -----------------------------------------------------
    s_addr = np.array([i.address for i in statics], dtype=np.uint64)
    s_len = np.array([i.length for i in statics], dtype=np.uint8)
    s_class = np.array([int(i.iclass) for i in statics], dtype=np.uint8)
    s_target = np.array(
        [i.taken_target if i.taken_target is not None else 0 for i in statics],
        dtype=np.uint64,
    )
    s_has_target = np.array(
        [i.taken_target is not None for i in statics], dtype=np.bool_
    )
    # Flattened uop table with per-instruction offsets.
    uop_rows: list[tuple[int, int, int, int, int]] = []
    uop_offsets = [0]
    for instr in statics:
        for uop in instr.uops:
            uop_rows.append(
                (
                    int(uop.kind),
                    uop.dest,
                    uop.src1,
                    uop.src2,
                    uop.imm if uop.imm is not None else int(_NO_IMM),
                )
            )
        uop_offsets.append(len(uop_rows))

    # ---- dynamic arrays ------------------------------------------------------
    d_index = np.array([r[0] for r in records], dtype=np.uint32)
    d_taken = np.array([r[1] for r in records], dtype=np.bool_)
    d_next = np.array([r[2] for r in records], dtype=np.uint64)
    d_mem = np.array(
        [r[3] if r[3] is not None else int(_NO_MEM) for r in records],
        dtype=np.uint64,
    )

    np.savez_compressed(
        path,
        version=np.array([FORMAT_VERSION]),
        s_addr=s_addr, s_len=s_len, s_class=s_class,
        s_target=s_target, s_has_target=s_has_target,
        uops=np.array(uop_rows, dtype=np.int64),
        uop_offsets=np.array(uop_offsets, dtype=np.int64),
        d_index=d_index, d_taken=d_taken, d_next=d_next, d_mem=d_mem,
    )
    return len(records)


class TraceFile:
    """A loaded execution trace, replayable as an instruction stream."""

    def __init__(self, instructions: list[MacroInstruction],
                 records: "np.ndarray", taken: "np.ndarray",
                 next_addresses: "np.ndarray", mem: "np.ndarray"):
        self.instructions = instructions
        self._index = records
        self._taken = taken
        self._next = next_addresses
        self._mem = mem

    # -- construction ---------------------------------------------------------

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TraceFile":
        """Load a trace file written by :func:`capture_trace`."""
        with np.load(path) as data:
            version = int(data["version"][0])
            if version != FORMAT_VERSION:
                raise WorkloadError(
                    f"trace file {path}: format version {version} unsupported"
                )
            uop_rows = data["uops"]
            uop_offsets = data["uop_offsets"]
            instructions = []
            for i in range(len(data["s_addr"])):
                uops = tuple(
                    Uop(
                        UopKind(int(kind)),
                        int(dest), int(src1), int(src2),
                        None if imm == int(_NO_IMM) else int(imm),
                    )
                    for kind, dest, src1, src2, imm in uop_rows[
                        uop_offsets[i]:uop_offsets[i + 1]
                    ]
                )
                instructions.append(
                    MacroInstruction(
                        address=int(data["s_addr"][i]),
                        length=int(data["s_len"][i]),
                        iclass=InstrClass(int(data["s_class"][i])),
                        uops=uops,
                        taken_target=(
                            int(data["s_target"][i])
                            if bool(data["s_has_target"][i])
                            else None
                        ),
                    )
                )
            return cls(
                instructions,
                data["d_index"].copy(),
                data["d_taken"].copy(),
                data["d_next"].copy(),
                data["d_mem"].copy(),
            )

    # -- replay ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def _iterate(self):
        instructions = self.instructions
        no_mem = int(_NO_MEM)
        for i in range(len(self._index)):
            mem = int(self._mem[i])
            yield DynamicInstruction(
                instructions[int(self._index[i])],
                taken=bool(self._taken[i]),
                next_address=int(self._next[i]),
                mem_addr=None if mem == no_mem else mem,
            )

    def stream(self, limit: int | None = None) -> InstructionStream:
        """Replay the trace as an :class:`InstructionStream`."""
        n = len(self)
        if limit is None or limit > n:
            limit = n
        return InstructionStream(self._iterate(), limit)

    def touched_data_ranges(self, line_bytes: int = 64) -> list[tuple[int, int]]:
        """Line-granular data ranges touched by the trace (for prewarming)."""
        valid = self._mem[self._mem != _NO_MEM]
        if valid.size == 0:
            return []
        lines = np.unique(valid // line_bytes)
        return [(int(line) * line_bytes, line_bytes) for line in lines]

    def code_addresses(self) -> list[int]:
        """All static instruction addresses (for prewarming the L1I)."""
        return [instr.address for instr in self.instructions]
