"""Execution-trace files: capture, store and replay dynamic streams.

The paper's simulators are *trace-driven*: they replay recorded execution
traces of real applications (§3).  This module provides the same workflow
for this reproduction — capture any dynamic stream (synthetic or
otherwise) into a compact ``.npz`` trace file, and replay it later without
the generating program:

    >>> from repro.workloads import application
    >>> from repro.workloads.tracefile import capture_trace, TraceFile
    >>> wl = application("swim").build()
    >>> capture_trace(wl.stream(100_000), "swim.trace.npz")
    >>> trace = TraceFile.load("swim.trace.npz")
    >>> result = ParrotSimulator(config).simulate(
    ...     trace.stream(), app_name="swim")

A trace file is self-contained: it stores the static image of every
*executed* instruction (addresses, lengths, classes, complete uop
encodings) plus the dynamic record (instruction index, branch outcome,
successor, effective memory address), so third-party traces can be
converted into this format and run on all machine models.

The second half of this module is the **compiled trace artifact** layer
used by the experiment engine's grid fast path.  Every machine model of an
application walks the bit-identical generated stream, so the engine
compiles each (app, seed, length) stream once — :func:`compile_artifact` —
into a content-keyed directory under the artifact cache
(``~/.cache/repro/artifacts`` beside the result store) and replays it for
every grid cell.  Unlike a portable trace file, an artifact additionally
persists the *full* program prewarm image (all static code addresses and
data ranges, in program order), so an artifact-driven run starts from the
exact hierarchy state a generator-driven run would; the dynamic record is
a flat uncompressed ``.npy`` loaded with ``mmap_mode="r"``, so parallel
pool workers replaying the same application share its pages through the
page cache instead of each re-walking the stream.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.isa.instruction import DynamicInstruction, MacroInstruction, Uop
from repro.isa.opcodes import (
    FLOW_CALL,
    FLOW_COND_BRANCH,
    FLOW_DIRECT_JUMP,
    FLOW_INDIRECT_JUMP,
    FLOW_RETURN,
    FLOW_SOFTWARE_INT,
    InstrClass,
    UopKind,
)
from repro.isa.registers import REG_NONE
from repro.workloads.stream import _DYN_CTI_FLOWS, InstructionStream

#: Trace-file format version (stored in the archive for forward safety).
FORMAT_VERSION = 1

#: Compiled-trace-artifact format version.  Part of the artifact key, so
#: bumping it silently invalidates every cached artifact (same mechanism
#: as the result store's schema version).
ARTIFACT_SCHEMA_VERSION = 1

#: Sentinel for "no memory access" in the mem-address column.
_NO_MEM = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
#: Sentinel for "no immediate" in the uop imm column.
_NO_IMM = np.int64(-(1 << 62))


def _static_arrays(statics: list[MacroInstruction]) -> dict[str, "np.ndarray"]:
    """Encode a static-instruction table as the on-disk column arrays."""
    uop_rows: list[tuple[int, int, int, int, int]] = []
    uop_offsets = [0]
    for instr in statics:
        for uop in instr.uops:
            uop_rows.append(
                (
                    int(uop.kind),
                    uop.dest,
                    uop.src1,
                    uop.src2,
                    uop.imm if uop.imm is not None else int(_NO_IMM),
                )
            )
        uop_offsets.append(len(uop_rows))
    return {
        "s_addr": np.array([i.address for i in statics], dtype=np.uint64),
        "s_len": np.array([i.length for i in statics], dtype=np.uint8),
        "s_class": np.array([int(i.iclass) for i in statics], dtype=np.uint8),
        "s_target": np.array(
            [i.taken_target if i.taken_target is not None else 0
             for i in statics],
            dtype=np.uint64,
        ),
        "s_has_target": np.array(
            [i.taken_target is not None for i in statics], dtype=np.bool_
        ),
        "uops": np.array(uop_rows, dtype=np.int64).reshape(-1, 5),
        "uop_offsets": np.array(uop_offsets, dtype=np.int64),
    }


def _decode_statics(data) -> list[MacroInstruction]:
    """Rebuild the static-instruction table from the column arrays.

    Reconstructed uops are interned per row, so two instructions sharing a
    decode template share one :class:`~repro.isa.instruction.Uop` object —
    the same flyweight discipline as
    :func:`~repro.isa.decoder.decode_template` (immutable by convention;
    mutating consumers copy first).
    """
    # Materialize every column exactly once: an NpzFile re-reads (and
    # decompresses) the full member on every subscript, so per-row
    # ``data[...]`` access is quadratic in disguise.
    addresses = data["s_addr"].tolist()
    lengths = data["s_len"].tolist()
    classes = data["s_class"].tolist()
    targets = data["s_target"].tolist()
    has_targets = data["s_has_target"].tolist()
    uop_rows = data["uops"].tolist()
    uop_offsets = data["uop_offsets"].tolist()
    no_imm = int(_NO_IMM)
    interned: dict[tuple, Uop] = {}
    instructions = []
    for i, address in enumerate(addresses):
        uops = []
        for row in uop_rows[uop_offsets[i]:uop_offsets[i + 1]]:
            row = tuple(row)
            uop = interned.get(row)
            if uop is None:
                uop = Uop(
                    UopKind(row[0]), row[1], row[2], row[3],
                    None if row[4] == no_imm else row[4],
                )
                interned[row] = uop
            uops.append(uop)
        instructions.append(
            MacroInstruction(
                address=address,
                length=lengths[i],
                iclass=InstrClass(classes[i]),
                uops=tuple(uops),
                taken_target=targets[i] if has_targets[i] else None,
            )
        )
    return instructions


def capture_trace(
    stream: InstructionStream,
    path: str | pathlib.Path,
) -> int:
    """Record ``stream`` into a trace file; returns instructions captured.

    Only the static instructions actually executed are stored, so cold
    code that never runs costs nothing.
    """
    records: list[tuple[int, bool, int, int | None]] = []
    static_index: dict[int, int] = {}
    statics: list[MacroInstruction] = []
    while not stream.exhausted:
        dyn = stream.take()
        address = dyn.address
        index = static_index.get(address)
        if index is None:
            index = len(statics)
            static_index[address] = index
            statics.append(dyn.instr)
        records.append((index, dyn.taken, dyn.next_address, dyn.mem_addr))
    if not records:
        raise WorkloadError("cannot capture an empty stream")

    # ---- dynamic arrays ------------------------------------------------------
    d_index = np.array([r[0] for r in records], dtype=np.uint32)
    d_taken = np.array([r[1] for r in records], dtype=np.bool_)
    d_next = np.array([r[2] for r in records], dtype=np.uint64)
    d_mem = np.array(
        [r[3] if r[3] is not None else int(_NO_MEM) for r in records],
        dtype=np.uint64,
    )

    np.savez_compressed(
        path,
        version=np.array([FORMAT_VERSION]),
        **_static_arrays(statics),
        d_index=d_index, d_taken=d_taken, d_next=d_next, d_mem=d_mem,
    )
    return len(records)


class TraceFile:
    """A loaded execution trace, replayable as an instruction stream."""

    def __init__(self, instructions: list[MacroInstruction],
                 records: "np.ndarray", taken: "np.ndarray",
                 next_addresses: "np.ndarray", mem: "np.ndarray"):
        self.instructions = instructions
        self._index = records
        self._taken = taken
        self._next = next_addresses
        self._mem = mem

    # -- construction ---------------------------------------------------------

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TraceFile":
        """Load a trace file written by :func:`capture_trace`."""
        with np.load(path) as data:
            version = int(data["version"][0])
            if version != FORMAT_VERSION:
                raise WorkloadError(
                    f"trace file {path}: format version {version} unsupported"
                )
            instructions = _decode_statics(data)
            return cls(
                instructions,
                data["d_index"].copy(),
                data["d_taken"].copy(),
                data["d_next"].copy(),
                data["d_mem"].copy(),
            )

    # -- replay ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def _iterate(self):
        instructions = self.instructions
        no_mem = int(_NO_MEM)
        for i in range(len(self._index)):
            mem = int(self._mem[i])
            yield DynamicInstruction(
                instructions[int(self._index[i])],
                taken=bool(self._taken[i]),
                next_address=int(self._next[i]),
                mem_addr=None if mem == no_mem else mem,
            )

    def stream(self, limit: int | None = None) -> InstructionStream:
        """Replay the trace as an :class:`InstructionStream`."""
        n = len(self)
        if limit is None or limit > n:
            limit = n
        return InstructionStream(self._iterate(), limit)

    def touched_data_ranges(self, line_bytes: int = 64) -> list[tuple[int, int]]:
        """Line-granular data ranges touched by the trace (for prewarming)."""
        valid = self._mem[self._mem != _NO_MEM]
        if valid.size == 0:
            return []
        lines = np.unique(valid // line_bytes)
        return [(int(line) * line_bytes, line_bytes) for line in lines]

    def code_addresses(self) -> list[int]:
        """All static instruction addresses (for prewarming the L1I)."""
        return [instr.address for instr in self.instructions]


# -- compiled trace artifacts --------------------------------------------------


#: Dynamic-record row layout of an artifact's ``dyn.npy`` (one row per
#: dynamic instruction; ``mem`` uses :data:`_NO_MEM` for "no access").
_DYN_DTYPE = np.dtype([
    ("index", np.uint32),
    ("taken", np.bool_),
    ("next", np.uint64),
    ("mem", np.uint64),
])

#: Instructions pulled per bulk step while compiling an artifact.
_COMPILE_BATCH = 4096

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_artifact_root() -> pathlib.Path:
    """The artifact cache directory: ``<result-store root>/artifacts``."""
    env = os.environ.get(_ENV_CACHE_DIR, "").strip()
    base = pathlib.Path(env) if env else pathlib.Path.home() / ".cache" / "repro"
    return base / "artifacts"


def artifact_key(app_name: str, seed: int, length: int) -> str:
    """Content key of one compiled stream in the artifact cache.

    Covers everything the generated stream is a function of — the
    application, its generator seed and the run length — plus the artifact
    format version, so a format change can never serve stale bytes.
    """
    material = "|".join((
        f"schema={ARTIFACT_SCHEMA_VERSION}",
        f"app={app_name}",
        f"seed={seed}",
        f"length={length}",
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ArtifactReplayWalker:
    """Replay an artifact's dynamic record through the walker interface.

    Implements the same bulk surface as
    :class:`~repro.workloads.stream.StreamWalker` — ``next_batch``,
    ``skip`` and ``warm_skip`` — so an
    :class:`~repro.workloads.stream.InstructionStream` over it behaves
    bit-identically to one over the generating walker, in both the
    full-detail and the sampled regime.  There is no RNG and no call stack
    to evolve: every outcome is already recorded, so ``skip`` is a cursor
    move and ``warm_skip`` replays only the warming side effects (icache
    probe per new line, predictor training per dynamic CTI, dcache touch
    per memory access — the exact effect order of
    :meth:`~repro.workloads.stream.StreamWalker.warm_skip`).
    """

    __slots__ = (
        "_artifact", "_instructions", "_index", "_taken", "_next", "_mem",
        "_addresses", "_trainable", "_raw", "_dyn_cti",
        "_pos", "_total", "executed",
    )

    #: Sentinel in the ``mem`` column for rows without a memory access,
    #: exported for consumers of the raw column surface.
    no_mem = int(_NO_MEM)

    def __init__(self, artifact: "TraceArtifact"):
        self._artifact = artifact
        self._instructions = artifact.instructions
        self._index, self._taken, self._next, self._mem = artifact._columns()
        self._addresses, self._trainable = artifact._warm_tables()
        self._raw = artifact._dyn
        self._dyn_cti = None
        self._pos = 0
        self._total = len(artifact)
        self.executed = 0

    def __iter__(self):
        return self

    def __next__(self) -> DynamicInstruction:
        i = self._pos
        if i >= self._total:
            raise StopIteration
        mem = self._mem[i]
        dyn = DynamicInstruction(
            self._instructions[self._index[i]],
            self._taken[i],
            self._next[i],
            None if mem == int(_NO_MEM) else mem,
        )
        self._pos = i + 1
        self.executed += 1
        return dyn

    def next_batch(self, count: int) -> list[DynamicInstruction]:
        """Decode ``count`` recorded instructions in one call, in order.

        Iterates C-level ``zip`` over column slices rather than indexing
        four lists per row — measurably faster on the bulk-replay path.
        """
        i = self._pos
        end = min(i + count, self._total)
        if end <= i:
            return []
        instructions = self._instructions
        no_mem = int(_NO_MEM)
        dyn_instr = DynamicInstruction
        out = [
            dyn_instr(instructions[s], t, n, None if m == no_mem else m)
            for s, t, n, m in zip(
                self._index[i:end],
                self._taken[i:end],
                self._next[i:end],
                self._mem[i:end],
            )
        ]
        self._pos = end
        self.executed += len(out)
        return out

    def raw_batch(self, count: int):
        """Consume up to ``count`` rows as raw column slices.

        Returns ``(lo, index, taken, next, mem)`` — the global row number
        of the first consumed row plus plain-list column slices — without
        decoding any :class:`DynamicInstruction`.  The columnar-warmup
        fast path pairs this with :meth:`select_tables` and
        :meth:`materialize`.
        """
        i = self._pos
        end = min(i + count, self._total)
        self._pos = end
        self.executed += end - i
        return (
            i,
            self._index[i:end],
            self._taken[i:end],
            self._next[i:end],
            self._mem[i:end],
        )

    def materialize(self, lo: int, hi: int) -> list[DynamicInstruction]:
        """Decode recorded rows ``[lo, hi)`` independently of the cursor."""
        instructions = self._instructions
        no_mem = int(_NO_MEM)
        dyn_instr = DynamicInstruction
        return [
            dyn_instr(instructions[s], t, n, None if m == no_mem else m)
            for s, t, n, m in zip(
                self._index[lo:hi],
                self._taken[lo:hi],
                self._next[lo:hi],
                self._mem[lo:hi],
            )
        ]

    def select_tables(self):
        """Static per-instruction tables for columnar selection.

        Returns ``(instructions, addresses, flow_codes, uop_counts)``,
        indexed by the static-table index carried in the ``index``
        column.  Shared with the owning artifact, so the decode cost is
        paid once per loaded artifact, not per walker.
        """
        addresses, _ = self._artifact._warm_tables()
        flow, uops = self._artifact._select_tables()
        return self._instructions, addresses, flow, uops

    def scan_tables(self):
        """Whole-record scan tables for boundary-jumping selection.

        See :meth:`TraceArtifact._scan_tables`; shared per artifact, so
        the vectorized pass is paid once and every warmup window of every
        run over the same artifact reuses it.
        """
        return self._artifact._scan_tables()

    def skip(self, count: int, profile: dict | None = None) -> int:
        """Advance the cursor; no state to evolve, so this is O(1).

        With ``profile``, the skipped rows are additionally scanned as
        numpy columns and the resolved successors of dynamic CTIs
        (:data:`~repro.workloads.stream._DYN_CTI_FLOWS`) accumulate into
        the mapping — count-identical to a profiled
        :meth:`~repro.workloads.stream.StreamWalker.skip` over the same
        window, which the sampled store keys rely on (they do not encode
        whether a run replayed an artifact).
        """
        i = self._pos
        n = min(count, self._total - i)
        end = i + n
        if profile is not None and n:
            dyn_cti = self._dyn_cti
            if dyn_cti is None:
                dyn_cti = np.array(
                    [instr.flow_code in _DYN_CTI_FLOWS
                     for instr in self._instructions],
                    dtype=np.bool_,
                )
                self._dyn_cti = dyn_cti
            rows = self._raw[i:end]
            targets = rows["next"][dyn_cti[rows["index"]]]
            if targets.size:
                values, counts = np.unique(targets, return_counts=True)
                get = profile.get
                for value, c in zip(values.tolist(), counts.tolist()):
                    profile[value] = get(value, 0) + c
        self._pos = end
        self.executed += n
        return n

    def warm_skip(self, count: int, fetch, touch, train,
                  line_shift: int = 6) -> int:
        """Cursor-advance ``count`` records, replaying warming effects.

        Matches the generating walker's per-instruction effect order —
        icache ``fetch`` on a new line, predictor ``train`` for dynamic
        CTIs (software interrupts fall through untrained, exactly like the
        walker's remapped plans), then dcache ``touch`` — with the
        last-probed line reset per call.
        """
        i = self._pos
        end = min(i + count, self._total)
        if end <= i:
            return 0
        self._replay_warm(i, end, fetch, touch, train, line_shift, -1,
                          trainable_gate=True, touch_last=True)
        self._pos = end
        self.executed += end - i
        return end - i

    def warm_effects(self, lo: int, hi: int, fetch, touch, train,
                     line_shift: int, last_line: int = -1) -> int:
        """Replay the trace-warmup window's warming effects for rows
        ``[lo, hi)`` independently of the cursor.

        The columnar-warmup counterpart of the per-instruction loop in
        :meth:`~repro.sampling.warmup.WarmupPolicy.warm`: icache ``fetch``
        on a new line, dcache ``touch`` per access, then ``train`` for
        every CTI (``is_cti`` gate, not the skip path's ``trainable``).
        ``last_line`` carries the last-probed icache line across batches
        of one window; the updated value is returned.
        """
        return self._replay_warm(lo, hi, fetch, touch, train, line_shift,
                                 last_line, trainable_gate=False,
                                 touch_last=False)

    def _replay_warm(self, i: int, end: int, fetch, touch, train,
                     line_shift: int, last_line: int, *,
                     trainable_gate: bool, touch_last: bool) -> int:
        """Replay warming side effects for rows ``[i, end)``, compressed.

        The per-row scan is vectorized: one numpy pass computes which
        rows fire any warming effect (new icache line, trainable CTI,
        memory access) and the Python loop then visits only those rows —
        typically around half the window.  Within a row the effect order
        is exact: ``fetch``, then ``train``/``touch`` in the order the
        mirrored reference loop uses (``touch_last`` selects the skip
        path's fetch-train-touch or the warmup window's
        fetch-touch-train).  Returns the line of the last scanned row.
        """
        n = end - i
        if n <= 0:
            return last_line
        raw = self._raw[i:end]
        idx = raw["index"]
        addr_np, trainable_np, cti_np = self._artifact._warm_np_tables()
        lines = addr_np[idx] >> line_shift
        newline = np.empty(n, dtype=np.bool_)
        newline[0] = last_line < 0 or int(lines[0]) != last_line
        np.not_equal(lines[1:], lines[:-1], out=newline[1:])
        train_mask = (trainable_np if trainable_gate else cti_np)[idx]
        mem_mask = raw["mem"] != _NO_MEM
        events = np.flatnonzero(newline | train_mask | mem_mask)
        index = self._index
        taken = self._taken
        nxt = self._next
        mem = self._mem
        instructions = self._instructions
        addresses = self._addresses
        if touch_last:
            for j, new, tr, mm in zip(
                events.tolist(),
                newline[events].tolist(),
                train_mask[events].tolist(),
                mem_mask[events].tolist(),
            ):
                g = i + j
                if new:
                    fetch(addresses[index[g]])
                if tr:
                    train(instructions[index[g]], taken[g], nxt[g])
                if mm:
                    touch(mem[g])
        else:
            for j, new, tr, mm in zip(
                events.tolist(),
                newline[events].tolist(),
                train_mask[events].tolist(),
                mem_mask[events].tolist(),
            ):
                g = i + j
                if new:
                    fetch(addresses[index[g]])
                if mm:
                    touch(mem[g])
                if tr:
                    train(instructions[index[g]], taken[g], nxt[g])
        return int(lines[-1])


class TraceArtifact:
    """A loaded compiled trace artifact: static image + mmap'd dyn record.

    The static instruction table and the program prewarm image are decoded
    eagerly (they are tiny); the dynamic record stays a memory-mapped
    structured array until first replay, when its columns are decoded once
    and cached for every subsequent stream over the same artifact.
    """

    __slots__ = (
        "path", "app_name", "suite", "seed", "length",
        "instructions", "prewarm_code", "prewarm_data",
        "_dyn", "_cols", "_warm", "_select", "_warm_np", "_scan",
        "_segments",
    )

    def __init__(self, path, *, app_name, suite, seed, length,
                 instructions, prewarm_code, prewarm_data, dyn):
        self.path = path
        self.app_name = app_name
        self.suite = suite
        self.seed = seed
        self.length = length
        self.instructions = instructions
        self.prewarm_code = prewarm_code
        self.prewarm_data = prewarm_data
        self._dyn = dyn
        self._cols = None
        self._warm = None
        self._select = None
        self._warm_np = None
        self._scan = None
        self._segments = None

    @classmethod
    def load(cls, directory: str | pathlib.Path) -> "TraceArtifact":
        """Load one artifact directory written by :func:`compile_artifact`.

        Raises :class:`~repro.errors.WorkloadError` on a schema mismatch
        or a record-count mismatch (a torn or foreign directory); plain
        ``OSError``/``ValueError`` propagate for missing or undecodable
        files, so callers can treat any failure as a cache miss.
        """
        directory = pathlib.Path(directory)
        meta = json.loads((directory / "meta.json").read_text())
        if meta.get("schema") != ARTIFACT_SCHEMA_VERSION:
            raise WorkloadError(
                f"artifact {directory}: schema {meta.get('schema')} "
                f"unsupported (expected {ARTIFACT_SCHEMA_VERSION})"
            )
        with np.load(directory / "static.npz") as data:
            instructions = _decode_statics(data)
            prewarm_code = data["pw_code"].tolist()
            prewarm_data = list(
                zip(data["pw_base"].tolist(), data["pw_extent"].tolist())
            )
        dyn = np.load(directory / "dyn.npy", mmap_mode="r")
        if dyn.dtype != _DYN_DTYPE or len(dyn) != meta["length"]:
            raise WorkloadError(
                f"artifact {directory}: dynamic record does not match its "
                f"metadata ({len(dyn)} rows, {meta['length']} expected)"
            )
        return cls(
            directory,
            app_name=meta["app"], suite=meta["suite"],
            seed=meta["seed"], length=meta["length"],
            instructions=instructions,
            prewarm_code=prewarm_code, prewarm_data=prewarm_data,
            dyn=dyn,
        )

    def __len__(self) -> int:
        return self.length

    def _columns(self) -> tuple[list, list, list, list]:
        """Dynamic-record columns as plain-int lists (decoded once)."""
        if self._cols is None:
            dyn = self._dyn
            self._cols = (
                dyn["index"].tolist(),
                dyn["taken"].tolist(),
                dyn["next"].tolist(),
                dyn["mem"].tolist(),
            )
        return self._cols

    def _warm_tables(self) -> tuple[list[int], list[bool]]:
        """Per-static address and is-dynamic-CTI tables for warm replay.

        ``trainable`` mirrors the generating walker's plan compilation:
        flow codes 1-5 train the branch predictor, software interrupts
        (flow code 6) are remapped to plain fall-through and never train.
        """
        if self._warm is None:
            self._warm = (
                [instr.address for instr in self.instructions],
                [1 <= instr.flow_code <= 5 for instr in self.instructions],
            )
        return self._warm

    def _select_tables(self) -> tuple[list[int], list[int]]:
        """Per-static flow-code and uop-count tables (columnar selection)."""
        if self._select is None:
            self._select = (
                [instr.flow_code for instr in self.instructions],
                [instr.num_uops for instr in self.instructions],
            )
        return self._select

    def _warm_np_tables(self):
        """Per-static numpy tables for vectorized warm replay.

        ``(addresses, trainable, cti)`` indexed by static-table index:
        the address vector feeds the icache-line scan, ``trainable``
        gates :meth:`ArtifactReplayWalker.warm_skip` training (flow
        codes 1-5) and ``cti`` gates the trace-warmup window's training
        (every CTI class, mirroring ``MacroInstruction.is_cti``).
        """
        if self._warm_np is None:
            addresses, trainable = self._warm_tables()
            flow, _ = self._select_tables()
            self._warm_np = (
                np.array(addresses, dtype=np.uint64),
                np.array(trainable, dtype=np.bool_),
                np.array([code != 0 for code in flow], dtype=np.bool_),
            )
        return self._warm_np

    def _scan_tables(self):
        """Whole-record selection-scan tables (boundary-jumping warmup).

        ``(cum_uops, ctrl_rows, ctrl_kinds, cond_rows, cond_taken)``:
        the cumulative uop count per row (capacity boundaries fall out of
        one ``searchsorted``), the rows whose flow can close a base or
        move the call-context counter — calls (kind 0), returns (1),
        backward-taken branches and backward direct jumps (2), indirect
        jumps (3) and software interrupts (4) — and the conditional-branch
        rows with their taken flags (the direction-string bits).  All of
        it is a pure function of the recorded stream, computed vectorized
        once per loaded artifact and shared by every scan over it.
        """
        if self._scan is None:
            addresses, _ = self._warm_tables()
            flow, uops = self._select_tables()
            dyn = self._dyn
            idx = dyn["index"]
            code = np.asarray(flow, dtype=np.int8)[idx]
            taken = dyn["taken"]
            backward = dyn["next"] <= np.asarray(
                addresses, dtype=np.uint64
            )[idx]
            is_cond = code == FLOW_COND_BRANCH
            kind = np.full(len(dyn), -1, dtype=np.int8)
            kind[code == FLOW_CALL] = 0
            kind[code == FLOW_RETURN] = 1
            kind[(is_cond & taken & backward)
                 | ((code == FLOW_DIRECT_JUMP) & backward)] = 2
            kind[code == FLOW_INDIRECT_JUMP] = 3
            kind[code == FLOW_SOFTWARE_INT] = 4
            ctrl = np.flatnonzero(kind >= 0)
            cond = np.flatnonzero(is_cond)
            self._scan = (
                np.cumsum(np.asarray(uops, dtype=np.int64)[idx]).tolist(),
                ctrl.tolist(),
                kind[ctrl].tolist(),
                cond.tolist(),
                taken[cond].tolist(),
            )
        return self._scan

    def walker(self) -> ArtifactReplayWalker:
        """A fresh replay walker positioned at the first record."""
        return ArtifactReplayWalker(self)

    def stream(self, limit: int | None = None) -> InstructionStream:
        """Replay the artifact as an :class:`InstructionStream`."""
        return InstructionStream.from_artifact(self, limit)

    def segments(self) -> list:
        """The full record pre-partitioned into trace-shaped segments.

        Segmentation depends only on the recorded stream (never on the
        simulated machine), so the partition is computed once per loaded
        artifact and shared by every simulator replaying it — the
        cross-model amortization the engine's worker memos rely on.  The
        returned list's *identity* doubles as the segment-list fingerprint
        for :class:`~repro.core.simulator.ColdPlanCache`.  Callers must
        not mutate it.
        """
        if self._segments is None:
            from repro.core.simulator import segment_stream

            self._segments = list(segment_stream(self.stream()))
        return self._segments


def compile_artifact(
    app,
    seed: int,
    length: int,
    *,
    root: str | pathlib.Path | None = None,
) -> TraceArtifact:
    """Walk ``app``'s stream once and persist it as a compiled artifact.

    ``app`` is an :class:`~repro.workloads.suite.Application` (or anything
    with ``name``/``suite``/``build()``); ``seed`` is its generator seed —
    part of the content key, so a seed change keys to a fresh artifact.
    The write is atomic (temp directory + ``os.replace``), and a
    concurrent compiler racing on the same key simply loses the rename and
    loads the winner's bytes.  Returns the loaded artifact.
    """
    root = pathlib.Path(root) if root is not None else default_artifact_root()
    key = artifact_key(app.name, seed, length)
    final = root / key[:2] / key
    if (final / "meta.json").exists():
        return TraceArtifact.load(final)

    workload = app.build()
    program = workload.program
    stream = workload.stream(length)
    static_index: dict[int, int] = {}
    statics: list[MacroInstruction] = []
    dyn = np.empty(length, dtype=_DYN_DTYPE)
    no_mem = int(_NO_MEM)
    row = 0
    while True:
        batch = stream.take_batch(_COMPILE_BATCH)
        if not batch:
            break
        for record in batch:
            instr = record.instr
            address = instr.address
            index = static_index.get(address)
            if index is None:
                index = len(statics)
                static_index[address] = index
                statics.append(instr)
            mem = record.mem_addr
            dyn[row] = (index, record.taken, record.next_address,
                        no_mem if mem is None else mem)
            row += 1
    if row != length:
        raise WorkloadError(
            f"artifact compile of {app.name}: stream ended after {row} of "
            f"{length} instructions"
        )

    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.with_name(f"{key}.tmp.{os.getpid()}")
    shutil.rmtree(tmp, ignore_errors=True)
    tmp.mkdir()
    try:
        np.savez_compressed(
            tmp / "static.npz",
            **_static_arrays(statics),
            pw_code=np.array(
                list(program.instructions.keys()), dtype=np.uint64
            ),
            pw_base=np.array(
                [spec.base for spec in program.mem_specs.values()],
                dtype=np.uint64,
            ),
            pw_extent=np.array(
                [spec.extent for spec in program.mem_specs.values()],
                dtype=np.uint64,
            ),
        )
        np.save(tmp / "dyn.npy", dyn)
        (tmp / "meta.json").write_text(json.dumps(
            {
                "schema": ARTIFACT_SCHEMA_VERSION,
                "app": app.name,
                "suite": app.suite,
                "seed": seed,
                "length": length,
                "statics": len(statics),
                "key": key,
            },
            sort_keys=True,
        ))
        os.replace(tmp, final)
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        if not (final / "meta.json").exists():
            raise
    return TraceArtifact.load(final)


@dataclass(frozen=True, slots=True)
class ArtifactInfo:
    """A snapshot of the artifact cache's contents.

    ``stale_tmp`` counts orphaned ``.tmp.<pid>`` directories from crashed
    compilers that the snapshot swept away.
    """

    path: pathlib.Path
    entries: int
    total_bytes: int
    schema_version: int = ARTIFACT_SCHEMA_VERSION
    stale_tmp: int = 0


class ArtifactCache:
    """Content-keyed persistent cache of compiled trace artifacts.

    One directory per (app, seed, length) stream, sharded like the result
    store (``<root>/<key[:2]>/<key>/``).  ``hits`` counts artifacts served
    from disk, ``compiles`` counts fresh stream walks.
    """

    def __init__(self, root: str | pathlib.Path | None = None):
        self.root = (
            pathlib.Path(root) if root is not None else default_artifact_root()
        )
        self.hits = 0
        self.compiles = 0

    def _dir(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / key

    def load(self, app_name: str, seed: int, length: int) -> TraceArtifact | None:
        """The cached artifact for one stream, or ``None`` on any miss."""
        try:
            artifact = TraceArtifact.load(
                self._dir(artifact_key(app_name, seed, length))
            )
        except (OSError, ValueError, KeyError, WorkloadError):
            return None
        self.hits += 1
        return artifact

    def get_or_compile(self, app, length: int) -> TraceArtifact:
        """The artifact for ``app`` at ``length``, compiling on a miss."""
        cached = self.load(app.name, app.seed, length)
        if cached is not None:
            return cached
        artifact = compile_artifact(app, app.seed, length, root=self.root)
        self.compiles += 1
        return artifact

    def _entries(self) -> list[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.glob("*/*")
            if (path / "meta.json").is_file()
        )

    def _sweep_stale_tmp(self) -> int:
        """Remove ``.tmp.<pid>`` directories orphaned by crashed compilers."""
        swept = 0
        if not self.root.is_dir():
            return swept
        for tmp in self.root.glob("*/*.tmp.*"):
            shutil.rmtree(tmp, ignore_errors=True)
            if not tmp.exists():
                swept += 1
        return swept

    def info(self) -> ArtifactInfo:
        """Artifact count and on-disk footprint; sweeps stale temp dirs."""
        stale = self._sweep_stale_tmp()
        entries = self._entries()
        total = 0
        for entry in entries:
            for part in entry.iterdir():
                try:
                    total += part.stat().st_size
                except OSError:
                    pass
        return ArtifactInfo(path=self.root, entries=len(entries),
                            total_bytes=total, stale_tmp=stale)

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        self._sweep_stale_tmp()
        removed = 0
        for entry in self._entries():
            shutil.rmtree(entry, ignore_errors=True)
            if not entry.exists():
                removed += 1
        for shard in self.root.glob("*") if self.root.is_dir() else ():
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed
