"""Statistical workload profiles for the five benchmark suites.

The paper evaluates 44 proprietary application traces drawn from SPEC-INT
2000, SPEC-FP 2000, SysMark-2000 office applications, multimedia codes and
DotNet runs.  We cannot redistribute those traces; instead each suite is
characterised by a :class:`WorkloadProfile` whose knobs control exactly the
stream properties PARROT's results depend on:

* hot/cold skew (few hot loop kernels vs. many rarely-touched cold kernels),
* basic-block size and branch predictability (regular FP vs. irregular INT),
* loop trip counts (trace reuse and coverage),
* instruction mix (FP vs. integer vs. memory; CISC multi-uop forms),
* optimizer-relevant idiom densities (constants, dead writes, fusable and
  SIMD-pairable operations),
* memory working-set size and access pattern (stride vs. random).

Per-application variation is applied on top of the suite profile by
:mod:`repro.workloads.suite`.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

SUITE_SPECINT = "SpecInt"
SUITE_SPECFP = "SpecFP"
SUITE_OFFICE = "Office"
SUITE_MULTIMEDIA = "Multimedia"
SUITE_DOTNET = "DotNet"

ALL_SUITES = (
    SUITE_SPECINT,
    SUITE_SPECFP,
    SUITE_OFFICE,
    SUITE_MULTIMEDIA,
    SUITE_DOTNET,
)


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Complete statistical description of one synthetic application."""

    name: str
    suite: str

    # -- program structure ------------------------------------------------
    n_hot_kernels: int          #: number of hot loop kernels
    n_cold_kernels: int         #: number of rarely-executed kernels
    hot_body_range: tuple[int, int]   #: straight-line instrs per hot loop body
    hot_trip_range: tuple[int, int]   #: loop trip counts of hot loops
    nested_loop_prob: float     #: probability a hot kernel nests an inner loop
    diamonds_per_body: tuple[int, int]  #: if/else diamonds per hot body
    irregular_branch_frac: float  #: fraction of diamonds that are data-dependent
    diamond_bias: float         #: taken probability of regular (biased) diamonds
    n_switch_kernels: int       #: kernels built around indirect jumps
    switch_fanout: tuple[int, int]  #: indirect-jump target counts
    call_depth: int             #: depth of the call tree inside kernels
    p_cold: float               #: per outer iteration, prob. of a cold excursion
    cold_body_range: tuple[int, int]  #: instrs per cold kernel

    # -- instruction mix ----------------------------------------------------
    frac_fp: float              #: FP-arithmetic share of body instructions
    frac_mem: float             #: memory-access share of body instructions
    frac_store: float           #: store share of memory accesses
    frac_mul: float             #: integer multiply share
    frac_complex: float         #: CISC multi-uop memory forms share of mem ops

    # -- optimizer-relevant idiom densities --------------------------------
    const_density: float        #: immediate-producer density (const-prop food)
    dead_write_density: float   #: overwritten-before-read writes (DCE food)
    pairable_density: float     #: adjacent independent same-kind ops (SIMD food)
    fusable_density: float      #: dependent ALU pairs (fusion food)

    # -- memory behaviour ---------------------------------------------------
    hot_ws_bytes: int           #: hot-kernel data working set
    cold_ws_bytes: int          #: cold-code data working set
    stride_frac: float          #: fraction of memory sites with stride patterns
    mem_stride: int             #: stride in bytes for streaming sites
    #: Fraction of hot loops whose trip count is a fixed compile-time bound
    #: (regular FP/media kernels) rather than redrawn per entry.
    loop_regularity: float = 0.5

    def derive(self, **overrides) -> "WorkloadProfile":
        """Return a copy with selected fields replaced."""
        return dataclasses.replace(self, **overrides)

    def validate(self) -> None:
        """Sanity-check ranges; raises ``ValueError`` on nonsense values."""
        for frac_name in (
            "nested_loop_prob",
            "irregular_branch_frac",
            "diamond_bias",
            "p_cold",
            "frac_fp",
            "frac_mem",
            "frac_store",
            "frac_mul",
            "frac_complex",
            "const_density",
            "dead_write_density",
            "pairable_density",
            "fusable_density",
            "stride_frac",
            "loop_regularity",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {frac_name}={value} outside [0, 1]")
        if self.n_hot_kernels < 1:
            raise ValueError(f"{self.name}: needs at least one hot kernel")
        for range_name in ("hot_body_range", "hot_trip_range", "diamonds_per_body",
                           "switch_fanout", "cold_body_range"):
            lo, hi = getattr(self, range_name)
            if lo > hi or lo < 0:
                raise ValueError(f"{self.name}: bad range {range_name}=({lo}, {hi})")


def specint_profile(name: str = "specint") -> WorkloadProfile:
    """Irregular integer codes: short trips, branchy bodies, random memory."""
    return WorkloadProfile(
        name=name,
        suite=SUITE_SPECINT,
        n_hot_kernels=6,
        n_cold_kernels=24,
        hot_body_range=(6, 16),
        hot_trip_range=(6, 32),
        nested_loop_prob=0.35,
        diamonds_per_body=(1, 3),
        irregular_branch_frac=0.06,
        diamond_bias=0.96,
        n_switch_kernels=2,
        switch_fanout=(4, 10),
        call_depth=2,
        p_cold=0.08,
        cold_body_range=(8, 30),
        frac_fp=0.0,
        frac_mem=0.30,
        frac_store=0.35,
        frac_mul=0.03,
        frac_complex=0.45,
        const_density=0.16,
        dead_write_density=0.13,
        pairable_density=0.12,
        fusable_density=0.32,
        hot_ws_bytes=24 * 1024,
        cold_ws_bytes=160 * 1024,
        stride_frac=0.25,
        mem_stride=8,
        loop_regularity=0.3,
    )


def specfp_profile(name: str = "specfp") -> WorkloadProfile:
    """Regular FP codes: long trips, big straight bodies, streaming memory."""
    return WorkloadProfile(
        name=name,
        suite=SUITE_SPECFP,
        n_hot_kernels=3,
        n_cold_kernels=10,
        hot_body_range=(12, 28),
        hot_trip_range=(64, 512),
        nested_loop_prob=0.5,
        diamonds_per_body=(0, 1),
        irregular_branch_frac=0.04,
        diamond_bias=0.97,
        n_switch_kernels=0,
        switch_fanout=(2, 4),
        call_depth=1,
        p_cold=0.02,
        cold_body_range=(10, 24),
        frac_fp=0.42,
        frac_mem=0.34,
        frac_store=0.30,
        frac_mul=0.02,
        frac_complex=0.30,
        const_density=0.10,
        dead_write_density=0.08,
        pairable_density=0.38,
        fusable_density=0.22,
        hot_ws_bytes=128 * 1024,
        cold_ws_bytes=96 * 1024,
        stride_frac=0.90,
        mem_stride=8,
        loop_regularity=0.95,
    )


def office_profile(name: str = "office") -> WorkloadProfile:
    """Office/Windows codes: large cold footprint, moderate irregularity."""
    return WorkloadProfile(
        name=name,
        suite=SUITE_OFFICE,
        n_hot_kernels=5,
        n_cold_kernels=32,
        hot_body_range=(6, 14),
        hot_trip_range=(8, 48),
        nested_loop_prob=0.25,
        diamonds_per_body=(1, 2),
        irregular_branch_frac=0.06,
        diamond_bias=0.96,
        n_switch_kernels=2,
        switch_fanout=(3, 8),
        call_depth=3,
        p_cold=0.05,
        cold_body_range=(10, 36),
        frac_fp=0.02,
        frac_mem=0.32,
        frac_store=0.38,
        frac_mul=0.02,
        frac_complex=0.40,
        const_density=0.17,
        dead_write_density=0.13,
        pairable_density=0.14,
        fusable_density=0.28,
        hot_ws_bytes=40 * 1024,
        cold_ws_bytes=320 * 1024,
        stride_frac=0.35,
        mem_stride=8,
        loop_regularity=0.5,
    )


def multimedia_profile(name: str = "multimedia") -> WorkloadProfile:
    """Media kernels: wide SIMD-friendly bodies, streaming data."""
    return WorkloadProfile(
        name=name,
        suite=SUITE_MULTIMEDIA,
        n_hot_kernels=4,
        n_cold_kernels=14,
        hot_body_range=(14, 32),
        hot_trip_range=(32, 256),
        nested_loop_prob=0.4,
        diamonds_per_body=(0, 1),
        irregular_branch_frac=0.05,
        diamond_bias=0.95,
        n_switch_kernels=1,
        switch_fanout=(3, 6),
        call_depth=2,
        p_cold=0.04,
        cold_body_range=(8, 24),
        frac_fp=0.22,
        frac_mem=0.34,
        frac_store=0.35,
        frac_mul=0.05,
        frac_complex=0.35,
        const_density=0.12,
        dead_write_density=0.08,
        pairable_density=0.46,
        fusable_density=0.26,
        hot_ws_bytes=96 * 1024,
        cold_ws_bytes=128 * 1024,
        stride_frac=0.80,
        mem_stride=8,
        loop_regularity=0.85,
    )


def dotnet_profile(name: str = "dotnet") -> WorkloadProfile:
    """Managed-runtime codes: virtual dispatch, moderate regularity."""
    return WorkloadProfile(
        name=name,
        suite=SUITE_DOTNET,
        n_hot_kernels=5,
        n_cold_kernels=18,
        hot_body_range=(8, 18),
        hot_trip_range=(16, 96),
        nested_loop_prob=0.3,
        diamonds_per_body=(1, 2),
        irregular_branch_frac=0.05,
        diamond_bias=0.95,
        n_switch_kernels=2,
        switch_fanout=(3, 8),
        call_depth=3,
        p_cold=0.05,
        cold_body_range=(8, 26),
        frac_fp=0.12,
        frac_mem=0.30,
        frac_store=0.34,
        frac_mul=0.03,
        frac_complex=0.35,
        const_density=0.16,
        dead_write_density=0.11,
        pairable_density=0.16,
        fusable_density=0.26,
        hot_ws_bytes=48 * 1024,
        cold_ws_bytes=192 * 1024,
        stride_frac=0.45,
        mem_stride=8,
        loop_regularity=0.6,
    )


_SUITE_FACTORIES = {
    SUITE_SPECINT: specint_profile,
    SUITE_SPECFP: specfp_profile,
    SUITE_OFFICE: office_profile,
    SUITE_MULTIMEDIA: multimedia_profile,
    SUITE_DOTNET: dotnet_profile,
}


def suite_profile(suite: str, name: str = "") -> WorkloadProfile:
    """Return the base profile of ``suite`` (optionally renamed)."""
    try:
        factory = _SUITE_FACTORIES[suite]
    except KeyError as exc:
        raise ValueError(f"unknown suite {suite!r}; known: {ALL_SUITES}") from exc
    return factory(name or suite.lower())


def jitter_profile(base: WorkloadProfile, seed: int) -> WorkloadProfile:
    """Apply bounded per-application variation on top of a suite profile.

    Structural counts vary by ±1-2, continuous knobs by ±15%, so apps within
    a suite stay recognisably similar while producing distinct programs.
    """
    rng = random.Random(seed)

    def scale(value: float, lo: float = 0.0, hi: float = 1.0) -> float:
        return min(hi, max(lo, value * rng.uniform(0.85, 1.15)))

    def iscale(value: int, minimum: int = 1) -> int:
        return max(minimum, round(value * rng.uniform(0.8, 1.2)))

    trip_lo, trip_hi = base.hot_trip_range
    body_lo, body_hi = base.hot_body_range
    profile = base.derive(
        n_hot_kernels=iscale(base.n_hot_kernels),
        n_cold_kernels=iscale(base.n_cold_kernels, minimum=2),
        hot_body_range=(iscale(body_lo, 3), iscale(body_hi, 6)),
        hot_trip_range=(iscale(trip_lo, 2), iscale(trip_hi, 4)),
        nested_loop_prob=scale(base.nested_loop_prob),
        irregular_branch_frac=scale(base.irregular_branch_frac),
        diamond_bias=scale(base.diamond_bias, 0.5, 0.98),
        p_cold=scale(base.p_cold, 0.0, 0.5),
        frac_fp=scale(base.frac_fp),
        frac_mem=scale(base.frac_mem, 0.05, 0.6),
        const_density=scale(base.const_density),
        dead_write_density=scale(base.dead_write_density),
        pairable_density=scale(base.pairable_density),
        fusable_density=scale(base.fusable_density),
        hot_ws_bytes=iscale(base.hot_ws_bytes, 4096),
        stride_frac=scale(base.stride_frac),
    )
    # Repair ranges the independent scaling may have inverted.
    b_lo, b_hi = profile.hot_body_range
    t_lo, t_hi = profile.hot_trip_range
    profile = profile.derive(
        hot_body_range=(min(b_lo, b_hi), max(b_lo, b_hi)),
        hot_trip_range=(min(t_lo, t_hi), max(t_lo, t_hi)),
    )
    profile.validate()
    return profile
