"""Static program images and the :class:`ProgramBuilder` assembler.

A :class:`Program` is the synthetic equivalent of a compiled IA32 binary:
a map from addresses to variable-length macro-instructions, plus the
declarative behaviour specs (branch directions, indirect-jump target
distributions, memory-access patterns) that the stream walker interprets to
produce a dynamic execution.  Programs are built through
:class:`ProgramBuilder`, a tiny assembler with labels, forward references
and a data-region allocator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.isa.decoder import decode_template
from repro.isa.encoding import encoded_length
from repro.isa.instruction import MacroInstruction
from repro.isa.opcodes import InstrClass
from repro.isa.registers import REG_NONE
from repro.workloads.behaviors import BranchSpec, MemSpec, SwitchSpec

#: Base address of the code segment (mirrors a typical text-segment base).
CODE_BASE = 0x0040_0000
#: Base address of the data segment.
DATA_BASE = 0x1000_0000


class Label:
    """A forward-referenceable code location."""

    __slots__ = ("name", "address")

    def __init__(self, name: str):
        self.name = name
        self.address: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = f"{self.address:#x}" if self.address is not None else "unbound"
        return f"Label({self.name}, {bound})"


@dataclass(slots=True)
class _PendingInstr:
    """An instruction recorded during building, finalised in :meth:`finish`."""

    address: int
    length: int
    iclass: InstrClass
    dest: int
    src1: int
    src2: int
    imm: int | None
    fp_mul: bool
    target: Label | None


@dataclass(slots=True)
class Program:
    """A finished static program image plus its dynamic behaviour specs."""

    name: str
    entry: int
    instructions: dict[int, MacroInstruction]
    branch_specs: dict[int, BranchSpec]
    switch_specs: dict[int, SwitchSpec]
    switch_targets: dict[int, tuple[int, ...]]
    mem_specs: dict[int, MemSpec]
    code_bytes: int = 0

    @property
    def num_static_instructions(self) -> int:
        """Static instruction count of the image."""
        return len(self.instructions)

    def instruction_at(self, address: int) -> MacroInstruction:
        """Look up the instruction at ``address`` or raise ``WorkloadError``."""
        try:
            return self.instructions[address]
        except KeyError as exc:
            raise WorkloadError(
                f"{self.name}: no instruction at {address:#x}"
            ) from exc

    def validate(self) -> None:
        """Check structural invariants of the image; raise on violation.

        Verifies that every CTI with a static target points at a real
        instruction, that conditional branches carry behaviour specs, and
        that every switch has at least one target.
        """
        for addr, instr in self.instructions.items():
            if addr != instr.address:
                raise WorkloadError(f"{self.name}: keyed at {addr:#x} != {instr.address:#x}")
            if instr.iclass is InstrClass.COND_BRANCH and addr not in self.branch_specs:
                raise WorkloadError(f"{self.name}: branch at {addr:#x} has no spec")
            if instr.taken_target is not None and instr.taken_target not in self.instructions:
                raise WorkloadError(
                    f"{self.name}: CTI at {addr:#x} targets unmapped {instr.taken_target:#x}"
                )
        for addr, targets in self.switch_targets.items():
            if not targets:
                raise WorkloadError(f"{self.name}: switch at {addr:#x} has no targets")
            if addr not in self.switch_specs:
                raise WorkloadError(f"{self.name}: switch at {addr:#x} has no spec")


class ProgramBuilder:
    """Incrementally assemble a :class:`Program`.

    Addresses are assigned at emission time from drawn encoded lengths, so
    the image layout is deterministic under the builder's seed.  CTI targets
    may be unbound labels; they are resolved when :meth:`finish` runs.
    """

    def __init__(self, name: str, seed: int, code_base: int = CODE_BASE):
        self.name = name
        self.rng = random.Random(seed)
        self._next_address = code_base
        self._next_data = DATA_BASE
        self._pending: list[_PendingInstr] = []
        self._branch_specs: dict[int, BranchSpec] = {}
        self._switch_specs: dict[int, SwitchSpec] = {}
        self._switch_targets: dict[int, list[Label]] = {}
        self._mem_specs: dict[int, MemSpec] = {}
        self._labels: list[Label] = []
        self._finished = False

    # -- layout ------------------------------------------------------------

    @property
    def here(self) -> int:
        """Address the next emitted instruction will occupy."""
        return self._next_address

    def label(self, name: str = "") -> Label:
        """Create a new (unplaced) label."""
        label = Label(name or f"L{len(self._labels)}")
        self._labels.append(label)
        return label

    def place(self, label: Label) -> Label:
        """Bind ``label`` to the current address."""
        if label.address is not None:
            raise WorkloadError(f"label {label.name} placed twice")
        label.address = self._next_address
        return label

    def alloc_data(self, size: int, align: int = 64) -> int:
        """Reserve ``size`` bytes of data space; returns the base address."""
        if size <= 0:
            raise WorkloadError(f"data allocation of {size} bytes")
        base = (self._next_data + align - 1) & ~(align - 1)
        self._next_data = base + size
        return base

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        iclass: InstrClass,
        *,
        dest: int = REG_NONE,
        src1: int = REG_NONE,
        src2: int = REG_NONE,
        imm: int | None = None,
        fp_mul: bool = False,
        target: Label | None = None,
        mem: MemSpec | None = None,
    ) -> int:
        """Emit one instruction; returns its address."""
        if self._finished:
            raise WorkloadError("builder already finished")
        address = self._next_address
        length = encoded_length(iclass, self.rng)
        self._pending.append(
            _PendingInstr(address, length, iclass, dest, src1, src2, imm, fp_mul, target)
        )
        if mem is not None:
            self._mem_specs[address] = mem
        self._next_address += length
        return address

    def cond_branch(self, target: Label, spec: BranchSpec) -> int:
        """Emit a conditional branch with dynamic behaviour ``spec``."""
        address = self.emit(InstrClass.COND_BRANCH, target=target)
        self._branch_specs[address] = spec
        return address

    def jump(self, target: Label) -> int:
        """Emit an unconditional direct jump."""
        return self.emit(InstrClass.DIRECT_JUMP, target=target)

    def call(self, target: Label) -> int:
        """Emit a direct call."""
        return self.emit(InstrClass.CALL_DIRECT, target=target)

    def ret(self) -> int:
        """Emit a near return."""
        return self.emit(InstrClass.RETURN_NEAR)

    def indirect_jump(self, reg: int, targets: list[Label], spec: SwitchSpec) -> int:
        """Emit an indirect jump choosing among ``targets`` per ``spec``."""
        if len(targets) != spec.n_targets:
            raise WorkloadError(
                f"switch spec expects {spec.n_targets} targets, got {len(targets)}"
            )
        address = self.emit(InstrClass.INDIRECT_JUMP, src1=reg)
        self._switch_specs[address] = spec
        self._switch_targets[address] = list(targets)
        return address

    # -- finalisation --------------------------------------------------------

    def finish(self, entry: Label) -> Program:
        """Resolve labels and freeze the program image."""
        if self._finished:
            raise WorkloadError("builder already finished")
        self._finished = True
        if entry.address is None:
            raise WorkloadError(f"entry label {entry.name} never placed")
        instructions: dict[int, MacroInstruction] = {}
        for rec in self._pending:
            taken_target = None
            if rec.target is not None:
                if rec.target.address is None:
                    raise WorkloadError(
                        f"{self.name}: unresolved label {rec.target.name} "
                        f"at {rec.address:#x}"
                    )
                taken_target = rec.target.address
            uops = decode_template(
                rec.iclass,
                dest=rec.dest,
                src1=rec.src1,
                src2=rec.src2,
                imm=rec.imm,
                fp_mul=rec.fp_mul,
            )
            instructions[rec.address] = MacroInstruction(
                address=rec.address,
                length=rec.length,
                iclass=rec.iclass,
                uops=uops,
                taken_target=taken_target,
            )
        switch_targets = {
            addr: tuple(
                t.address
                for t in targets
                if t.address is not None
            )
            for addr, targets in self._switch_targets.items()
        }
        for addr, targets in switch_targets.items():
            if len(targets) != len(self._switch_targets[addr]):
                raise WorkloadError(f"{self.name}: switch at {addr:#x} has unplaced targets")
        program = Program(
            name=self.name,
            entry=entry.address,
            instructions=instructions,
            branch_specs=dict(self._branch_specs),
            switch_specs=dict(self._switch_specs),
            switch_targets=switch_targets,
            mem_specs=dict(self._mem_specs),
            code_bytes=self._next_address - CODE_BASE,
        )
        program.validate()
        return program
