"""Dynamic instruction streams: the walker and its lookahead wrapper.

The :class:`StreamWalker` interprets a static :class:`~repro.workloads.program.Program`
— resolving branch directions, indirect targets and memory addresses from
the program's behaviour specs — and yields an endless sequence of
:class:`~repro.isa.instruction.DynamicInstruction` records, exactly like the
execution traces driving the paper's simulator.

The :class:`InstructionStream` wraps a walker with a bounded length and a
lookahead buffer.  Lookahead is how a trace-driven simulator resolves
speculation: a predicted trace is correct iff its branch directions match
the *actual* upcoming stream.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterator

from repro.errors import WorkloadError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import (
    FLOW_COND_BRANCH,
    FLOW_INDIRECT_JUMP,
    FLOW_RETURN,
    FLOW_SOFTWARE_INT,
)

#: Flow codes whose outcome consumes dynamic state (conditional branch,
#: return, indirect jump).  Phase signatures count the resolved targets of
#: exactly these instructions: the set is a pure function of the
#: instruction sequence, so the generating walker and artifact replay
#: profile identically (see :mod:`repro.sampling.phases`).
_DYN_CTI_FLOWS = (FLOW_COND_BRANCH, FLOW_RETURN, FLOW_INDIRECT_JUMP)
from repro.workloads.behaviors import (
    make_branch_state,
    make_mem_state,
    make_switch_state,
)
from repro.workloads.program import Program


class StreamWalker:
    """Deterministically execute a program image, yielding dynamic instructions.

    The walker owns one seeded RNG shared by all behaviour states, so a
    given ``(program, seed)`` pair always produces the identical stream.

    Interpretation is the innermost loop of every simulation (one call per
    dynamic instruction), so the walker compiles each static instruction
    into a *plan* on first execution — flow-dispatch code, static targets
    and the bound behaviour-state methods — and replays the plan on every
    later visit, avoiding the enum chain and three dict probes per step.
    """

    __slots__ = (
        "program",
        "rng",
        "_branch_states",
        "_switch_states",
        "_mem_states",
        "_plans",
        "_skip_blocks",
        "_warm_blocks",
        "_warm_line_shift",
        "_pc",
        "_call_stack",
        "executed",
    )

    def __init__(self, program: Program, seed: int = 0):
        self.program = program
        self.rng = random.Random(seed)
        self._branch_states = {
            addr: make_branch_state(spec, self.rng)
            for addr, spec in program.branch_specs.items()
        }
        self._switch_states = {
            addr: make_switch_state(spec, self.rng)
            for addr, spec in program.switch_specs.items()
        }
        self._mem_states = {
            addr: make_mem_state(spec, self.rng)
            for addr, spec in program.mem_specs.items()
        }
        # address -> (instr, code, taken_target, fallthrough, next_taken,
        #             next_address, next_index, switch_targets), built lazily
        # so never-executed instructions cost nothing.
        self._plans: dict[int, tuple] = {}
        # address -> (count, effects, exit_pc) basic-block skip plans (see
        # _compile_skip_block), built lazily by :meth:`skip`.
        self._skip_blocks: dict[int, tuple] = {}
        # Same idea with warming effects (see _compile_warm_block); valid
        # for one icache line_shift at a time.
        self._warm_blocks: dict[int, tuple] = {}
        self._warm_line_shift = -1
        self._pc = program.entry
        self._call_stack: list[int] = []
        self.executed = 0

    def _compile_plan(self, instr) -> tuple:
        """Build the execution plan for one static instruction."""
        address = instr.address
        code = instr.flow_code
        if code == FLOW_SOFTWARE_INT:
            code = 0  # software interrupts fall through like plain instructions
        branch_state = self._branch_states.get(address)
        switch_state = self._switch_states.get(address)
        mem_state = self._mem_states.get(address)
        plan = (
            instr,
            code,
            instr.taken_target,
            instr.fallthrough,
            branch_state.next_taken if branch_state is not None else None,
            mem_state.next_address if mem_state is not None else None,
            switch_state.next_index if switch_state is not None else None,
            self.program.switch_targets.get(address),
        )
        self._plans[address] = plan
        return plan

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return self

    def __next__(self) -> DynamicInstruction:
        pc = self._pc
        plan = self._plans.get(pc)
        if plan is None:
            try:
                instr = self.program.instructions[pc]
            except KeyError as exc:
                raise WorkloadError(
                    f"{self.program.name}: control flowed to unmapped address "
                    f"{pc:#x}"
                ) from exc
            plan = self._compile_plan(instr)
        (instr, code, taken_target, fallthrough,
         next_taken, next_mem, next_index, switch_targets) = plan

        if code:
            if code == 1:  # FLOW_COND_BRANCH
                taken = next_taken()
                next_address = taken_target if taken else fallthrough
            elif code == 2:  # FLOW_DIRECT_JUMP
                taken = True
                next_address = taken_target
            elif code == 3:  # FLOW_CALL
                taken = True
                self._call_stack.append(fallthrough)
                next_address = taken_target
            elif code == 4:  # FLOW_RETURN
                taken = True
                if not self._call_stack:
                    raise WorkloadError(
                        f"{self.program.name}: return with empty call stack at "
                        f"{pc:#x}"
                    )
                next_address = self._call_stack.pop()
            else:  # FLOW_INDIRECT_JUMP
                taken = True
                next_address = switch_targets[next_index()]
        else:
            taken = False
            next_address = fallthrough

        mem_addr = next_mem() if next_mem is not None else None

        self._pc = next_address
        self.executed += 1
        return DynamicInstruction(instr, taken, next_address, mem_addr)

    #: Skip-block compilation stops after this many instructions (bounds
    #: compile time on direct-jump cycles; a capped block simply chains
    #: into the next one).
    _SKIP_BLOCK_CAP = 128

    def _compile_skip_block(self, start: int) -> tuple:
        """Compile the basic block at ``start`` for block-granular skipping.

        Walks the *static* control flow from ``start`` for as long as it
        stays deterministic — plain instructions, direct jumps and calls —
        and stops at the first instruction whose outcome consumes dynamic
        state (conditional branch, indirect jump, return) or is unmapped.
        Returns ``(count, effects, exit_pc)``: ``count`` instructions are
        covered, ``effects`` is the ordered sequence of side effects a walk
        of the block performs — ``(True, fallthrough)`` pushes a call's
        return address, ``(False, next_mem)`` draws one memory address —
        and ``exit_pc`` is where per-instruction stepping resumes.  Replaying
        the effects in order keeps the shared RNG and the call stack
        bit-identical to an instruction-by-instruction walk.
        """
        plans_get = self._plans.get
        instructions = self.program.instructions
        effects: list[tuple] = []
        pc = start
        n = 0
        while n < self._SKIP_BLOCK_CAP:
            plan = plans_get(pc)
            if plan is None:
                instr = instructions.get(pc)
                if instr is None:
                    break  # unmapped: let the stepping path raise
                plan = self._compile_plan(instr)
            code = plan[1]
            next_mem = plan[5]
            if code == 0:
                if next_mem is not None:
                    effects.append((False, next_mem))
                pc = plan[3]
            elif code == 2:  # FLOW_DIRECT_JUMP
                if next_mem is not None:
                    effects.append((False, next_mem))
                pc = plan[2]
            elif code == 3:  # FLOW_CALL
                effects.append((True, plan[3]))
                if next_mem is not None:
                    effects.append((False, next_mem))
                pc = plan[2]
            else:
                break  # cond branch / return / indirect: dynamic outcome
            n += 1
        block = (n, tuple(effects), pc)
        self._skip_blocks[start] = block
        return block

    def skip(self, count: int, profile: dict | None = None) -> int:
        """Advance ``count`` instructions without materialising them.

        The fast-forward path of the sampled simulator: identical control
        flow and behaviour-state evolution to :meth:`next_batch` (every
        branch/memory/switch behaviour method is still called, so the RNG
        stream and walker state stay bit-identical to a full walk), but no
        :class:`~repro.isa.instruction.DynamicInstruction` is allocated.
        Straight-line stretches advance a compiled basic block at a time
        (one dict probe + the block's behaviour calls); only instructions
        with dynamic outcomes step individually.  Returns the number of
        instructions skipped (always ``count`` unless control flow faults).

        ``profile`` — a mutable mapping — additionally counts the resolved
        successor of every dynamic CTI (:data:`_DYN_CTI_FLOWS`) into it,
        the phase-signature observer of the adaptive sampler.  Dynamic
        CTIs are exactly the instructions this path steps individually, so
        profiling adds no work to the block-granular fast path.
        """
        plans_get = self._plans.get
        blocks_get = self._skip_blocks.get
        call_stack = self._call_stack
        pc = self._pc
        skipped = 0
        try:
            # Block-granular fast path: consume whole basic blocks plus
            # their terminating dynamic instruction while they fit.
            while True:
                block = blocks_get(pc)
                if block is None:
                    block = self._compile_skip_block(pc)
                n, effects, exit_pc = block
                if skipped + n + 1 > count:
                    break
                for is_push, payload in effects:
                    if is_push:
                        call_stack.append(payload)
                    else:
                        payload()
                pc = exit_pc
                skipped += n
                # One stepped instruction resolves the block terminator
                # (or continues a capped block).
                plan = plans_get(pc)
                if plan is None:
                    try:
                        instr = self.program.instructions[pc]
                    except KeyError as exc:
                        raise WorkloadError(
                            f"{self.program.name}: control flowed to unmapped "
                            f"address {pc:#x}"
                        ) from exc
                    plan = self._compile_plan(instr)
                (_instr, code, taken_target, fallthrough,
                 next_taken, next_mem, next_index, switch_targets) = plan
                if code:
                    if code == 1:  # FLOW_COND_BRANCH
                        pc = taken_target if next_taken() else fallthrough
                    elif code == 2:  # FLOW_DIRECT_JUMP
                        pc = taken_target
                    elif code == 3:  # FLOW_CALL
                        call_stack.append(fallthrough)
                        pc = taken_target
                    elif code == 4:  # FLOW_RETURN
                        if not call_stack:
                            raise WorkloadError(
                                f"{self.program.name}: return with empty call "
                                f"stack at {pc:#x}"
                            )
                        pc = call_stack.pop()
                    else:  # FLOW_INDIRECT_JUMP
                        pc = switch_targets[next_index()]
                else:
                    pc = fallthrough
                if profile is not None and (code == 1 or code >= 4):
                    profile[pc] = profile.get(pc, 0) + 1
                if next_mem is not None:
                    next_mem()
                skipped += 1
            # Instruction-granular tail for the remainder.
            for _ in range(count - skipped):
                plan = plans_get(pc)
                if plan is None:
                    try:
                        instr = self.program.instructions[pc]
                    except KeyError as exc:
                        raise WorkloadError(
                            f"{self.program.name}: control flowed to unmapped "
                            f"address {pc:#x}"
                        ) from exc
                    plan = self._compile_plan(instr)
                (_instr, code, taken_target, fallthrough,
                 next_taken, next_mem, next_index, switch_targets) = plan

                if code:
                    if code == 1:  # FLOW_COND_BRANCH
                        pc = taken_target if next_taken() else fallthrough
                    elif code == 2:  # FLOW_DIRECT_JUMP
                        pc = taken_target
                    elif code == 3:  # FLOW_CALL
                        call_stack.append(fallthrough)
                        pc = taken_target
                    elif code == 4:  # FLOW_RETURN
                        if not call_stack:
                            raise WorkloadError(
                                f"{self.program.name}: return with empty call "
                                f"stack at {pc:#x}"
                            )
                        pc = call_stack.pop()
                    else:  # FLOW_INDIRECT_JUMP
                        pc = switch_targets[next_index()]
                else:
                    pc = fallthrough

                if profile is not None and (code == 1 or code >= 4):
                    profile[pc] = profile.get(pc, 0) + 1
                if next_mem is not None:
                    next_mem()
                skipped += 1
        finally:
            self._pc = pc
            self.executed += skipped
        return skipped

    def _compile_warm_block(self, start: int, line_shift: int) -> tuple:
        """Compile the basic block at ``start`` for warmed skipping.

        Same block boundaries as :meth:`_compile_skip_block`, but the
        effect list additionally carries the warming work a walk of the
        block performs.  Effects are ``(kind, a, b)``:

        * ``0`` — memory access: ``touch(a())``
        * ``1`` — icache probe: ``fetch(a)`` when line ``b`` differs from
          the previous probed line (lines repeated *within* the block are
          already filtered statically; the runtime check only deduplicates
          across block boundaries)
        * ``2`` — static CTI (direct jump/call): ``train(a, True, b)``
        * ``3`` — call: push return address ``a``
        """
        plans_get = self._plans.get
        instructions = self.program.instructions
        effects: list[tuple] = []
        pc = start
        n = 0
        prev_line = None
        while n < self._SKIP_BLOCK_CAP:
            plan = plans_get(pc)
            if plan is None:
                instr = instructions.get(pc)
                if instr is None:
                    break
                plan = self._compile_plan(instr)
            code = plan[1]
            if code not in (0, 2, 3):
                break  # cond branch / return / indirect: dynamic outcome
            line = pc >> line_shift
            if line != prev_line:
                effects.append((1, pc, line))
                prev_line = line
            next_mem = plan[5]
            if code == 0:
                if next_mem is not None:
                    effects.append((0, next_mem, None))
                pc = plan[3]
            else:
                if code == 3:  # FLOW_CALL
                    effects.append((3, plan[3], None))
                effects.append((2, plan[0], plan[2]))
                if next_mem is not None:
                    effects.append((0, next_mem, None))
                pc = plan[2]
            n += 1
        block = (n, tuple(effects), pc)
        self._warm_blocks[start] = block
        return block

    def warm_skip(self, count: int, fetch, touch, train,
                  line_shift: int = 6) -> int:
        """:meth:`skip` with functional warming of caches and predictor.

        The sampled simulator's fast-forward with always-on warming
        (SMARTS-style): no :class:`DynamicInstruction` is allocated, but
        ``fetch(address)`` is probed once per new instruction-cache line
        (``line_shift`` = log2 of the line size), ``touch(mem_addr)`` once
        per memory access and ``train(instr, taken, next_address)`` once
        per CTI, so icache, dcache and branch-predictor state track the
        skipped stream.  Behaviour-state evolution is bit-identical to
        :meth:`skip`; straight-line stretches replay compiled warm blocks.
        """
        if line_shift != self._warm_line_shift:
            self._warm_blocks.clear()
            self._warm_line_shift = line_shift
        plans_get = self._plans.get
        blocks_get = self._warm_blocks.get
        call_stack = self._call_stack
        pc = self._pc
        last_line = -1
        skipped = 0
        try:
            while True:
                block = blocks_get(pc)
                if block is None:
                    block = self._compile_warm_block(pc, line_shift)
                n, effects, exit_pc = block
                if skipped + n + 1 > count:
                    break
                for kind, a, b in effects:
                    if kind == 0:
                        touch(a())
                    elif kind == 1:
                        if b != last_line:
                            fetch(a)
                            last_line = b
                    elif kind == 2:
                        train(a, True, b)
                    else:
                        call_stack.append(a)
                pc = exit_pc
                skipped += n
                # One stepped instruction resolves the block terminator
                # (or continues a capped block).
                plan = plans_get(pc)
                if plan is None:
                    try:
                        instr = self.program.instructions[pc]
                    except KeyError as exc:
                        raise WorkloadError(
                            f"{self.program.name}: control flowed to unmapped "
                            f"address {pc:#x}"
                        ) from exc
                    plan = self._compile_plan(instr)
                (instr, code, taken_target, fallthrough,
                 next_taken, next_mem, next_index, switch_targets) = plan
                line = pc >> line_shift
                if line != last_line:
                    fetch(pc)
                    last_line = line
                if code:
                    taken = True
                    if code == 1:  # FLOW_COND_BRANCH
                        taken = next_taken()
                        next_address = taken_target if taken else fallthrough
                    elif code == 2:  # FLOW_DIRECT_JUMP
                        next_address = taken_target
                    elif code == 3:  # FLOW_CALL
                        call_stack.append(fallthrough)
                        next_address = taken_target
                    elif code == 4:  # FLOW_RETURN
                        if not call_stack:
                            raise WorkloadError(
                                f"{self.program.name}: return with empty call "
                                f"stack at {pc:#x}"
                            )
                        next_address = call_stack.pop()
                    else:  # FLOW_INDIRECT_JUMP
                        next_address = switch_targets[next_index()]
                    train(instr, taken, next_address)
                    pc = next_address
                else:
                    pc = fallthrough
                if next_mem is not None:
                    touch(next_mem())
                skipped += 1
            # Instruction-granular tail for the remainder.
            for _ in range(count - skipped):
                plan = plans_get(pc)
                if plan is None:
                    try:
                        instr = self.program.instructions[pc]
                    except KeyError as exc:
                        raise WorkloadError(
                            f"{self.program.name}: control flowed to unmapped "
                            f"address {pc:#x}"
                        ) from exc
                    plan = self._compile_plan(instr)
                (instr, code, taken_target, fallthrough,
                 next_taken, next_mem, next_index, switch_targets) = plan

                line = pc >> line_shift
                if line != last_line:
                    fetch(pc)
                    last_line = line

                if code:
                    taken = True
                    if code == 1:  # FLOW_COND_BRANCH
                        taken = next_taken()
                        next_address = taken_target if taken else fallthrough
                    elif code == 2:  # FLOW_DIRECT_JUMP
                        next_address = taken_target
                    elif code == 3:  # FLOW_CALL
                        call_stack.append(fallthrough)
                        next_address = taken_target
                    elif code == 4:  # FLOW_RETURN
                        if not call_stack:
                            raise WorkloadError(
                                f"{self.program.name}: return with empty call "
                                f"stack at {pc:#x}"
                            )
                        next_address = call_stack.pop()
                    else:  # FLOW_INDIRECT_JUMP
                        next_address = switch_targets[next_index()]
                    train(instr, taken, next_address)
                    pc = next_address
                else:
                    pc = fallthrough

                if next_mem is not None:
                    touch(next_mem())
                skipped += 1
        finally:
            self._pc = pc
            self.executed += skipped
        return skipped

    def next_batch(self, count: int) -> list[DynamicInstruction]:
        """Step ``count`` instructions in one call, returning them in order.

        Identical to ``count`` calls of :meth:`__next__`, with the stepping
        state held in locals across the whole batch — the bulk interface
        the simulator's segmentation loop uses (the walker is endless, so
        a full batch is always produced unless control flow faults).
        """
        out: list[DynamicInstruction] = []
        append = out.append
        plans_get = self._plans.get
        call_stack = self._call_stack
        dyn_instr = DynamicInstruction
        pc = self._pc
        try:
            for _ in range(count):
                plan = plans_get(pc)
                if plan is None:
                    try:
                        instr = self.program.instructions[pc]
                    except KeyError as exc:
                        raise WorkloadError(
                            f"{self.program.name}: control flowed to unmapped "
                            f"address {pc:#x}"
                        ) from exc
                    plan = self._compile_plan(instr)
                (instr, code, taken_target, fallthrough,
                 next_taken, next_mem, next_index, switch_targets) = plan

                if code:
                    taken = True
                    if code == 1:  # FLOW_COND_BRANCH
                        taken = next_taken()
                        next_address = taken_target if taken else fallthrough
                    elif code == 2:  # FLOW_DIRECT_JUMP
                        next_address = taken_target
                    elif code == 3:  # FLOW_CALL
                        call_stack.append(fallthrough)
                        next_address = taken_target
                    elif code == 4:  # FLOW_RETURN
                        if not call_stack:
                            raise WorkloadError(
                                f"{self.program.name}: return with empty call "
                                f"stack at {pc:#x}"
                            )
                        next_address = call_stack.pop()
                    else:  # FLOW_INDIRECT_JUMP
                        next_address = switch_targets[next_index()]
                else:
                    taken = False
                    next_address = fallthrough

                mem_addr = next_mem() if next_mem is not None else None
                append(dyn_instr(instr, taken, next_address, mem_addr))
                pc = next_address
        finally:
            self._pc = pc
            self.executed += len(out)
        return out


class InstructionStream:
    """A bounded dynamic stream with arbitrary lookahead.

    ``peek(i)`` returns the instruction ``i`` positions ahead of the cursor
    (``peek(0)`` is the next instruction to execute) or ``None`` past the
    end; ``take()`` consumes and returns the next instruction.
    """

    __slots__ = ("_walker", "_remaining", "_buffer", "consumed")

    def __init__(self, walker: Iterator[DynamicInstruction], limit: int):
        if limit <= 0:
            raise WorkloadError(f"stream limit must be positive, got {limit}")
        self._walker = walker
        self._remaining = limit
        self._buffer: deque[DynamicInstruction] = deque()
        self.consumed = 0

    @classmethod
    def from_artifact(cls, artifact, limit: int | None = None) -> "InstructionStream":
        """Replay a compiled trace artifact as a bounded stream.

        ``artifact`` is a
        :class:`~repro.workloads.tracefile.TraceArtifact` (duck-typed:
        anything with ``walker()`` and ``__len__``).  The replay walker
        implements the same bulk interface as :class:`StreamWalker`
        (``next_batch``/``skip``/``warm_skip``), so the stream is
        bit-identical to one over the generating walker — the engine's
        grid fast path rests on that equivalence.
        """
        total = len(artifact)
        if limit is None or limit > total:
            limit = total
        return cls(artifact.walker(), limit)

    @property
    def exhausted(self) -> bool:
        """True when no instructions remain to consume."""
        return self._remaining == 0 and not self._buffer

    def _fill(self, count: int) -> None:
        while len(self._buffer) < count and self._remaining > 0:
            try:
                self._buffer.append(next(self._walker))
            except StopIteration:
                self._remaining = 0
                return
            self._remaining -= 1

    def peek(self, index: int = 0) -> DynamicInstruction | None:
        """Return the instruction ``index`` ahead of the cursor, if any."""
        self._fill(index + 1)
        if index < len(self._buffer):
            return self._buffer[index]
        return None

    def take(self) -> DynamicInstruction:
        """Consume and return the next instruction."""
        self._fill(1)
        if not self._buffer:
            raise WorkloadError("take() on exhausted stream")
        self.consumed += 1
        return self._buffer.popleft()

    def take_many(self, count: int) -> list[DynamicInstruction]:
        """Consume up to ``count`` instructions (fewer at stream end)."""
        out = []
        for _ in range(count):
            if self.exhausted:
                break
            out.append(self.take())
        return out

    def take_batch(self, count: int) -> list[DynamicInstruction]:
        """Consume up to ``count`` instructions in one call (bulk take).

        Uses the walker's batch interface when available; an empty list
        means the stream is exhausted.
        """
        out: list[DynamicInstruction] = []
        buffer = self._buffer
        while buffer and len(out) < count:
            out.append(buffer.popleft())
        n = count - len(out)
        if n > self._remaining:
            n = self._remaining
        if n > 0:
            walker = self._walker
            next_batch = getattr(walker, "next_batch", None)
            if next_batch is not None:
                batch = next_batch(n)
            else:
                batch = []
                for _ in range(n):
                    try:
                        batch.append(next(walker))
                    except StopIteration:
                        self._remaining = 0
                        break
            if self._remaining:
                self._remaining -= len(batch)
            out.extend(batch)
        self.consumed += len(out)
        return out

    def consume_raw(self, count: int):
        """Bulk-consume up to ``count`` instructions as raw column slices.

        The columnar-warmup fast path: when the stream replays a
        recorded artifact (a walker exposing ``raw_batch``) and nothing
        is buffered, the rows are consumed without decoding
        :class:`DynamicInstruction` objects and returned as
        ``(walker, lo, index, taken, next, mem)`` — stream bookkeeping
        (``consumed``, the remaining budget) advances exactly as a
        ``take_batch`` of the same rows would.  Returns ``None`` when the
        fast path does not apply (buffered lookahead, a generating
        walker, or an exhausted budget); callers must then fall back to
        the object interface.
        """
        if self._buffer or self._remaining <= 0:
            return None
        walker = self._walker
        raw_batch = getattr(walker, "raw_batch", None)
        if raw_batch is None:
            return None
        n = min(count, self._remaining)
        lo, index, taken, nxt, mem = raw_batch(n)
        took = len(index)
        self._remaining -= took
        self.consumed += took
        return walker, lo, index, taken, nxt, mem

    def skip(self, count: int, warm: tuple | None = None,
             profile: dict | None = None) -> int:
        """Fast-forward past up to ``count`` instructions; returns how many.

        Buffered (already-walked) instructions are discarded first; the
        remainder uses the walker's allocation-free :meth:`StreamWalker.skip`
        when available.  ``consumed`` advances exactly as if the
        instructions had been taken, so interleaving ``skip`` with ``take``
        or ``take_batch`` keeps the stream budget coherent.

        ``warm`` — a ``(fetch, touch, train, line_shift)`` tuple — routes
        the fast-forward through :meth:`StreamWalker.warm_skip`, training
        caches and the branch predictor while skipping.

        ``profile`` counts the resolved successor of every dynamic CTI in
        the skipped window into the given mapping (buffered instructions
        included), on the plain and the warmed path alike — the adaptive
        sampler's phase-signature observer.  Identical windows produce
        identical profiles on every path (plain/warm, walker/artifact
        replay); foreign duck-typed walkers must accept
        ``skip(count, profile)`` to be profiled.
        """
        if warm is not None and profile is not None:
            # Route warm-path profiling through the train callback: every
            # dynamic CTI trains exactly once on the warmed walk, so
            # wrapping train observes the same successor sequence a plain
            # profiled skip of the window would.
            fetch, touch, train, line_shift = warm

            def train(instr, taken, next_address, _train=train,
                      _profile=profile):
                if instr.flow_code in _DYN_CTI_FLOWS:
                    _profile[next_address] = _profile.get(next_address, 0) + 1
                _train(instr, taken, next_address)

            warm = (fetch, touch, train, line_shift)
        skipped = 0
        buffer = self._buffer
        last_line = -1
        while buffer and skipped < count:
            dyn = buffer.popleft()
            if warm is not None:
                fetch, touch, train, line_shift = warm
                instr = dyn.instr
                line = instr.address >> line_shift
                if line != last_line:
                    fetch(instr.address)
                    last_line = line
                if dyn.mem_addr is not None:
                    touch(dyn.mem_addr)
                if instr.is_cti:
                    train(instr, dyn.taken, dyn.next_address)
            elif (profile is not None
                    and dyn.instr.flow_code in _DYN_CTI_FLOWS):
                profile[dyn.next_address] = (
                    profile.get(dyn.next_address, 0) + 1
                )
            skipped += 1
        n = count - skipped
        if n > self._remaining:
            n = self._remaining
        if n > 0:
            walker = self._walker
            if warm is not None:
                walker_skip = getattr(walker, "warm_skip", None)
                if walker_skip is not None:
                    fetch, touch, train, line_shift = warm
                    n = walker_skip(n, fetch, touch, train, line_shift)
                    self._remaining -= n
                    skipped += n
                    self.consumed += skipped
                    return skipped
            walker_skip = getattr(walker, "skip", None)
            if walker_skip is not None:
                if profile is not None:
                    n = walker_skip(n, profile)
                else:
                    n = walker_skip(n)
            else:
                done = 0
                try:
                    for _ in range(n):
                        dyn = next(walker)
                        if (profile is not None
                                and dyn.instr.flow_code in _DYN_CTI_FLOWS):
                            profile[dyn.next_address] = (
                                profile.get(dyn.next_address, 0) + 1
                            )
                        done += 1
                except StopIteration:
                    self._remaining = done
                n = done
            self._remaining -= n
            skipped += n
        self.consumed += skipped
        return skipped

    def drain(self) -> Iterator[DynamicInstruction]:
        """Consume the rest of the stream, in order.

        Equivalent to calling :meth:`take` until :attr:`exhausted`, without
        the per-instruction buffer round-trip — the bulk path used by the
        simulator's segmentation loop.  ``consumed`` and the remaining
        budget stay accurate at every yield, so interleaving ``peek`` or
        ``take`` with a partially-consumed ``drain()`` remains valid.
        """
        buffer = self._buffer
        walker = self._walker
        while True:
            if buffer:
                self.consumed += 1
                yield buffer.popleft()
            elif self._remaining > 0:
                try:
                    dyn = next(walker)
                except StopIteration:
                    self._remaining = 0
                    return
                self._remaining -= 1
                self.consumed += 1
                yield dyn
            else:
                return
