"""Dynamic instruction streams: the walker and its lookahead wrapper.

The :class:`StreamWalker` interprets a static :class:`~repro.workloads.program.Program`
— resolving branch directions, indirect targets and memory addresses from
the program's behaviour specs — and yields an endless sequence of
:class:`~repro.isa.instruction.DynamicInstruction` records, exactly like the
execution traces driving the paper's simulator.

The :class:`InstructionStream` wraps a walker with a bounded length and a
lookahead buffer.  Lookahead is how a trace-driven simulator resolves
speculation: a predicted trace is correct iff its branch directions match
the *actual* upcoming stream.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterator

from repro.errors import WorkloadError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import InstrClass
from repro.workloads.behaviors import (
    make_branch_state,
    make_mem_state,
    make_switch_state,
)
from repro.workloads.program import Program


class StreamWalker:
    """Deterministically execute a program image, yielding dynamic instructions.

    The walker owns one seeded RNG shared by all behaviour states, so a
    given ``(program, seed)`` pair always produces the identical stream.
    """

    def __init__(self, program: Program, seed: int = 0):
        self.program = program
        self.rng = random.Random(seed)
        self._branch_states = {
            addr: make_branch_state(spec, self.rng)
            for addr, spec in program.branch_specs.items()
        }
        self._switch_states = {
            addr: make_switch_state(spec, self.rng)
            for addr, spec in program.switch_specs.items()
        }
        self._mem_states = {
            addr: make_mem_state(spec, self.rng)
            for addr, spec in program.mem_specs.items()
        }
        self._pc = program.entry
        self._call_stack: list[int] = []
        self.executed = 0

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return self

    def __next__(self) -> DynamicInstruction:
        program = self.program
        try:
            instr = program.instructions[self._pc]
        except KeyError as exc:
            raise WorkloadError(
                f"{program.name}: control flowed to unmapped address {self._pc:#x}"
            ) from exc

        taken = False
        next_address = instr.fallthrough
        iclass = instr.iclass
        if iclass is InstrClass.COND_BRANCH:
            taken = self._branch_states[instr.address].next_taken()
            if taken:
                next_address = instr.taken_target
        elif iclass is InstrClass.DIRECT_JUMP:
            taken = True
            next_address = instr.taken_target
        elif iclass is InstrClass.CALL_DIRECT:
            taken = True
            self._call_stack.append(instr.fallthrough)
            next_address = instr.taken_target
        elif iclass is InstrClass.RETURN_NEAR:
            taken = True
            if not self._call_stack:
                raise WorkloadError(
                    f"{program.name}: return with empty call stack at "
                    f"{instr.address:#x}"
                )
            next_address = self._call_stack.pop()
        elif iclass is InstrClass.INDIRECT_JUMP:
            taken = True
            index = self._switch_states[instr.address].next_index()
            next_address = program.switch_targets[instr.address][index]

        mem_state = self._mem_states.get(instr.address)
        mem_addr = mem_state.next_address() if mem_state is not None else None

        self._pc = next_address
        self.executed += 1
        return DynamicInstruction(instr, taken, next_address, mem_addr)


class InstructionStream:
    """A bounded dynamic stream with arbitrary lookahead.

    ``peek(i)`` returns the instruction ``i`` positions ahead of the cursor
    (``peek(0)`` is the next instruction to execute) or ``None`` past the
    end; ``take()`` consumes and returns the next instruction.
    """

    def __init__(self, walker: Iterator[DynamicInstruction], limit: int):
        if limit <= 0:
            raise WorkloadError(f"stream limit must be positive, got {limit}")
        self._walker = walker
        self._remaining = limit
        self._buffer: deque[DynamicInstruction] = deque()
        self.consumed = 0

    @property
    def exhausted(self) -> bool:
        """True when no instructions remain to consume."""
        return self._remaining == 0 and not self._buffer

    def _fill(self, count: int) -> None:
        while len(self._buffer) < count and self._remaining > 0:
            try:
                self._buffer.append(next(self._walker))
            except StopIteration:
                self._remaining = 0
                return
            self._remaining -= 1

    def peek(self, index: int = 0) -> DynamicInstruction | None:
        """Return the instruction ``index`` ahead of the cursor, if any."""
        self._fill(index + 1)
        if index < len(self._buffer):
            return self._buffer[index]
        return None

    def take(self) -> DynamicInstruction:
        """Consume and return the next instruction."""
        self._fill(1)
        if not self._buffer:
            raise WorkloadError("take() on exhausted stream")
        self.consumed += 1
        return self._buffer.popleft()

    def take_many(self, count: int) -> list[DynamicInstruction]:
        """Consume up to ``count`` instructions (fewer at stream end)."""
        out = []
        for _ in range(count):
            if self.exhausted:
                break
            out.append(self.take())
        return out
