"""Dynamic instruction streams: the walker and its lookahead wrapper.

The :class:`StreamWalker` interprets a static :class:`~repro.workloads.program.Program`
— resolving branch directions, indirect targets and memory addresses from
the program's behaviour specs — and yields an endless sequence of
:class:`~repro.isa.instruction.DynamicInstruction` records, exactly like the
execution traces driving the paper's simulator.

The :class:`InstructionStream` wraps a walker with a bounded length and a
lookahead buffer.  Lookahead is how a trace-driven simulator resolves
speculation: a predicted trace is correct iff its branch directions match
the *actual* upcoming stream.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterator

from repro.errors import WorkloadError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import FLOW_SOFTWARE_INT
from repro.workloads.behaviors import (
    make_branch_state,
    make_mem_state,
    make_switch_state,
)
from repro.workloads.program import Program


class StreamWalker:
    """Deterministically execute a program image, yielding dynamic instructions.

    The walker owns one seeded RNG shared by all behaviour states, so a
    given ``(program, seed)`` pair always produces the identical stream.

    Interpretation is the innermost loop of every simulation (one call per
    dynamic instruction), so the walker compiles each static instruction
    into a *plan* on first execution — flow-dispatch code, static targets
    and the bound behaviour-state methods — and replays the plan on every
    later visit, avoiding the enum chain and three dict probes per step.
    """

    __slots__ = (
        "program",
        "rng",
        "_branch_states",
        "_switch_states",
        "_mem_states",
        "_plans",
        "_pc",
        "_call_stack",
        "executed",
    )

    def __init__(self, program: Program, seed: int = 0):
        self.program = program
        self.rng = random.Random(seed)
        self._branch_states = {
            addr: make_branch_state(spec, self.rng)
            for addr, spec in program.branch_specs.items()
        }
        self._switch_states = {
            addr: make_switch_state(spec, self.rng)
            for addr, spec in program.switch_specs.items()
        }
        self._mem_states = {
            addr: make_mem_state(spec, self.rng)
            for addr, spec in program.mem_specs.items()
        }
        # address -> (instr, code, taken_target, fallthrough, next_taken,
        #             next_address, next_index, switch_targets), built lazily
        # so never-executed instructions cost nothing.
        self._plans: dict[int, tuple] = {}
        self._pc = program.entry
        self._call_stack: list[int] = []
        self.executed = 0

    def _compile_plan(self, instr) -> tuple:
        """Build the execution plan for one static instruction."""
        address = instr.address
        code = instr.flow_code
        if code == FLOW_SOFTWARE_INT:
            code = 0  # software interrupts fall through like plain instructions
        branch_state = self._branch_states.get(address)
        switch_state = self._switch_states.get(address)
        mem_state = self._mem_states.get(address)
        plan = (
            instr,
            code,
            instr.taken_target,
            instr.fallthrough,
            branch_state.next_taken if branch_state is not None else None,
            mem_state.next_address if mem_state is not None else None,
            switch_state.next_index if switch_state is not None else None,
            self.program.switch_targets.get(address),
        )
        self._plans[address] = plan
        return plan

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return self

    def __next__(self) -> DynamicInstruction:
        pc = self._pc
        plan = self._plans.get(pc)
        if plan is None:
            try:
                instr = self.program.instructions[pc]
            except KeyError as exc:
                raise WorkloadError(
                    f"{self.program.name}: control flowed to unmapped address "
                    f"{pc:#x}"
                ) from exc
            plan = self._compile_plan(instr)
        (instr, code, taken_target, fallthrough,
         next_taken, next_mem, next_index, switch_targets) = plan

        if code:
            if code == 1:  # FLOW_COND_BRANCH
                taken = next_taken()
                next_address = taken_target if taken else fallthrough
            elif code == 2:  # FLOW_DIRECT_JUMP
                taken = True
                next_address = taken_target
            elif code == 3:  # FLOW_CALL
                taken = True
                self._call_stack.append(fallthrough)
                next_address = taken_target
            elif code == 4:  # FLOW_RETURN
                taken = True
                if not self._call_stack:
                    raise WorkloadError(
                        f"{self.program.name}: return with empty call stack at "
                        f"{pc:#x}"
                    )
                next_address = self._call_stack.pop()
            else:  # FLOW_INDIRECT_JUMP
                taken = True
                next_address = switch_targets[next_index()]
        else:
            taken = False
            next_address = fallthrough

        mem_addr = next_mem() if next_mem is not None else None

        self._pc = next_address
        self.executed += 1
        return DynamicInstruction(instr, taken, next_address, mem_addr)

    def next_batch(self, count: int) -> list[DynamicInstruction]:
        """Step ``count`` instructions in one call, returning them in order.

        Identical to ``count`` calls of :meth:`__next__`, with the stepping
        state held in locals across the whole batch — the bulk interface
        the simulator's segmentation loop uses (the walker is endless, so
        a full batch is always produced unless control flow faults).
        """
        out: list[DynamicInstruction] = []
        append = out.append
        plans_get = self._plans.get
        call_stack = self._call_stack
        dyn_instr = DynamicInstruction
        pc = self._pc
        try:
            for _ in range(count):
                plan = plans_get(pc)
                if plan is None:
                    try:
                        instr = self.program.instructions[pc]
                    except KeyError as exc:
                        raise WorkloadError(
                            f"{self.program.name}: control flowed to unmapped "
                            f"address {pc:#x}"
                        ) from exc
                    plan = self._compile_plan(instr)
                (instr, code, taken_target, fallthrough,
                 next_taken, next_mem, next_index, switch_targets) = plan

                if code:
                    taken = True
                    if code == 1:  # FLOW_COND_BRANCH
                        taken = next_taken()
                        next_address = taken_target if taken else fallthrough
                    elif code == 2:  # FLOW_DIRECT_JUMP
                        next_address = taken_target
                    elif code == 3:  # FLOW_CALL
                        call_stack.append(fallthrough)
                        next_address = taken_target
                    elif code == 4:  # FLOW_RETURN
                        if not call_stack:
                            raise WorkloadError(
                                f"{self.program.name}: return with empty call "
                                f"stack at {pc:#x}"
                            )
                        next_address = call_stack.pop()
                    else:  # FLOW_INDIRECT_JUMP
                        next_address = switch_targets[next_index()]
                else:
                    taken = False
                    next_address = fallthrough

                mem_addr = next_mem() if next_mem is not None else None
                append(dyn_instr(instr, taken, next_address, mem_addr))
                pc = next_address
        finally:
            self._pc = pc
            self.executed += len(out)
        return out


class InstructionStream:
    """A bounded dynamic stream with arbitrary lookahead.

    ``peek(i)`` returns the instruction ``i`` positions ahead of the cursor
    (``peek(0)`` is the next instruction to execute) or ``None`` past the
    end; ``take()`` consumes and returns the next instruction.
    """

    __slots__ = ("_walker", "_remaining", "_buffer", "consumed")

    def __init__(self, walker: Iterator[DynamicInstruction], limit: int):
        if limit <= 0:
            raise WorkloadError(f"stream limit must be positive, got {limit}")
        self._walker = walker
        self._remaining = limit
        self._buffer: deque[DynamicInstruction] = deque()
        self.consumed = 0

    @property
    def exhausted(self) -> bool:
        """True when no instructions remain to consume."""
        return self._remaining == 0 and not self._buffer

    def _fill(self, count: int) -> None:
        while len(self._buffer) < count and self._remaining > 0:
            try:
                self._buffer.append(next(self._walker))
            except StopIteration:
                self._remaining = 0
                return
            self._remaining -= 1

    def peek(self, index: int = 0) -> DynamicInstruction | None:
        """Return the instruction ``index`` ahead of the cursor, if any."""
        self._fill(index + 1)
        if index < len(self._buffer):
            return self._buffer[index]
        return None

    def take(self) -> DynamicInstruction:
        """Consume and return the next instruction."""
        self._fill(1)
        if not self._buffer:
            raise WorkloadError("take() on exhausted stream")
        self.consumed += 1
        return self._buffer.popleft()

    def take_many(self, count: int) -> list[DynamicInstruction]:
        """Consume up to ``count`` instructions (fewer at stream end)."""
        out = []
        for _ in range(count):
            if self.exhausted:
                break
            out.append(self.take())
        return out

    def take_batch(self, count: int) -> list[DynamicInstruction]:
        """Consume up to ``count`` instructions in one call (bulk take).

        Uses the walker's batch interface when available; an empty list
        means the stream is exhausted.
        """
        out: list[DynamicInstruction] = []
        buffer = self._buffer
        while buffer and len(out) < count:
            out.append(buffer.popleft())
        n = count - len(out)
        if n > self._remaining:
            n = self._remaining
        if n > 0:
            walker = self._walker
            next_batch = getattr(walker, "next_batch", None)
            if next_batch is not None:
                batch = next_batch(n)
            else:
                batch = []
                for _ in range(n):
                    try:
                        batch.append(next(walker))
                    except StopIteration:
                        self._remaining = 0
                        break
            if self._remaining:
                self._remaining -= len(batch)
            out.extend(batch)
        self.consumed += len(out)
        return out

    def drain(self) -> Iterator[DynamicInstruction]:
        """Consume the rest of the stream, in order.

        Equivalent to calling :meth:`take` until :attr:`exhausted`, without
        the per-instruction buffer round-trip — the bulk path used by the
        simulator's segmentation loop.  ``consumed`` and the remaining
        budget stay accurate at every yield, so interleaving ``peek`` or
        ``take`` with a partially-consumed ``drain()`` remains valid.
        """
        buffer = self._buffer
        walker = self._walker
        while True:
            if buffer:
                self.consumed += 1
                yield buffer.popleft()
            elif self._remaining > 0:
                try:
                    dyn = next(walker)
                except StopIteration:
                    self._remaining = 0
                    return
                self._remaining -= 1
                self.consumed += 1
                yield dyn
            else:
                return
