"""The 44-application benchmark roster of the paper (§3.4).

Each application is a named synthetic workload: the suite's base profile,
per-application jitter seeded by the application name, and hand targeting
for the paper's three "killer applications" (flash, wupwise, perlbmk),
which exhibited the highest PARROT improvements by virtue of dense
optimizer-friendly idioms and strongly repetitive hot traces.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import (
    SUITE_DOTNET,
    SUITE_MULTIMEDIA,
    SUITE_OFFICE,
    SUITE_SPECFP,
    SUITE_SPECINT,
    WorkloadProfile,
    jitter_profile,
    suite_profile,
)

#: Application rosters, mirroring §3.4 (44 applications in 5 suites).
SPECINT_APPS = (
    "bzip", "crafty", "eon", "gap", "gcc", "gzip",
    "parser", "perlbmk", "twolf", "vortex", "vpr",
)
SPECFP_APPS = (
    "ammp", "apsi", "art", "equake", "facerec", "fma3d",
    "lucas", "mesa", "sixtrack", "swim", "wupwise",
)
OFFICE_APPS = ("excel", "office", "powerpoint", "virusscan", "winzip", "word")
MULTIMEDIA_APPS = (
    "flash", "photoshop", "dragon", "lightwave", "quake3",
    "3dsmax-light", "3dsmax-aniso", "3dsmax-raster", "3dsmax-geom",
    "flask-mpeg4-a", "flask-mpeg4-b",
)
DOTNET_APPS = (
    "dotnet-image", "dotnet-num1", "dotnet-num2",
    "dotnet-phong1", "dotnet-phong2",
)

#: The paper's highest-improvement applications (one per headline suite).
KILLER_APPS = ("flash", "wupwise", "perlbmk")

_SUITE_OF_APP: dict[str, str] = {}
for _name in SPECINT_APPS:
    _SUITE_OF_APP[_name] = SUITE_SPECINT
for _name in SPECFP_APPS:
    _SUITE_OF_APP[_name] = SUITE_SPECFP
for _name in OFFICE_APPS:
    _SUITE_OF_APP[_name] = SUITE_OFFICE
for _name in MULTIMEDIA_APPS:
    _SUITE_OF_APP[_name] = SUITE_MULTIMEDIA
for _name in DOTNET_APPS:
    _SUITE_OF_APP[_name] = SUITE_DOTNET

ALL_APPS = (
    SPECINT_APPS + SPECFP_APPS + OFFICE_APPS + MULTIMEDIA_APPS + DOTNET_APPS
)


@dataclass(frozen=True, slots=True)
class Application:
    """One named benchmark application: a profile plus a build seed."""

    name: str
    suite: str
    profile: WorkloadProfile
    seed: int

    def build(self) -> SyntheticWorkload:
        """Synthesise (or retrieve from cache) the application's workload."""
        return _build_workload(self.name)


def app_seed(name: str) -> int:
    """Stable, name-derived seed so every session builds identical programs."""
    return zlib.crc32(name.encode("utf-8")) & 0x7FFF_FFFF


def _killer_overrides(name: str, profile: WorkloadProfile) -> WorkloadProfile:
    """Strengthen the traits that made each killer app a top improver."""
    if name == "flash":
        # Multimedia killer: extremely SIMD- and fusion-friendly kernels.
        return profile.derive(
            pairable_density=0.50,
            fusable_density=0.32,
            const_density=0.16,
            dead_write_density=0.12,
            hot_trip_range=(96, 384),
            irregular_branch_frac=0.06,
        )
    if name == "wupwise":
        # SpecFP killer: long, highly repetitive unrollable loops.
        return profile.derive(
            hot_trip_range=(256, 1024),
            n_hot_kernels=2,
            pairable_density=0.40,
            fusable_density=0.24,
            irregular_branch_frac=0.03,
            p_cold=0.01,
        )
    if name == "perlbmk":
        # SpecInt killer: a few dominant, optimization-dense hot paths.
        return profile.derive(
            n_hot_kernels=3,
            hot_trip_range=(24, 96),
            irregular_branch_frac=0.12,
            fusable_density=0.34,
            const_density=0.20,
            dead_write_density=0.14,
            p_cold=0.04,
        )
    return profile


def application(name: str) -> Application:
    """Look up one application by name; raises ``KeyError`` if unknown."""
    suite = _SUITE_OF_APP[name]
    seed = app_seed(name)
    profile = jitter_profile(suite_profile(suite, name), seed)
    profile = _killer_overrides(name, profile)
    return Application(name=name, suite=suite, profile=profile, seed=seed)


def benchmark_suite(
    suites: tuple[str, ...] | None = None,
    *,
    max_apps: int | None = None,
) -> list[Application]:
    """The full 44-app roster (§3.4), optionally filtered.

    ``suites`` restricts to the named suites; ``max_apps`` takes a balanced
    prefix (round-robin across suites) for quick runs.
    """
    apps = [application(name) for name in ALL_APPS]
    if suites is not None:
        apps = [a for a in apps if a.suite in suites]
    if max_apps is not None and max_apps < len(apps):
        by_suite: dict[str, list[Application]] = {}
        for app in apps:
            by_suite.setdefault(app.suite, []).append(app)
        picked: list[Application] = []
        while len(picked) < max_apps and any(by_suite.values()):
            for suite_apps in by_suite.values():
                if suite_apps and len(picked) < max_apps:
                    picked.append(suite_apps.pop(0))
        apps = picked
    return apps


def killer_applications() -> list[Application]:
    """The paper's three highest-improvement applications."""
    return [application(name) for name in KILLER_APPS]


@lru_cache(maxsize=64)
def _build_workload(name: str) -> SyntheticWorkload:
    app = application(name)
    return SyntheticWorkload(app.profile, seed=app.seed)
