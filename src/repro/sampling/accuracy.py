"""Differential accuracy harness: sampled estimates vs. full detail.

One :class:`AccuracyHarness` owns the expensive side of sampling
validation — the full-detail reference runs — and evaluates any
:class:`~repro.sampling.config.SamplingConfig` against them, reporting
per-metric point errors, confidence-interval coverage (overall and, for
adaptive runs, per phase) and wall-clock speedup.  It is the single
implementation shared by the ``tools/validate_sampling.py`` CLI harness,
the accuracy-regression suite (``tests/test_sampling_accuracy.py``), the
CI ``adaptive-sampling-smoke`` job and the benchmark that archives the
speedup/error frontier into ``BENCH_grid.json``
(``benchmarks/test_perf_sampling.py``) — the numbers in the EXPERIMENTS.md
sampling sections all come from here.

Baselines are like-for-like: the full-detail reference runs on the *same*
source (generator stream or compiled trace artifact) and the same
execution backend as the sampled run it is compared against, so the
reported speedup isolates the sampling regime and never conflates it with
artifact-replay or backend acceleration.  Estimates are deterministic —
only the wall-clock timings vary between repeats, so ``repeat`` takes a
best-of timing while the accuracy numbers come from the first run.

Speedup protocol: every sampling speedup this repository has quoted since
the PR 4 fixed-interval table was measured fresh-process — the full-detail
reference is the first simulation the interpreter runs (paying the
process-cold setup a standalone run actually pays: prewarm snapshot
build, plan/flyweight memo population), while sampled runs amortize that
warm state, exactly as the engine's long-lived workers do.  Running the
harness inside an already-warm process (the test suite) silently breaks
that baseline — earlier test modules pre-build the memos, making the
reference look ~40% faster than any standalone run ever is.
``cold_reference=True`` restores the canonical protocol there by timing
each full-detail reference in a fresh interpreter (the result object
still comes from an in-process run; the two are bit-identical by
determinism).
"""

from __future__ import annotations

import gc
import math
import subprocess
import sys
import time
from dataclasses import dataclass

from repro.core.simulator import ParrotSimulator, RunOptions
from repro.errors import ConfigurationError
from repro.models.configs import model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling.config import SamplingConfig
from repro.sampling.estimator import SampledEstimate
from repro.workloads.suite import application
from repro.workloads.tracefile import compile_artifact

#: The (application, model) pairs the acceptance criteria are phrased
#: over; every accuracy/speedup number quoted in EXPERIMENTS.md uses them.
GOLDEN_PAIRS = (("swim", "TON"), ("gcc", "N"), ("eon", "TOW"))

#: Stream length of the golden-pair regression runs.
GOLDEN_LENGTH = 200_000

#: Per-metric relative point-error bounds the regression suite enforces
#: (|estimate - full| / full).
ERROR_BOUNDS = {"ipc": 0.02, "epi": 0.05}

#: Aggregate wall-clock speedup floor of the tuned adaptive regime over
#: full detail on the golden pairs (sum of full times / sum of sampled
#: times, like-for-like source and backend).
ADAPTIVE_SPEEDUP_FLOOR = 12.0


def parse_pairs(spec: str) -> list[tuple[str, str]]:
    """Parse a ``app:model,app:model,...`` pair list."""
    pairs = []
    for item in spec.split(","):
        parts = item.strip().split(":")
        if len(parts) != 2 or not all(parts):
            raise ConfigurationError(
                f"bad pair {item!r} in {spec!r}: expected 'app:model'"
            )
        pairs.append((parts[0], parts[1]))
    if not pairs:
        raise ConfigurationError(f"no pairs in {spec!r}")
    return pairs


@dataclass(frozen=True, slots=True)
class PairAccuracy:
    """One golden pair's sampled-vs-full differential result."""

    app: str
    model: str
    length: int
    backend: str
    source: str
    sampling: SamplingConfig
    full_ipc: float
    full_epi: float
    estimate: SampledEstimate
    full_seconds: float
    sampled_seconds: float

    @property
    def ipc_error(self) -> float:
        """Relative IPC point error of the estimate mean."""
        return abs(self.estimate.ipc.mean - self.full_ipc) / self.full_ipc

    @property
    def epi_error(self) -> float:
        """Relative EPI point error of the estimate mean."""
        return abs(self.estimate.epi.mean - self.full_epi) / self.full_epi

    @property
    def ipc_in_ci(self) -> bool:
        """Whether the full-detail IPC lies inside the reported interval."""
        return self.estimate.ipc.contains(self.full_ipc)

    @property
    def epi_in_ci(self) -> bool:
        """Whether the full-detail EPI lies inside the reported interval."""
        return self.estimate.epi.contains(self.full_epi)

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of the sampled run over full detail."""
        if not self.sampled_seconds:
            return math.inf
        return self.full_seconds / self.sampled_seconds

    @property
    def measured_intervals(self) -> int:
        """Detailed intervals actually simulated."""
        return len(self.estimate.intervals)

    @property
    def phase_count(self) -> int:
        """Classified phases of an adaptive run (0 in fixed mode)."""
        return len(self.estimate.phases)

    def within(self, bounds: dict[str, float] = ERROR_BOUNDS) -> bool:
        """True when every bounded metric's point error is in bounds."""
        return (self.ipc_error <= bounds["ipc"]
                and self.epi_error <= bounds["epi"])

    def to_row(self) -> dict:
        """Flat JSON-ready row for frontier archives (``BENCH_grid.json``)."""
        return {
            "app": self.app,
            "model": self.model,
            "length": self.length,
            "backend": self.backend,
            "source": self.source,
            "mode": self.sampling.mode,
            "sampling": self.sampling.fingerprint(),
            "full_ipc": self.full_ipc,
            "full_epi": self.full_epi,
            "est_ipc": self.estimate.ipc.mean,
            "est_epi": self.estimate.epi.mean,
            "ipc_error": self.ipc_error,
            "epi_error": self.epi_error,
            "ipc_in_ci": self.ipc_in_ci,
            "epi_in_ci": self.epi_in_ci,
            "intervals": self.measured_intervals,
            "phases": self.phase_count,
            "full_seconds": self.full_seconds,
            "sampled_seconds": self.sampled_seconds,
            "speedup": self.speedup,
        }

    def format(self) -> str:
        """Multi-line human report of this pair (harness output)."""
        est = self.estimate
        lines = [
            f"{self.app}/{self.model} [{self.source}/{self.backend}]:",
            (f"  intervals {self.measured_intervals:3d}"
             + (f" over {self.phase_count} phases"
                if est.mode == "adaptive" else "")
             + f"   speedup {self.speedup:5.2f}x   "
             f"({self.full_seconds:.2f}s full, "
             f"{self.sampled_seconds:.2f}s sampled)"),
            (f"  IPC  full {self.full_ipc:7.4f}   sampled "
             f"{est.ipc.format()}   err {self.ipc_error:6.2%}   "
             f"{'ok' if self.ipc_in_ci else 'OUTSIDE CI'}"),
            (f"  EPI  full {self.full_epi:7.4f}   sampled "
             f"{est.epi.format()}   err {self.epi_error:6.2%}   "
             f"{'ok' if self.epi_in_ci else 'OUTSIDE CI'}"),
        ]
        for phase in est.phases:
            lines.append(
                f"    phase {phase.phase}: weight {phase.weight:5.1%}  "
                f"measured {phase.measured}/{phase.periods} periods  "
                f"ipc {phase.ipc.mean:.4f}  epi {phase.epi.mean:.4f}  "
                f"{'closed' if phase.closed else 'OPEN'}"
            )
        return "\n".join(lines)


class AccuracyHarness:
    """Golden-pair evaluation with cached full-detail references.

    ``source="generator"`` streams each application live (the canonical
    user-facing path); ``source="artifact"`` compiles each pair's stream
    into a trace artifact under ``root`` once and replays it for both the
    reference and the sampled run — the regression suite uses artifacts so
    its many configurations share one compile.  ``backend`` is an
    :class:`~repro.pipeline.columnar.ExecutionBackend` (or ``None`` for
    the scalar default) applied to both sides of every comparison.
    ``cold_reference=True`` times each full-detail reference in a fresh
    interpreter instead of in-process (see the module docstring on the
    speedup protocol); the reference *values* always come from an
    in-process run.
    """

    def __init__(self, *, length: int = GOLDEN_LENGTH, backend=None,
                 source: str = "generator", root=None, repeat: int = 1,
                 cold_reference: bool = False):
        if source not in ("generator", "artifact"):
            raise ConfigurationError(
                f"source must be 'generator' or 'artifact', got {source!r}"
            )
        if source == "artifact" and root is None:
            raise ConfigurationError(
                "artifact source needs a root directory for compiled traces"
            )
        if repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
        self.length = length
        self.backend = backend if backend is not None else ExecutionBackend.SCALAR
        self.source = source
        self.root = root
        self.repeat = repeat
        self.cold_reference = cold_reference
        self._artifacts: dict[str, object] = {}
        self._references: dict[tuple[str, str], tuple[object, float]] = {}

    @property
    def backend_name(self) -> str:
        return self.backend.value

    def _source_for(self, app_name: str):
        """The simulation source of one app under the configured mode."""
        if self.source == "generator":
            return application(app_name)
        artifact = self._artifacts.get(app_name)
        if artifact is None:
            app = application(app_name)
            artifact = compile_artifact(app, app.seed, self.length,
                                        root=self.root)
            self._artifacts[app_name] = artifact
        return artifact

    def _run(self, app_name: str, model_name: str,
             sampling: SamplingConfig | None):
        """One timed simulation; returns ``(result, best_seconds)``."""
        source = self._source_for(app_name)
        options = RunOptions(sampling=sampling, backend=self.backend,
                             estimate=sampling is not None)
        kwargs = {} if self.source == "artifact" else {"length": self.length}
        result = None
        best = math.inf
        # Collector pauses land disproportionately on the short sampled
        # runs (a long-lived test process carries a large live heap), so
        # the timed region runs with automatic GC off — same policy as
        # pytest-benchmark.
        gc_was_enabled = gc.isenabled()
        try:
            for _ in range(self.repeat):
                sim = ParrotSimulator(model_config(model_name))
                gc.collect()
                gc.disable()
                t0 = time.perf_counter()
                run = sim.simulate(source, options, **kwargs)
                best = min(best, time.perf_counter() - t0)
                if gc_was_enabled:
                    gc.enable()
                if result is None:
                    result = run
        finally:
            if gc_was_enabled:
                gc.enable()
        return result, best

    def _standalone_seconds(self, app_name: str, model_name: str) -> float:
        """Time the pair's full-detail run in a fresh interpreter.

        Reproduces the fresh-process baseline (see the module docstring)
        from inside a warm process: the child pays exactly the setup a
        standalone run pays.  Best of ``repeat`` child processes; only
        the ``simulate()`` call is inside the timed region.
        """
        if self.source == "artifact":
            build = (
                f"from repro.workloads.tracefile import compile_artifact\n"
                f"app = application({app_name!r})\n"
                f"source = compile_artifact(app, app.seed, {self.length}, "
                f"root={str(self.root)!r})\n"
            )
            kwargs = ""
        else:
            build = f"source = application({app_name!r})\n"
            kwargs = f", length={self.length}"
        script = (
            "import sys, time\n"
            f"sys.path[:0] = {sys.path!r}\n"
            "from repro.core.simulator import ParrotSimulator, RunOptions\n"
            "from repro.models.configs import model_config\n"
            "from repro.pipeline.columnar import ExecutionBackend\n"
            "from repro.workloads.suite import application\n"
            + build
            + f"options = RunOptions("
              f"backend=ExecutionBackend({self.backend.value!r}))\n"
              f"sim = ParrotSimulator(model_config({model_name!r}))\n"
              "start = time.perf_counter()\n"
              f"sim.simulate(source, options{kwargs})\n"
              "print(time.perf_counter() - start)\n"
        )
        best = math.inf
        for _ in range(self.repeat):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, timeout=600,
            )
            best = min(best, float(proc.stdout.strip().splitlines()[-1]))
        return best

    def reference(self, app_name: str, model_name: str):
        """The pair's full-detail run; cached ``(result, seconds)``."""
        key = (app_name, model_name)
        cached = self._references.get(key)
        if cached is None:
            result, seconds = self._run(app_name, model_name, None)
            if self.cold_reference:
                seconds = self._standalone_seconds(app_name, model_name)
            cached = (result, seconds)
            self._references[key] = cached
        return cached

    def evaluate(self, app_name: str, model_name: str,
                 sampling: SamplingConfig) -> PairAccuracy:
        """Run one pair sampled and compare against its full reference."""
        full, full_seconds = self.reference(app_name, model_name)
        sampled, sampled_seconds = self._run(app_name, model_name, sampling)
        return PairAccuracy(
            app=app_name,
            model=model_name,
            length=self.length,
            backend=self.backend_name,
            source=self.source,
            sampling=sampling,
            full_ipc=full.instructions / full.cycles,
            full_epi=full.energy.total / full.instructions,
            estimate=sampled.estimate,
            full_seconds=full_seconds,
            sampled_seconds=sampled_seconds,
        )

    def sweep(self, sampling: SamplingConfig,
              pairs=GOLDEN_PAIRS) -> list[PairAccuracy]:
        """Evaluate ``sampling`` over every pair, in order."""
        return [self.evaluate(app, model, sampling) for app, model in pairs]


def aggregate_speedup(results: list[PairAccuracy]) -> float:
    """Pooled wall-clock speedup: total full time over total sampled time.

    The regression gate uses the pooled ratio rather than a per-pair
    minimum — per-pair wall-clock ratios at ~100ms denominators are at the
    mercy of scheduler noise, while the pooled ratio amortises it.
    """
    sampled = sum(r.sampled_seconds for r in results)
    if not sampled:
        return math.inf
    return sum(r.full_seconds for r in results) / sampled


def format_report(results: list[PairAccuracy]) -> str:
    """The harness's full text report over evaluated pairs."""
    blocks = [result.format() for result in results]
    blocks.append(
        f"aggregate speedup {aggregate_speedup(results):.2f}x over "
        f"{len(results)} pairs"
    )
    return "\n".join(blocks)
