"""Functional warmup: keep machine state live across a fast-forward.

Long-lived microarchitectural state — cache contents, branch-predictor
tables, the trace predictor's path history, the hot/blazing filters and
the trace cache itself — decays into staleness while the sampler
fast-forwards.  Two mechanisms keep it live:

* :meth:`WarmupPolicy.functional_skip` — functional warming over the tail
  of each gap (SMARTS-style, applied to the ``func_warm`` suffix): the
  allocation-free skip walk probes the icache once per line, the dcache
  once per access and trains the branch predictor on every CTI.  The L1s
  and the gshare tables re-converge within a few thousand instructions,
  so warming only the suffix recovers nearly all the accuracy of
  always-on warming at a fraction of the cost; the slow-decaying L2/BTB
  survive the plain-skipped front of the gap on their own.
* :meth:`WarmupPolicy.warm` — a short window before each detailed
  interval that additionally replays the *trace machinery*: segment
  selection, trace prediction, hot-execution accounting and the
  background phases, re-synchronising the trace predictor's path history
  and the filters right before measurement begins.

The warmup clock: background phases (construction latency, optimizer
occupancy, trace aging) compare against the core's cycle clock, which
does not advance while fast-forwarding.  ``warm`` therefore advances a
synthetic clock — ``cpi`` estimated cycles per skipped instruction — so
in-flight construction and optimization complete across gaps exactly as
they would in a full-detail run (a frozen clock would starve the
optimizer and never age traces).

Statistic shielding: the warmed components mutate counters that feed the
simulation result (hierarchy events, trace-unit stats, background energy
events, trace-predictor stats).  ``warm()`` swaps each of them for a
throwaway of the same type for the duration of the window and restores
the originals afterwards, so warmup traffic is structurally invisible to
the measurement — the same contract as
:meth:`~repro.memory.hierarchy.MemoryHierarchy.prewarm`.  (The
functional-skip path needs no shielding: sampled measurements are
snapshot *deltas* around each detailed interval, and skip warming happens
entirely outside them.)

The module is deliberately import-free: every collaborator arrives as a
constructor argument and throwaways are built with ``type(obj)()``, so the
warmup path can never create an import cycle with the machine modules.
"""

from __future__ import annotations

#: Instructions pulled from the stream per bulk step of the warmup loop.
_WARMUP_BATCH = 1024


class WarmupPolicy:
    """Warm one assembled machine's long-lived state from a dynamic stream."""

    __slots__ = ("hierarchy", "bpred", "tpred", "background", "core",
                 "_line_shift")

    def __init__(self, hierarchy, bpred, tpred=None, background=None,
                 core=None):
        self.hierarchy = hierarchy
        self.bpred = bpred
        self.tpred = tpred
        self.background = background
        self.core = core
        self._line_shift = hierarchy.config.l1i.line_bytes.bit_length() - 1

    def functional_skip(self, stream, count: int) -> int:
        """Fast-forward ``count`` instructions with always-on warming.

        Returns the number of instructions actually skipped.
        """
        return stream.skip(count, warm=(
            self.hierarchy.warm_fetch,
            self.hierarchy.warm_data,
            self.bpred.warm_train,
            self._line_shift,
        ))

    def warm(self, stream, count: int, selector, cpi: float = 1.0) -> int:
        """Consume up to ``count`` instructions from ``stream``, training
        caches, predictors and the trace machinery; returns the number
        actually consumed.

        ``selector`` segments the warmup stream; it is shared with the
        detailed interval that follows, so segment boundaries (and the
        trace predictor's path history) flow continuously from warmup into
        measurement.  ``cpi`` paces the synthetic warmup clock the
        background phases observe.
        """
        hierarchy = self.hierarchy
        bpred = self.bpred
        fetch = hierarchy.warm_fetch
        touch_data = hierarchy.warm_data
        predict_and_train = bpred.warm_train
        advance = selector.advance
        train_segment = self._train_segment
        line_shift = self._line_shift
        clock = self.core.cycles if self.core is not None else 0.0

        saved = self._shield()
        consumed = 0
        last_line = -1
        try:
            consumed = self._warm_columns(stream, count, selector, cpi, clock)
            while consumed < count:
                batch = stream.take_batch(min(_WARMUP_BATCH, count - consumed))
                if not batch:
                    break
                for dyn in batch:
                    consumed += 1
                    instr = dyn.instr
                    line = instr.address >> line_shift
                    if line != last_line:
                        fetch(instr.address)
                        last_line = line
                    if dyn.mem_addr is not None:
                        # A line touch is a line touch: loads and stores
                        # install identically, and the (shielded) event
                        # split is irrelevant here.
                        touch_data(dyn.mem_addr)
                    if instr.is_cti:
                        predict_and_train(instr, dyn.taken, dyn.next_address)
                    completed = advance(dyn)
                    if completed is not None:
                        now = clock + consumed * cpi
                        for segment in completed:
                            train_segment(segment, now)
        finally:
            self._unshield(saved)
        return consumed

    def _warm_columns(self, stream, count: int, selector, cpi: float,
                      clock: float) -> int:
        """Columnar fast path of :meth:`warm` over recorded artifact rows.

        When the stream replays a compiled artifact, the window is warmed
        from raw column slices: the warming side effects (icache probe
        per new line, dcache touch per access, predictor training per
        CTI) replay without decoding instruction objects, and segment
        selection runs through the selector's columnar scanner, which
        hands its in-progress state to ``selector`` at the end of the
        window.  Warming effects and trace-machinery training touch
        disjoint components, so batching them per column block is
        state-identical to the reference interleaved loop — the synthetic
        clock each completed segment trains against depends only on its
        stream position, which the scanner reports exactly.

        Returns the number of instructions consumed; ``0`` means the fast
        path does not apply (generating walker, buffered lookahead, or a
        selector that already holds state) and the caller must run the
        reference loop.
        """
        consume_raw = getattr(stream, "consume_raw", None)
        if (consume_raw is None or count <= 0
                or not getattr(selector, "pristine", False)):
            return 0
        hierarchy = self.hierarchy
        fetch = hierarchy.warm_fetch
        touch_data = hierarchy.warm_data
        predict_and_train = self.bpred.warm_train
        train_segment = self._train_segment
        line_shift = self._line_shift
        consumed = 0
        last_line = -1
        scanner = None

        def on_segment(segment, position):
            train_segment(segment, clock + position * cpi)

        while consumed < count:
            raw = consume_raw(count - consumed)
            if raw is None:
                break
            walker, lo, index, taken, nxt, mem = raw
            if not index:
                break
            if scanner is None:
                instructions, addresses, flow, uop_counts = (
                    walker.select_tables()
                )
                scan_tables = getattr(walker, "scan_tables", None)
                scanner = selector.columnar_scanner(
                    walker.materialize, flow, uop_counts, addresses,
                    scan=(
                        scan_tables() if scan_tables is not None else None
                    ),
                )
            last_line = walker.warm_effects(
                lo, lo + len(index), fetch, touch_data, predict_and_train,
                line_shift, last_line,
            )
            scanner.consume(lo, index, taken, nxt, consumed, on_segment)
            consumed += len(index)
        if scanner is not None:
            scanner.transfer(selector)
        return consumed

    # -- trace-machinery training ------------------------------------------

    def _train_segment(self, segment, now: float) -> None:
        """Functionally replay the fetch selector + background phases.

        Mirrors the simulator's segment loop without the timing core: the
        trace predictor predicts and trains, a correct confident prediction
        of a resident trace counts as a hot execution (feeding the blazing
        filter and, transitively, the optimizer), and every committed
        segment trains the hot filter / construction path — all against
        the advancing warmup clock ``now``.
        """
        tpred = self.tpred
        background = self.background
        if tpred is not None:
            predicted = tpred.predict()
            if predicted is not None and background is not None:
                trace = background.trace_cache.lookup(predicted)
                if trace is not None and predicted == segment.tid:
                    trace.exec_count += 1
                    background.after_hot_execution(trace, now)
            tpred.train(segment.tid)
        if background is not None:
            background.after_commit(segment, now)

    # -- statistic shielding ------------------------------------------------

    def _shield(self) -> tuple:
        """Swap every result-feeding counter for a same-typed throwaway."""
        hierarchy, tpred, background = self.hierarchy, self.tpred, self.background
        saved = (
            hierarchy.events,
            tpred.stats if tpred is not None else None,
            background.events if background is not None else None,
            background.stats if background is not None else None,
        )
        hierarchy.events = type(hierarchy.events)()
        if tpred is not None:
            tpred.stats = type(tpred.stats)()
        if background is not None:
            # Settle batched filter accesses into the *real* counters
            # before swapping them out, so nothing leaks across the shield.
            background.flush_filter_events()
            background.events = type(background.events)()
            background.stats = type(background.stats)()
        return saved

    def _unshield(self, saved: tuple) -> None:
        """Restore the counters swapped out by :meth:`_shield`."""
        h_events, t_stats, b_events, b_stats = saved
        self.hierarchy.events = h_events
        if self.tpred is not None:
            self.tpred.stats = t_stats
        if self.background is not None:
            # Warmup-window accesses still pending fold into the throwaway.
            self.background.flush_filter_events()
            self.background.events = b_events
            self.background.stats = b_stats
