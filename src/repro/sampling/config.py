"""Sampled-simulation configuration.

One :class:`SamplingConfig` describes the statistical interval-sampling
regime of a run: how many instructions each **detailed interval** simulates
at full fidelity (timing core + energy accounting), how many instructions
are **fast-forwarded** between intervals (architectural state only), how
long the **functionally warmed** tail of the fast-forward is (caches and
branch predictor train while skipping), and how long the **trace warmup**
window before each detailed interval is (the trace machinery — selection,
prediction, filters, background phases — replays functionally).  ``None``
everywhere in the code base means *full detail* — the historical,
bit-identical simulation mode.

The config is a frozen, hashable dataclass so it can ride inside
:class:`~repro.experiments.engine.Scale`, key the shared-runner registry,
and fingerprint the persistent result store (sampled and full-detail runs
must never collide under one store key).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Confidence levels with a Student-t table in the estimator.
SUPPORTED_CONFIDENCES = (0.90, 0.95, 0.99)

#: Spellings accepted by :meth:`SamplingConfig.parse`.
_OFF_WORDS = ("off", "none", "no", "false", "0", "full")
_ON_WORDS = ("on", "default", "yes", "true", "1")

#: Sampling modes: ``fixed`` measures every period (PR 4 behaviour),
#: ``adaptive`` classifies execution phases online and reuses one
#: representative detailed interval per recurring phase.
SAMPLING_MODES = ("fixed", "adaptive")


@dataclass(frozen=True, slots=True)
class SamplingConfig:
    """Interval-sampling knobs of one sampled simulation.

    ``detail`` instructions are simulated in full detail out of every
    ``detail + gap`` instruction period.  Each gap ends in up to
    ``func_warm`` instructions of functionally warmed fast-forward
    (icache/dcache/branch-predictor training while skipping) followed by
    ``warmup`` instructions of trace-machinery warmup (segment selection,
    trace prediction, filters and background phases replayed without
    timing).  ``confidence`` selects the confidence level of the reported
    per-metric intervals, and ``min_intervals`` is the smallest number of
    detailed intervals worth estimating from — shorter runs fall back to
    full detail.

    The defaults were tuned on the golden apps (see EXPERIMENTS.md): at
    200k instructions they measure ~6.5% of the stream in detail and land
    within a few percent of the full-detail IPC and energy at ~5x the
    speed.

    ``mode="adaptive"`` layers phase-aware scheduling on the same period
    structure: each period's fast-forward lead collects a branch-target
    signature, an online classifier groups periods into phases
    (``phase_threshold`` normalized-Manhattan distance, ``max_phases``-deep
    LRU table), and a phase only spends detail until its IPC/EPI
    confidence intervals close — ``min_phase_intervals`` samples minimum,
    then reuse while the relative half-widths stay within ``ipc_target``
    and ``epi_target``.  Recurring phases therefore skip their warmup and
    detail windows entirely, which is where the adaptive speedup over
    fixed-interval sampling comes from.  A closed phase is still
    re-measured every ``phase_refresh``-th recurrence (``0`` disables the
    refresh): the fresh sample both bounds the bias of reuse under slow
    behavioural drift the signature cannot see (cache warm-up, working-set
    growth) and is what lets a drifted phase's interval reopen and
    escalate the phase back to detail.

    The adaptive-only knob defaults (``ipc_target``, ``epi_target``,
    ``phase_refresh``) carry the values tuned on the golden pairs; the
    shared interval knobs keep the fixed-mode defaults, so prefer
    :meth:`adaptive` over ``SamplingConfig(mode="adaptive")`` — the
    classmethod also applies the tuned warmup and confidence level.
    """

    detail: int = 1000
    gap: int = 14000
    warmup: int = 1500
    func_warm: int = 4000
    confidence: float = 0.95
    min_intervals: int = 4
    mode: str = "fixed"
    phase_threshold: float = 0.5
    max_phases: int = 32
    ipc_target: float = 0.2
    epi_target: float = 0.15
    min_phase_intervals: int = 2
    phase_refresh: int = 4

    def __post_init__(self) -> None:
        if self.detail < 1:
            raise ConfigurationError(
                f"sampling detail interval must be >= 1, got {self.detail}"
            )
        if self.gap < 1:
            raise ConfigurationError(
                f"sampling gap must be >= 1, got {self.gap}"
            )
        if not 0 <= self.warmup <= self.gap:
            raise ConfigurationError(
                f"sampling warmup must lie within the gap "
                f"(0 <= {self.warmup} <= {self.gap})"
            )
        if self.func_warm < 0:
            raise ConfigurationError(
                f"sampling func_warm must be >= 0, got {self.func_warm}"
            )
        if self.warmup + self.func_warm > self.gap:
            raise ConfigurationError(
                f"sampling warmup ({self.warmup}) + func_warm "
                f"({self.func_warm}) must fit in the gap ({self.gap})"
            )
        if self.confidence not in SUPPORTED_CONFIDENCES:
            raise ConfigurationError(
                f"sampling confidence must be one of "
                f"{SUPPORTED_CONFIDENCES}, got {self.confidence}"
            )
        if self.min_intervals < 2:
            raise ConfigurationError(
                f"min_intervals must be >= 2 (a confidence interval needs "
                f"at least two samples), got {self.min_intervals}"
            )
        if self.mode not in SAMPLING_MODES:
            raise ConfigurationError(
                f"sampling mode must be one of {SAMPLING_MODES}, "
                f"got {self.mode!r}"
            )
        if not 0.0 <= self.phase_threshold <= 2.0:
            raise ConfigurationError(
                f"phase_threshold must lie in [0, 2] (normalized Manhattan "
                f"distance range), got {self.phase_threshold}"
            )
        if self.max_phases < 1:
            raise ConfigurationError(
                f"max_phases must be >= 1, got {self.max_phases}"
            )
        if self.ipc_target <= 0 or self.epi_target <= 0:
            raise ConfigurationError(
                f"confidence targets must be positive, got "
                f"ipc_target={self.ipc_target}, epi_target={self.epi_target}"
            )
        if self.min_phase_intervals < 2:
            raise ConfigurationError(
                f"min_phase_intervals must be >= 2 (a per-phase confidence "
                f"interval needs at least two samples), "
                f"got {self.min_phase_intervals}"
            )
        if self.phase_refresh < 0:
            raise ConfigurationError(
                f"phase_refresh must be >= 0 (0 disables refresh), "
                f"got {self.phase_refresh}"
            )

    @property
    def period(self) -> int:
        """Instructions covered by one (gap + detail) sampling period."""
        return self.detail + self.gap

    @property
    def detail_fraction(self) -> float:
        """Fraction of the stream simulated in full detail."""
        return self.detail / self.period

    def fingerprint(self) -> str:
        """Deterministic text form, mixed into the result-store key.

        Fixed-mode fingerprints are byte-identical to the pre-adaptive
        format, so existing store entries stay valid; adaptive mode
        appends every knob the phase scheduler's output depends on.
        """
        base = (
            f"detail={self.detail},gap={self.gap},warmup={self.warmup},"
            f"func_warm={self.func_warm},confidence={self.confidence},"
            f"min_intervals={self.min_intervals}"
        )
        if self.mode == "fixed":
            return base
        return (
            f"{base},mode={self.mode},"
            f"phase_threshold={self.phase_threshold},"
            f"max_phases={self.max_phases},"
            f"ipc_target={self.ipc_target},epi_target={self.epi_target},"
            f"min_phase_intervals={self.min_phase_intervals},"
            f"phase_refresh={self.phase_refresh}"
        )

    def as_fixed(self) -> "SamplingConfig":
        """This regime with the phase scheduler disabled.

        The fallback target when an adaptive run degrades: same intervals,
        same confidence — plain periodic sampling.
        """
        if self.mode == "fixed":
            return self
        return dataclasses.replace(self, mode="fixed")

    @classmethod
    def adaptive(cls, **overrides) -> "SamplingConfig":
        """The tuned phase-aware regime (see EXPERIMENTS.md).

        Tuned on the golden pairs at 200k instructions: a longer trace
        warmup (3000) than the fixed defaults buys per-phase accuracy,
        while the 90% confidence level and the relaxed per-phase targets
        (20% IPC / 15% EPI relative half-width) let recurring phases close
        after ``min_phase_intervals`` samples — which is where the >12x
        speedup over full detail comes from.  Keyword arguments override
        individual knobs; ``mode`` stays ``"adaptive"``.
        """
        tuned = dict(mode="adaptive", warmup=3000, confidence=0.90)
        tuned.update(overrides)
        tuned["mode"] = "adaptive"
        return cls(**tuned)

    @classmethod
    def parse(cls, text: str | None) -> "SamplingConfig | None":
        """Parse a CLI/environment sampling spec.

        ``off``/``none``/``0`` (or ``None``) disable sampling; ``on`` (and
        friends) select the defaults; ``DETAIL:GAP:WARMUP`` sets the main
        knobs explicitly, optionally followed by ``:FUNC_WARM`` (an
        integer) and/or ``:CONFIDENCE`` (a float containing a dot), e.g.
        ``2000:18000:1000``, ``1000:14000:1500:4000`` or
        ``1000:14000:1500:4000:0.99``.

        An ``adaptive`` prefix selects phase-aware scheduling: bare
        ``adaptive`` takes the tuned :meth:`adaptive` defaults,
        ``adaptive:DETAIL:GAP:WARMUP...`` accepts the same interval
        grammar as above (an unspecified confidence defaults to the tuned
        0.90 rather than the fixed-mode 0.95).  The phase knobs
        (``phase_threshold``, ``max_phases``, confidence targets) have no
        positional spelling — construct a :class:`SamplingConfig` directly
        to tune them.
        """
        if text is None:
            return None
        spec = text.strip().lower()
        if spec in _OFF_WORDS or not spec:
            return None
        if spec in _ON_WORDS:
            return cls()
        mode = "fixed"
        if spec == "adaptive":
            return cls.adaptive()
        if spec.startswith("adaptive:"):
            mode = "adaptive"
            spec = spec[len("adaptive:"):]
            if spec in _ON_WORDS:
                return cls.adaptive()
        parts = spec.split(":")
        if len(parts) not in (3, 4, 5):
            raise ConfigurationError(
                f"bad sampling spec {text!r}: expected 'on', 'off', "
                f"'[adaptive:]DETAIL:GAP:WARMUP[:FUNC_WARM][:CONFIDENCE]' "
                f"or 'adaptive'"
            )
        try:
            detail, gap, warmup = (int(p) for p in parts[:3])
            func_warm = cls.__dataclass_fields__["func_warm"].default
            confidence = 0.90 if mode == "adaptive" else 0.95
            rest = parts[3:]
            if rest and "." in rest[-1]:
                confidence = float(rest[-1])
                rest = rest[:-1]
            if rest:
                func_warm = int(rest[0])
                if len(rest) > 1:
                    raise ValueError(f"unexpected trailing part {rest[1]!r}")
        except ValueError as exc:
            raise ConfigurationError(
                f"bad sampling spec {text!r}: {exc}"
            ) from exc
        # A short explicit gap must not inherit an oversized default
        # warming tail: clamp to whatever the gap can hold.
        func_warm = min(func_warm, gap - warmup)
        if mode == "adaptive":
            return cls.adaptive(detail=detail, gap=gap, warmup=warmup,
                                func_warm=func_warm, confidence=confidence)
        return cls(detail=detail, gap=gap, warmup=warmup,
                   func_warm=func_warm, confidence=confidence, mode=mode)
