"""Sampled-simulation configuration.

One :class:`SamplingConfig` describes the statistical interval-sampling
regime of a run: how many instructions each **detailed interval** simulates
at full fidelity (timing core + energy accounting), how many instructions
are **fast-forwarded** between intervals (architectural state only), how
long the **functionally warmed** tail of the fast-forward is (caches and
branch predictor train while skipping), and how long the **trace warmup**
window before each detailed interval is (the trace machinery — selection,
prediction, filters, background phases — replays functionally).  ``None``
everywhere in the code base means *full detail* — the historical,
bit-identical simulation mode.

The config is a frozen, hashable dataclass so it can ride inside
:class:`~repro.experiments.engine.Scale`, key the shared-runner registry,
and fingerprint the persistent result store (sampled and full-detail runs
must never collide under one store key).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Confidence levels with a Student-t table in the estimator.
SUPPORTED_CONFIDENCES = (0.90, 0.95, 0.99)

#: Spellings accepted by :meth:`SamplingConfig.parse`.
_OFF_WORDS = ("off", "none", "no", "false", "0", "full")
_ON_WORDS = ("on", "default", "yes", "true", "1")


@dataclass(frozen=True, slots=True)
class SamplingConfig:
    """Interval-sampling knobs of one sampled simulation.

    ``detail`` instructions are simulated in full detail out of every
    ``detail + gap`` instruction period.  Each gap ends in up to
    ``func_warm`` instructions of functionally warmed fast-forward
    (icache/dcache/branch-predictor training while skipping) followed by
    ``warmup`` instructions of trace-machinery warmup (segment selection,
    trace prediction, filters and background phases replayed without
    timing).  ``confidence`` selects the confidence level of the reported
    per-metric intervals, and ``min_intervals`` is the smallest number of
    detailed intervals worth estimating from — shorter runs fall back to
    full detail.

    The defaults were tuned on the golden apps (see EXPERIMENTS.md): at
    200k instructions they measure ~6.5% of the stream in detail and land
    within a few percent of the full-detail IPC and energy at ~5x the
    speed.
    """

    detail: int = 1000
    gap: int = 14000
    warmup: int = 1500
    func_warm: int = 4000
    confidence: float = 0.95
    min_intervals: int = 4

    def __post_init__(self) -> None:
        if self.detail < 1:
            raise ConfigurationError(
                f"sampling detail interval must be >= 1, got {self.detail}"
            )
        if self.gap < 1:
            raise ConfigurationError(
                f"sampling gap must be >= 1, got {self.gap}"
            )
        if not 0 <= self.warmup <= self.gap:
            raise ConfigurationError(
                f"sampling warmup must lie within the gap "
                f"(0 <= {self.warmup} <= {self.gap})"
            )
        if self.func_warm < 0:
            raise ConfigurationError(
                f"sampling func_warm must be >= 0, got {self.func_warm}"
            )
        if self.warmup + self.func_warm > self.gap:
            raise ConfigurationError(
                f"sampling warmup ({self.warmup}) + func_warm "
                f"({self.func_warm}) must fit in the gap ({self.gap})"
            )
        if self.confidence not in SUPPORTED_CONFIDENCES:
            raise ConfigurationError(
                f"sampling confidence must be one of "
                f"{SUPPORTED_CONFIDENCES}, got {self.confidence}"
            )
        if self.min_intervals < 2:
            raise ConfigurationError(
                f"min_intervals must be >= 2 (a confidence interval needs "
                f"at least two samples), got {self.min_intervals}"
            )

    @property
    def period(self) -> int:
        """Instructions covered by one (gap + detail) sampling period."""
        return self.detail + self.gap

    @property
    def detail_fraction(self) -> float:
        """Fraction of the stream simulated in full detail."""
        return self.detail / self.period

    def fingerprint(self) -> str:
        """Deterministic text form, mixed into the result-store key."""
        return (
            f"detail={self.detail},gap={self.gap},warmup={self.warmup},"
            f"func_warm={self.func_warm},confidence={self.confidence},"
            f"min_intervals={self.min_intervals}"
        )

    @classmethod
    def parse(cls, text: str | None) -> "SamplingConfig | None":
        """Parse a CLI/environment sampling spec.

        ``off``/``none``/``0`` (or ``None``) disable sampling; ``on`` (and
        friends) select the defaults; ``DETAIL:GAP:WARMUP`` sets the main
        knobs explicitly, optionally followed by ``:FUNC_WARM`` (an
        integer) and/or ``:CONFIDENCE`` (a float containing a dot), e.g.
        ``2000:18000:1000``, ``1000:14000:1500:4000`` or
        ``1000:14000:1500:4000:0.99``.
        """
        if text is None:
            return None
        spec = text.strip().lower()
        if spec in _OFF_WORDS or not spec:
            return None
        if spec in _ON_WORDS:
            return cls()
        parts = spec.split(":")
        if len(parts) not in (3, 4, 5):
            raise ConfigurationError(
                f"bad sampling spec {text!r}: expected 'on', 'off' or "
                f"'DETAIL:GAP:WARMUP[:FUNC_WARM][:CONFIDENCE]'"
            )
        try:
            detail, gap, warmup = (int(p) for p in parts[:3])
            func_warm = cls.__dataclass_fields__["func_warm"].default
            confidence = 0.95
            rest = parts[3:]
            if rest and "." in rest[-1]:
                confidence = float(rest[-1])
                rest = rest[:-1]
            if rest:
                func_warm = int(rest[0])
                if len(rest) > 1:
                    raise ValueError(f"unexpected trailing part {rest[1]!r}")
        except ValueError as exc:
            raise ConfigurationError(
                f"bad sampling spec {text!r}: {exc}"
            ) from exc
        # A short explicit gap must not inherit an oversized default
        # warming tail: clamp to whatever the gap can hold.
        func_warm = min(func_warm, gap - warmup)
        return cls(detail=detail, gap=gap, warmup=warmup,
                   func_warm=func_warm, confidence=confidence)
