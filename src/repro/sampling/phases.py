"""Online phase classification for adaptive sampling (Pac-Sim direction).

Programs revisit phases, and a fixed-interval sampler pays a detailed
interval for every period regardless.  This module supplies the three
pieces that let the sampler spend detail *per phase* instead:

* :class:`PhaseSignature` — a basic-block-vector-style signature of one
  sampling period, collected for free over the block-compiled fast-forward
  path: the count of dynamic control transfers per resolved target address
  (conditional branches, returns, indirect jumps — exactly the
  instructions whose outcome consumes dynamic state, so the vector is a
  pure function of the instruction sequence and bit-identical between the
  generating walker and artifact replay).
* :class:`PhaseClassifier` — an incremental nearest-centroid classifier
  over an LRU-bounded phase table: a period joins the nearest known phase
  within a normalized-Manhattan distance threshold, or founds a new one.
* :class:`PhaseTracker` — the per-phase measurement ledger and the
  confidence-target budget: a phase needs another detailed interval until
  it has ``min_phase_intervals`` samples *and* its IPC/EPI confidence
  intervals close within the configured targets; afterwards recurrences
  reuse the phase's measurements, and a later escalation (an interval that
  reopens the CI) sends it back to detail.

The package-level import-light rule applies (``repro.core.config`` imports
this package's config module): nothing here may import machine modules.
Everything arrives as plain measurements from the simulator.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.sampling.estimator import (
    IntervalMeasurement,
    MetricEstimate,
    SampledEstimate,
    estimate_metric,
    student_t,
)


class PhaseSignature:
    """The branch-target vector of one sampling period.

    ``targets`` maps the resolved successor address of each dynamic CTI
    executed in the period's profiling window to its occurrence count;
    ``total`` is the window's dynamic-CTI count.  Signatures compare by
    normalized Manhattan distance over target *frequencies* — the range is
    ``[0, 2]``, with 0 for identical distributions and 2 for disjoint
    target sets.
    """

    __slots__ = ("targets", "total")

    def __init__(self, targets: dict[int, int]):
        self.targets = targets
        self.total = sum(targets.values())

    @classmethod
    def from_profile(cls, profile: dict[int, int]) -> "PhaseSignature":
        """Adopt a profile dict filled by a profiled ``skip``."""
        return cls(dict(profile))

    def distance(self, other: "PhaseSignature") -> float:
        """Normalized Manhattan distance between two signatures.

        Computed with an exact integer numerator (one float division at
        the end), so the value is independent of dict insertion order —
        the generating walker observes targets in first-execution order
        while artifact replay accumulates them sorted, and both must
        classify identically.
        """
        st, ot = self.total, other.total
        if not st and not ot:
            return 0.0
        if not st or not ot:
            return 2.0
        a, b = self.targets, other.targets
        b_get = b.get
        num = 0
        for target, count in a.items():
            num += abs(count * ot - b_get(target, 0) * st)
        for target, count in b.items():
            if target not in a:
                num += count * st
        return num / (st * ot)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PhaseSignature):
            return NotImplemented
        return self.targets == other.targets

    def __repr__(self) -> str:
        return (f"PhaseSignature(targets={len(self.targets)}, "
                f"total={self.total})")


class PhaseClassifier:
    """Incremental nearest-centroid phase classifier with an LRU table.

    ``classify`` assigns a signature to the nearest known phase when its
    distance is within ``threshold``, else founds a new phase; the table
    keeps at most ``max_phases`` representatives, evicting the least
    recently matched.  Representatives are the *founding* signature of
    each phase (never updated), so the classification sequence is a pure
    function of the signature sequence — the determinism the store-key and
    backend-parity contracts need.
    """

    __slots__ = ("threshold", "max_phases", "evictions", "_table", "_next_id")

    def __init__(self, threshold: float = 0.5, max_phases: int = 32):
        if not 0.0 <= threshold <= 2.0:
            raise ValueError(
                f"phase threshold must lie in [0, 2], got {threshold}"
            )
        if max_phases < 1:
            raise ValueError(f"max_phases must be >= 1, got {max_phases}")
        self.threshold = threshold
        self.max_phases = max_phases
        self.evictions = 0
        self._table: OrderedDict[int, PhaseSignature] = OrderedDict()
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._table)

    def classify(self, signature: PhaseSignature) -> int:
        """The phase id of ``signature`` (existing on a match, else new).

        Ties resolve to the least recently matched candidate (stable:
        table iteration order is LRU order, itself deterministic).
        """
        best_id = None
        best_distance = math.inf
        for phase_id, representative in self._table.items():
            d = representative.distance(signature)
            if d < best_distance:
                best_id, best_distance = phase_id, d
        if best_id is not None and best_distance <= self.threshold:
            self._table.move_to_end(best_id)
            return best_id
        phase_id = self._next_id
        self._next_id += 1
        self._table[phase_id] = signature
        while len(self._table) > self.max_phases:
            self._table.popitem(last=False)
            self.evictions += 1
        return phase_id


@dataclass(frozen=True, slots=True)
class PhaseEstimate:
    """One phase's contribution to an adaptive estimate.

    ``periods`` is how many sampling periods the classifier assigned to
    the phase (its weight numerator), ``measured`` how many of those ran a
    detailed interval; the rest reused the phase's measurements.
    ``closed`` records whether the phase met its confidence targets by the
    end of the run (an open phase widens the combined interval honestly —
    it is never silently extrapolated).
    """

    phase: int
    periods: int
    measured: int
    weight: float
    ipc: MetricEstimate
    epi: MetricEstimate
    cmpw: MetricEstimate
    closed: bool

    @property
    def reused(self) -> int:
        """Periods served from the phase's existing measurements."""
        return self.periods - self.measured


def _stratum_mean(samples: list[float], counts: list[int] | None) -> float:
    """Coverage-weighted mean of one stratum's samples."""
    if counts is None:
        return sum(samples) / len(samples)
    total = sum(counts)
    return sum(c * v for c, v in zip(counts, samples)) / total


def combine_phase_metric(
    metric: str,
    strata: list[tuple],
    confidence: float,
) -> MetricEstimate:
    """Stratified-sampling estimate of one metric across phases.

    ``strata`` is ``[(weight, samples), ...]`` or
    ``[(weight, samples, counts), ...]`` with weights summing to 1.
    ``counts`` are per-sample coverage counts (how many sampling periods
    each measurement stands for — its reuse run length): the stratum mean
    is then the coverage-weighted mean, so a measurement reused for five
    periods carries five periods' worth of the phase, not one.  The
    half-width follows the stratified variance ``sum(w_k^2 * s_k^2 /
    n_k)`` on the *unweighted* sample variance (coverage reuses a
    measurement, it does not re-observe it) with the pooled within-phase
    variance standing in for single-sample phases, and the pooled degrees
    of freedom feeding the t quantile.  When *no* phase has two samples
    the half-width falls back to the unstratified spread of all samples —
    across-phase variance then dominates, which can only widen the
    interval.  A single phase with all the weight and unit counts reduces
    exactly to :func:`~repro.sampling.estimator.estimate_metric`.
    """
    if not strata or any(not stratum[1] for stratum in strata):
        raise ValueError(f"every phase stratum of {metric!r} needs samples")
    strata = [
        (stratum[0], stratum[1], stratum[2] if len(stratum) > 2 else None)
        for stratum in strata
    ]
    total_n = sum(len(samples) for _, samples, _ in strata)
    mean = sum(
        weight * _stratum_mean(samples, counts)
        for weight, samples, counts in strata
    )
    if total_n < 2:
        return MetricEstimate(metric, mean, math.inf, confidence, total_n)
    pooled_num = 0.0
    pooled_dof = 0
    for _, samples, _ in strata:
        n = len(samples)
        if n >= 2:
            m = sum(samples) / n
            pooled_num += sum((v - m) ** 2 for v in samples)
            pooled_dof += n - 1
    if pooled_dof == 0:
        flat = estimate_metric(
            metric,
            [v for _, samples, _ in strata for v in samples],
            confidence,
        )
        return MetricEstimate(
            metric, mean, flat.half_width, confidence, total_n
        )
    pooled_var = pooled_num / pooled_dof
    var_of_mean = 0.0
    for weight, samples, _ in strata:
        n = len(samples)
        if n >= 2:
            m = sum(samples) / n
            var = sum((v - m) ** 2 for v in samples) / (n - 1)
        else:
            var = pooled_var
        var_of_mean += weight * weight * var / n
    half = student_t(confidence, pooled_dof) * math.sqrt(var_of_mean)
    return MetricEstimate(metric, mean, half, confidence, total_n)


class PhaseTracker:
    """Per-phase measurement ledger and confidence-target budget."""

    __slots__ = (
        "confidence", "ipc_target", "epi_target", "min_phase_intervals",
        "phase_refresh", "reused",
        "_periods", "_samples", "_counts", "_measurements",
    )

    def __init__(self, *, confidence: float, ipc_target: float,
                 epi_target: float, min_phase_intervals: int,
                 phase_refresh: int = 0):
        self.confidence = confidence
        self.ipc_target = ipc_target
        self.epi_target = epi_target
        self.min_phase_intervals = min_phase_intervals
        self.phase_refresh = phase_refresh
        self.reused = 0
        self._periods: dict[int, int] = {}
        self._samples: dict[int, list[IntervalMeasurement]] = {}
        # Parallel to _samples: how many periods each measurement covers
        # (itself plus the reuses served from it before the next
        # measurement of the phase) — the coverage weights of the
        # stratified estimate.
        self._counts: dict[int, list[int]] = {}
        self._measurements: list[IntervalMeasurement] = []

    def observe(self, phase: int) -> None:
        """Count one sampling period classified into ``phase``."""
        self._periods[phase] = self._periods.get(phase, 0) + 1

    def closed(self, phase: int) -> bool:
        """True when the phase's IPC and EPI intervals meet their targets."""
        samples = self._samples.get(phase)
        if samples is None or len(samples) < self.min_phase_intervals:
            return False
        ipc = estimate_metric(
            "ipc", [m.ipc for m in samples], self.confidence
        )
        if ipc.relative_half_width > self.ipc_target:
            return False
        epi = estimate_metric(
            "epi", [m.epi for m in samples], self.confidence
        )
        return epi.relative_half_width <= self.epi_target

    def needs_detail(self, phase: int) -> bool:
        """Whether this recurrence must run a detailed interval.

        True until the phase's confidence intervals close, and again every
        ``phase_refresh``-th recurrence once they have (``0`` disables
        refresh).  The refresh sample is what keeps escalation live: a
        phase that drifts after closing gets fresh evidence, its variance
        grows, the interval reopens, and the phase is back on detail — a
        closed phase that was never re-measured could never escalate.
        """
        if not self.closed(phase):
            return True
        if not self.phase_refresh:
            return False
        # The latest measurement already covers ``phase_refresh`` periods:
        # this recurrence is due for a fresh sample.
        return self._counts[phase][-1] >= self.phase_refresh

    def record(self, phase: int, measurement: IntervalMeasurement) -> None:
        """Attach one detailed-interval measurement to ``phase``."""
        self._samples.setdefault(phase, []).append(measurement)
        self._counts.setdefault(phase, []).append(1)
        self._measurements.append(measurement)

    def reuse(self, phase: int) -> None:
        """Count one period served from the phase's latest measurement."""
        self._counts[phase][-1] += 1
        self.reused += 1

    # -- inspection --------------------------------------------------------

    @property
    def total_periods(self) -> int:
        return sum(self._periods.values())

    @property
    def total_measured(self) -> int:
        return len(self._measurements)

    def phases(self) -> list[int]:
        """Phase ids in first-observed order."""
        return list(self._periods)

    def periods_of(self, phase: int) -> int:
        """Number of periods classified into ``phase`` (0 if unseen)."""
        return self._periods.get(phase, 0)

    def coverage(self, phase: int) -> list[int]:
        """Per-measurement coverage counts of ``phase``, in record order.

        ``coverage(p)[i]`` is how many sampling periods the phase's
        ``i``-th measurement stands for: itself plus every reuse served
        before the next measurement.  Sums to the phase's covered periods
        (its observed periods minus any whose detailed interval measured
        zero instructions).
        """
        return list(self._counts.get(phase, ()))

    def open_phases(self) -> list[int]:
        """Phases whose confidence targets were not met."""
        return [phase for phase in self._periods if not self.closed(phase)]

    def build_estimate(
        self, *, total_instructions: int
    ) -> SampledEstimate:
        """The run's adaptive :class:`SampledEstimate`.

        Phase weights are covered-period shares among the phases that hold
        measurements (in a completed adaptive run that is all of them);
        per-phase estimates use each phase's own samples with their
        coverage counts — a single-sample phase honestly reports an
        unbounded interval — while the combined metrics come from the
        stratified estimator.
        """
        if not self._measurements:
            raise ValueError("an adaptive run recorded no measurements")
        sampled = [
            phase for phase in self._periods if self._samples.get(phase)
        ]
        covered = sum(sum(self._counts[phase]) for phase in sampled)
        phases = []
        strata: dict[str, list[tuple]] = {"ipc": [], "epi": [], "cmpw": []}
        for phase in sampled:
            samples = self._samples[phase]
            counts = self._counts[phase]
            weight = sum(counts) / covered
            ipc_values = [m.ipc for m in samples]
            epi_values = [m.epi for m in samples]
            cmpw_values = [m.cmpw for m in samples]
            strata["ipc"].append((weight, ipc_values, counts))
            strata["epi"].append((weight, epi_values, counts))
            strata["cmpw"].append((weight, cmpw_values, counts))
            phases.append(PhaseEstimate(
                phase=phase,
                periods=self._periods[phase],
                measured=len(samples),
                weight=weight,
                ipc=combine_phase_metric(
                    "ipc", [(1.0, ipc_values, counts)], self.confidence
                ),
                epi=combine_phase_metric(
                    "epi", [(1.0, epi_values, counts)], self.confidence
                ),
                cmpw=combine_phase_metric(
                    "cmpw", [(1.0, cmpw_values, counts)], self.confidence
                ),
                closed=self.closed(phase),
            ))
        return SampledEstimate(
            intervals=tuple(self._measurements),
            total_instructions=total_instructions,
            confidence=self.confidence,
            ipc=combine_phase_metric("ipc", strata["ipc"], self.confidence),
            epi=combine_phase_metric("epi", strata["epi"], self.confidence),
            cmpw=combine_phase_metric(
                "cmpw", strata["cmpw"], self.confidence
            ),
            exact=False,
            mode="adaptive",
            phases=tuple(phases),
        )
