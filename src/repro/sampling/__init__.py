"""Sampled simulation: detail intervals, fast-forward, warmup, estimation.

The subsystem that lets the harness claim steady-state behaviour from
long streams without paying full-detail simulation for every instruction:
:class:`SamplingConfig` describes the regime, the scheduler plans the
fast-forward / warmup / detail intervals, :mod:`~repro.sampling.warmup`
re-establishes machine state after each gap, and the estimator aggregates
per-interval measurements into population estimates with confidence
intervals.

Kept import-light on purpose (no machine modules): ``repro.core.config``
embeds :class:`SamplingConfig`, so this package must sit below the core in
the import graph.  :class:`~repro.sampling.warmup.WarmupPolicy` is
import-free and is pulled in directly by the simulator.  The one
deliberate exception is :mod:`repro.sampling.accuracy` — the differential
validation harness *runs* simulations, so it imports the core and is
never re-exported here; import it directly
(``from repro.sampling.accuracy import AccuracyHarness``).
"""

from repro.sampling.config import (
    SAMPLING_MODES,
    SUPPORTED_CONFIDENCES,
    SamplingConfig,
)
from repro.sampling.estimator import (
    IntervalMeasurement,
    MetricEstimate,
    SampledEstimate,
    build_estimate,
    estimate_metric,
    student_t,
)
from repro.sampling.phases import (
    PhaseClassifier,
    PhaseEstimate,
    PhaseSignature,
    PhaseTracker,
    combine_phase_metric,
)
from repro.sampling.scheduler import Interval, plan_intervals

__all__ = [
    "SAMPLING_MODES",
    "SUPPORTED_CONFIDENCES",
    "SamplingConfig",
    "Interval",
    "plan_intervals",
    "IntervalMeasurement",
    "MetricEstimate",
    "SampledEstimate",
    "build_estimate",
    "estimate_metric",
    "student_t",
    "PhaseClassifier",
    "PhaseEstimate",
    "PhaseSignature",
    "PhaseTracker",
    "combine_phase_metric",
]
