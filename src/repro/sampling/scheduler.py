"""The interval scheduler: a run's fast-forward / warmup / detail plan.

Systematic (periodic) sampling in the SMARTS/Pac-Sim tradition: every
``detail + gap`` instructions, one detailed interval is measured, preceded
by a functional-warmup window that re-establishes cache, predictor and
trace-machinery state after the fast-forward.  The plan is a pure function
of ``(length, config)``, so a sampled run is exactly as deterministic as a
full-detail one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sampling.config import SamplingConfig


@dataclass(frozen=True, slots=True)
class Interval:
    """One sampling period: fast-forward, warm up, then measure.

    The fast-forward itself is split: its first ``skip - funcwarm``
    instructions are a plain architectural skip, its last ``funcwarm``
    instructions additionally warm the caches and branch predictor while
    skipping (cheap, allocation-free probing).  The warming suffix is what
    lets big slow-decaying structures (L2, BTB) stay live while the plain
    front keeps the gap fast.
    """

    skip: int      #: instructions fast-forwarded, including the warmed tail
    funcwarm: int  #: trailing skip instructions with cache/bpred warming
    warmup: int    #: instructions run through the trace-machinery warmup
    detail: int    #: instructions simulated in full detail


def plan_intervals(length: int, config: SamplingConfig) -> list[Interval]:
    """The interval plan of a ``length``-instruction sampled run.

    Each period leads with the fast-forward, so the detailed interval sits
    at the end of its period with the warmup window directly in front of
    it.  A trailing partial period is dropped (its instructions are part of
    the population the estimator extrapolates over, they are simply never
    walked).  When fewer than ``config.min_intervals`` full periods fit,
    the plan degenerates to a single full-detail interval — sampling a
    stream that short would estimate from too few samples to be honest.
    """
    if length < 1:
        raise ValueError(f"run length {length} must be positive")
    periods = length // config.period
    if periods < config.min_intervals:
        return [Interval(skip=0, funcwarm=0, warmup=0, detail=length)]
    lead = config.gap - config.warmup
    funcwarm = min(config.func_warm, lead)
    return [
        Interval(skip=lead, funcwarm=funcwarm, warmup=config.warmup,
                 detail=config.detail)
        for _ in range(periods)
    ]
