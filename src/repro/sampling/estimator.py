"""Population estimates from sampled detail intervals.

Each detailed interval yields one :class:`IntervalMeasurement` — its
instruction count, elapsed cycles and energy.  The estimator treats the
per-interval metric values (IPC, energy-per-instruction, CMPW) as a sample
of the run's population and reports, per metric, the sample mean together
with a Student-t confidence interval.  No SciPy: the two-sided t critical
values for the supported confidence levels are tabulated, and dof gaps
resolve to the next *smaller* tabulated dof, which can only widen the
interval (conservative).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Two-sided Student-t critical values by confidence level, keyed by
#: degrees of freedom.  Above the largest tabulated dof the normal
#: quantile applies.
_T_TABLE: dict[float, tuple[tuple[int, float], ...]] = {
    0.90: (
        (1, 6.314), (2, 2.920), (3, 2.353), (4, 2.132), (5, 2.015),
        (6, 1.943), (7, 1.895), (8, 1.860), (9, 1.833), (10, 1.812),
        (12, 1.782), (14, 1.761), (16, 1.746), (18, 1.734), (20, 1.725),
        (25, 1.708), (30, 1.697), (40, 1.684), (60, 1.671), (120, 1.658),
    ),
    0.95: (
        (1, 12.706), (2, 4.303), (3, 3.182), (4, 2.776), (5, 2.571),
        (6, 2.447), (7, 2.365), (8, 2.306), (9, 2.262), (10, 2.228),
        (12, 2.179), (14, 2.145), (16, 2.120), (18, 2.101), (20, 2.086),
        (25, 2.060), (30, 2.042), (40, 2.021), (60, 2.000), (120, 1.980),
    ),
    0.99: (
        (1, 63.657), (2, 9.925), (3, 5.841), (4, 4.604), (5, 4.032),
        (6, 3.707), (7, 3.499), (8, 3.355), (9, 3.250), (10, 3.169),
        (12, 3.055), (14, 2.977), (16, 2.921), (18, 2.878), (20, 2.845),
        (25, 2.787), (30, 2.750), (40, 2.704), (60, 2.660), (120, 2.617),
    ),
}

_NORMAL_QUANTILE = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def student_t(confidence: float, dof: int) -> float:
    """Two-sided t critical value; conservative between tabulated dofs."""
    try:
        table = _T_TABLE[confidence]
    except KeyError:
        raise ValueError(
            f"unsupported confidence {confidence}; "
            f"supported: {sorted(_T_TABLE)}"
        ) from None
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    critical = table[0][1]
    for table_dof, value in table:
        if table_dof > dof:
            break
        critical = value
    else:
        critical = _NORMAL_QUANTILE[confidence]
    return critical


@dataclass(frozen=True, slots=True)
class IntervalMeasurement:
    """Performance and energy of one detailed interval."""

    instructions: int
    cycles: float
    energy: float

    @property
    def ipc(self) -> float:
        """Instructions per cycle within the interval."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def epi(self) -> float:
        """Energy per instruction within the interval."""
        return self.energy / self.instructions if self.instructions else 0.0

    @property
    def cmpw(self) -> float:
        """Cubic-MIPS-per-WATT of the interval (simulator units)."""
        if not (self.cycles and self.energy):
            return 0.0
        return self.ipc ** 3 / (self.energy / self.cycles)


@dataclass(frozen=True, slots=True)
class MetricEstimate:
    """Sample mean of one metric with its confidence half-width."""

    metric: str
    mean: float
    half_width: float
    confidence: float
    intervals: int

    @property
    def lower(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (0.02 = ±2%)."""
        return self.half_width / self.mean if self.mean else math.inf

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        return self.lower <= value <= self.upper

    def format(self) -> str:
        """``mean [lower, upper]`` at the configured confidence."""
        return (f"{self.mean:.4g} "
                f"[{self.lower:.4g}, {self.upper:.4g}] "
                f"@{self.confidence:.0%}")


def estimate_metric(
    metric: str, values: list[float], confidence: float, *, exact: bool = False
) -> MetricEstimate:
    """Mean + t-based confidence half-width of one metric's samples.

    ``exact`` marks a degenerate single-interval plan that covered the
    whole stream in full detail: the "estimate" is then the true value and
    the half-width collapses to zero.  A genuine single-sample estimate has
    an unbounded (infinite) half-width instead — one interval says nothing
    about variance.
    """
    if not values:
        raise ValueError(f"no interval samples for metric {metric!r}")
    n = len(values)
    mean = sum(values) / n
    if exact:
        return MetricEstimate(metric, mean, 0.0, confidence, n)
    if n < 2:
        return MetricEstimate(metric, mean, math.inf, confidence, n)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = student_t(confidence, n - 1) * math.sqrt(variance / n)
    return MetricEstimate(metric, mean, half, confidence, n)


@dataclass(frozen=True, slots=True)
class SampledEstimate:
    """The population estimate of one sampled run.

    ``total_instructions`` is the stream length the estimate represents;
    ``detail_instructions`` of it were simulated in full detail.  ``exact``
    is True when the plan degenerated to one full-detail interval (the
    estimate then *is* the full-detail result).

    ``mode`` names the scheduling regime that produced the estimate
    (``"fixed"`` or ``"adaptive"``); an adaptive run additionally reports
    its per-phase breakdown in ``phases`` — a tuple of
    :class:`~repro.sampling.phases.PhaseEstimate`, one per classified
    phase, in first-seen order (the estimator stays import-light, so the
    field is typed loosely here).
    """

    intervals: tuple[IntervalMeasurement, ...]
    total_instructions: int
    confidence: float
    ipc: MetricEstimate
    epi: MetricEstimate
    cmpw: MetricEstimate
    exact: bool = False
    mode: str = "fixed"
    phases: tuple = ()

    @property
    def detail_instructions(self) -> int:
        """Instructions simulated in full detail across all intervals."""
        return sum(m.instructions for m in self.intervals)

    @property
    def detail_fraction(self) -> float:
        """Measured fraction of the represented stream."""
        if not self.total_instructions:
            return 0.0
        return self.detail_instructions / self.total_instructions

    @property
    def energy(self) -> MetricEstimate:
        """Total-energy estimate: EPI scaled to the represented length."""
        scale = float(self.total_instructions)
        return MetricEstimate(
            metric="energy",
            mean=self.epi.mean * scale,
            half_width=self.epi.half_width * scale,
            confidence=self.confidence,
            intervals=self.epi.intervals,
        )


def build_estimate(
    measurements: list[IntervalMeasurement],
    *,
    total_instructions: int,
    confidence: float,
    exact: bool = False,
) -> SampledEstimate:
    """Aggregate per-interval measurements into a :class:`SampledEstimate`."""
    if not measurements:
        raise ValueError("a sampled run produced no detailed intervals")
    return SampledEstimate(
        intervals=tuple(measurements),
        total_instructions=total_instructions,
        confidence=confidence,
        ipc=estimate_metric(
            "ipc", [m.ipc for m in measurements], confidence, exact=exact
        ),
        epi=estimate_metric(
            "epi", [m.epi for m in measurements], confidence, exact=exact
        ),
        cmpw=estimate_metric(
            "cmpw", [m.cmpw for m in measurements], confidence, exact=exact
        ),
        exact=exact,
    )
