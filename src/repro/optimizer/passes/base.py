"""Shared infrastructure for optimizer passes.

Each pass is a callable object transforming a uop list in trace order and
recording what it did in its ``applied`` counter.  Passes must preserve the
trace's architectural semantics: final register state and the ordered
store sequence (checked by :mod:`repro.optimizer.verify`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Uop
from repro.isa.registers import REG_NONE


class OptimizationPass:
    """Base class: a named, self-counting trace transformation."""

    name = "base"
    #: True for the core-specific class of optimizations (§2.4) — those
    #: exploiting integration with the execution hardware.
    core_specific = False

    def __init__(self) -> None:
        self.applied = 0

    def run(self, uops: list[Uop]) -> list[Uop]:
        """Transform ``uops``; return the (possibly new) list."""
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the application counter."""
        self.applied = 0


@dataclass(slots=True)
class UseInfo:
    """Readers of one register definition, up to its next redefinition."""

    readers: list[int]
    redefined_at: int | None


def definition_uses(uops: list[Uop]) -> dict[int, UseInfo]:
    """For every defining uop index, who reads that value and where it dies.

    Returns a map from defining index to :class:`UseInfo`.  Only ``dest``
    definitions are tracked (``dest2`` packed definitions are left alone by
    the passes that use this analysis).
    """
    live_def: dict[int, int] = {}  # register -> defining index (-1: untracked)
    info: dict[int, UseInfo] = {}
    for i, uop in enumerate(uops):
        for src in uop.sources():
            definer = live_def.get(src, -1)
            if definer >= 0:
                info[definer].readers.append(i)
        dest = uop.dest
        if dest != REG_NONE:
            previous = live_def.get(dest, -1)
            if previous >= 0:
                info[previous].redefined_at = i
            live_def[dest] = i
            info[i] = UseInfo(readers=[], redefined_at=None)
        dest2 = uop.dest2
        if dest2 != REG_NONE:
            previous = live_def.get(dest2, -1)
            if previous >= 0:
                info[previous].redefined_at = i
            # Packed second destinations are not offered to single-use
            # transformations; mark the register untracked.
            live_def[dest2] = -1
    return info


def reg_sources(uop: Uop) -> tuple[int, ...]:
    """Register sources excluding packed extras (pre-SIMD passes only)."""
    srcs = []
    if uop.src1 != REG_NONE:
        srcs.append(uop.src1)
    if uop.src2 != REG_NONE:
        srcs.append(uop.src2)
    return tuple(srcs)
