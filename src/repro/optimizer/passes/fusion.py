"""Micro-operation fusion (core-specific optimization, §2.4).

A producer ALU whose value is consumed exactly once, by another ALU, and
then overwritten, is merged into its consumer as a single ``FUSED_ALU``
uop occupying one rename/issue slot.  Because the synthetic ALU is
addition, the fusion is exact: ``d = (a + b + i1) + c + i2`` becomes one
uop with at most two register sources and the immediates summed.

Legality (checked per candidate):

* the producer's destination has exactly one reader before redefinition,
  and *is* redefined within the trace (not live-out);
* no uop between producer and consumer redefines the producer's sources;
* the fused uop needs at most two register sources in total.
"""

from __future__ import annotations

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import REG_NONE
from repro.optimizer.passes.base import OptimizationPass, definition_uses, reg_sources

#: Maximum producer-to-consumer distance considered for fusion (a real
#: fusion unit examines a small in-order window).
_FUSION_WINDOW = 4


class MicroOpFusion(OptimizationPass):
    """Fuse dependent single-use ALU pairs into one slot."""

    name = "fusion"
    core_specific = True

    def run(self, uops: list[Uop]) -> list[Uop]:
        uses = definition_uses(uops)
        removed: set[int] = set()
        replaced: dict[int, Uop] = {}
        for i, producer in enumerate(uops):
            if i in removed or i in replaced:
                continue
            if producer.kind is not UopKind.ALU or producer.dest == REG_NONE:
                continue
            info = uses.get(i)
            if info is None or len(info.readers) != 1 or info.redefined_at is None:
                continue
            j = info.readers[0]
            if j in removed or j in replaced or not i < j <= i + _FUSION_WINDOW:
                continue
            consumer = uops[j]
            if consumer.kind is not UopKind.ALU or consumer.dest == REG_NONE:
                continue
            fused = self._try_fuse(producer, consumer, uops, i, j)
            if fused is None:
                continue
            removed.add(i)
            replaced[j] = fused
            self.applied += 1
        out: list[Uop] = []
        for k, uop in enumerate(uops):
            if k in removed:
                continue
            out.append(replaced.get(k, uop))
        return out

    @staticmethod
    def _try_fuse(
        producer: Uop, consumer: Uop, uops: list[Uop], i: int, j: int
    ) -> Uop | None:
        d = producer.dest
        consumer_srcs = reg_sources(consumer)
        # The consumer must read the produced value exactly once.
        if consumer_srcs.count(d) != 1:
            return None
        other_srcs = [s for s in consumer_srcs if s != d]
        producer_srcs = list(reg_sources(producer))
        combined = producer_srcs + other_srcs
        if len(combined) > 2:
            return None
        # The producer's sources must survive unchanged until the consumer.
        needed = set(producer_srcs)
        for k in range(i + 1, j):
            mid = uops[k]
            if mid.dest in needed or mid.dest2 in needed:
                return None
        fused = consumer.copy()
        fused.kind = UopKind.FUSED_ALU
        fused.src1 = combined[0] if combined else REG_NONE
        fused.src2 = combined[1] if len(combined) > 1 else REG_NONE
        fused.imm = (producer.imm or 0) + (consumer.imm or 0)
        return fused
