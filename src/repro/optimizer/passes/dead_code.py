"""Dead-code elimination (general-purpose optimization, §2.4).

Backward liveness over the straight-line trace.  Because traces commit
atomically, every architectural register is conservatively live at trace
exit; a write is dead only when it is overwritten before any read *within
the trace*.  Memory operations, asserts and other side-effecting uops are
never removed; NOPs always are.
"""

from __future__ import annotations

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import NUM_ARCH_REGS
from repro.optimizer.passes.base import OptimizationPass
from repro.optimizer.semantics import SIDE_EFFECT_KINDS


class DeadCodeElimination(OptimizationPass):
    """Remove writes that are overwritten before being read, and NOPs."""

    name = "dead_code"
    core_specific = False

    def run(self, uops: list[Uop]) -> list[Uop]:
        live = set(range(NUM_ARCH_REGS))  # all registers live at trace exit
        keep: list[Uop | None] = [None] * len(uops)
        for i in range(len(uops) - 1, -1, -1):
            uop = uops[i]
            if uop.kind is UopKind.NOP:
                self.applied += 1
                continue
            dests = uop.destinations()
            if (
                dests
                and uop.kind not in SIDE_EFFECT_KINDS
                and all(d not in live for d in dests)
            ):
                self.applied += 1
                continue
            for dest in dests:
                live.discard(dest)
            for src in uop.sources():
                live.add(src)
            keep[i] = uop
        return [u for u in keep if u is not None]
