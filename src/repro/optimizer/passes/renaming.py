"""Partial (virtual) renaming analysis (core-specific optimization, §2.4).

Within an atomic trace, only the *last* write to each architectural
register is architecturally visible; every earlier write produces a
trace-local temporary.  The optimizer pre-computes those, letting the hot
pipeline satisfy them from cheap virtual registers instead of the full
rename table and architectural register file — the paper notes virtual
renaming "contributes mainly to power/energy saving".

This pass transforms nothing; it annotates.  The energy model charges
``rename_virtual`` (cheap) instead of ``rename_uop`` (full) for the
annotated fraction of an optimized trace's uops.
"""

from __future__ import annotations

from repro.isa.instruction import Uop
from repro.isa.registers import REG_NONE
from repro.optimizer.passes.base import OptimizationPass


class VirtualRenaming(OptimizationPass):
    """Count trace-local register definitions (virtual renames)."""

    name = "virtual_renaming"
    core_specific = True

    def __init__(self) -> None:
        super().__init__()
        self.virtual_renames = 0

    def run(self, uops: list[Uop]) -> list[Uop]:
        last_writer: dict[int, int] = {}
        for i, uop in enumerate(uops):
            if uop.dest != REG_NONE:
                last_writer[uop.dest] = i
            if uop.dest2 != REG_NONE:
                last_writer[uop.dest2] = i
        virtual = 0
        for i, uop in enumerate(uops):
            if uop.dest != REG_NONE and last_writer[uop.dest] != i:
                virtual += 1
            elif uop.dest2 != REG_NONE and last_writer[uop.dest2] != i:
                virtual += 1
        self.virtual_renames = virtual
        self.applied += virtual
        return uops

    def reset(self) -> None:
        super().reset()
        self.virtual_renames = 0
