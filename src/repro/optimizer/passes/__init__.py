"""Dynamic-optimizer passes (general-purpose and core-specific, §2.4)."""

from repro.optimizer.passes.base import OptimizationPass, UseInfo, definition_uses
from repro.optimizer.passes.constant_propagation import ConstantPropagation
from repro.optimizer.passes.dead_code import DeadCodeElimination
from repro.optimizer.passes.fusion import MicroOpFusion
from repro.optimizer.passes.logic_simplify import LogicSimplify
from repro.optimizer.passes.renaming import VirtualRenaming
from repro.optimizer.passes.scheduling import CriticalPathScheduling
from repro.optimizer.passes.simdify import Simdify

__all__ = [
    "ConstantPropagation",
    "CriticalPathScheduling",
    "DeadCodeElimination",
    "LogicSimplify",
    "MicroOpFusion",
    "OptimizationPass",
    "Simdify",
    "UseInfo",
    "VirtualRenaming",
    "definition_uses",
]
