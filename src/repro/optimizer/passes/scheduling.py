"""Dynamic critical-path-based scheduling (core-specific optimization, §2.4).

Greedy list scheduling over the trace's static dependency graph: at each
step, among the uops whose dependences are all satisfied, the one with the
greatest latency-weighted height (distance to the end of the dependence
graph) is emitted first.  The dependence graph includes output/anti and
memory-order edges, so the reordering is architecturally safe.

In an out-of-order core the *dataflow* is unchanged, but aligning program
order with dataflow order reduces scheduler-window pressure: long-latency
chain heads enter the window earlier and independent work is not stranded
behind them — exactly why the paper lists "improved scheduling" among the
optimizer's contributions.
"""

from __future__ import annotations

import heapq

from repro.isa.instruction import Uop
from repro.optimizer.dependency_graph import build_dependency_graph
from repro.optimizer.passes.base import OptimizationPass


class CriticalPathScheduling(OptimizationPass):
    """Reorder uops by dependence height (critical path first)."""

    name = "scheduling"
    core_specific = True

    def run(self, uops: list[Uop]) -> list[Uop]:
        n = len(uops)
        if n < 3:
            return uops
        graph = build_dependency_graph(uops)
        remaining = [len(p) for p in graph.preds]
        # Max-heap on height; original index breaks ties for determinism
        # and stability.
        ready = [
            (-graph.heights[i], i) for i in range(n) if remaining[i] == 0
        ]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            _, i = heapq.heappop(ready)
            order.append(i)
            for s in graph.succs[i]:
                remaining[s] -= 1
                if remaining[s] == 0:
                    heapq.heappush(ready, (-graph.heights[s], s))
        if len(order) != n:  # pragma: no cover - graph is acyclic by build
            return uops
        if order != sorted(order):
            self.applied += sum(
                1 for k, i in enumerate(order) if i != k
            )
        return [uops[i] for i in order]
