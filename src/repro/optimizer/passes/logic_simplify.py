"""Logic simplification (general-purpose optimization, §2.4).

Peephole identities over single uops: additions of zero and shifts by zero
become register moves; xor of a register with itself becomes a constant
zero; self-moves become NOPs (removed by the following DCE pass).  These
fire frequently after constant propagation has merged immediates.
"""

from __future__ import annotations

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import REG_NONE
from repro.optimizer.passes.base import OptimizationPass


class LogicSimplify(OptimizationPass):
    """Strength-reduce trivial arithmetic/logic identities."""

    name = "logic_simplify"
    core_specific = False

    def run(self, uops: list[Uop]) -> list[Uop]:
        out = []
        for uop in uops:
            simplified = self._simplify(uop)
            if simplified is not uop:
                self.applied += 1
            out.append(simplified)
        return out

    @staticmethod
    def _to_mov(uop: Uop, src: int) -> Uop:
        mov = uop.copy()
        mov.kind = UopKind.MOV
        mov.src1 = src
        mov.src2 = REG_NONE
        mov.imm = None
        return mov

    def _simplify(self, uop: Uop) -> Uop:
        kind = uop.kind
        if uop.dest == REG_NONE:
            return uop
        if kind in (UopKind.ALU, UopKind.FP_ADD):
            # x + 0 -> move
            if uop.src2 == REG_NONE and not uop.imm and uop.src1 != REG_NONE:
                return self._to_mov(uop, uop.src1)
        elif kind is UopKind.LOGIC:
            if (
                uop.src1 != REG_NONE
                and uop.src1 == uop.src2
                and not uop.imm
            ):
                # x ^ x -> 0
                zero = uop.copy()
                zero.kind = UopKind.MOV_IMM
                zero.src1 = REG_NONE
                zero.src2 = REG_NONE
                zero.imm = 0
                return zero
            if uop.src2 == REG_NONE and not uop.imm and uop.src1 != REG_NONE:
                # x ^ 0 -> move
                return self._to_mov(uop, uop.src1)
        elif kind is UopKind.SHIFT:
            if not uop.imm and uop.src1 != REG_NONE:
                # x << 0 -> move
                return self._to_mov(uop, uop.src1)
        elif kind is UopKind.MOV:
            if uop.dest == uop.src1:
                nop = uop.copy()
                nop.kind = UopKind.NOP
                nop.src1 = REG_NONE
                nop.dest = REG_NONE
                return nop
        return uop
