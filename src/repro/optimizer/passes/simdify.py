"""SIMDification (core-specific optimization, §2.4).

Two independent additions of the same kind (integer ALU or FP add) within
a small window are packed into one two-lane SIMD uop occupying a single
rename/issue slot: lane 0 keeps the first uop's operands in ``src1/src2``
and ``dest``; lane 1 carries the second uop's operands in ``extra_srcs``
and ``dest2``.

Legality: the packed partner moves *up* to the leader's position, so its
sources must not be written, and its destination must not be read or
written, by any uop in between (including the leader).

Profitability: both lanes of a packed uop issue and complete *together*,
so pairing operations from different dependence depths would delay the
shallower one's consumers.  The pass therefore computes an ASAP (as soon
as possible) dataflow level for every uop and only pairs operations at
the same level — the pairs a hardware packer would find naturally
simultaneous.
"""

from __future__ import annotations

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import REG_NONE
from repro.optimizer.passes.base import OptimizationPass, reg_sources
from repro.trace.trace import asap_levels

#: Kinds eligible for pairing, and the packed kind they produce.
_PACKABLE = {
    UopKind.ALU: UopKind.SIMD2,
    UopKind.FP_ADD: UopKind.FP_SIMD2,
}

#: Maximum leader-to-partner distance (a real packer's pairing window).
_SIMD_WINDOW = 6


class Simdify(OptimizationPass):
    """Pack pairs of independent same-kind additions into SIMD slots."""

    name = "simdify"
    core_specific = True

    def run(self, uops: list[Uop]) -> list[Uop]:
        removed: set[int] = set()
        replaced: dict[int, Uop] = {}
        n = len(uops)
        asap = asap_levels(uops)
        for i in range(n):
            if i in removed or i in replaced:
                continue
            leader = uops[i]
            packed_kind = _PACKABLE.get(leader.kind)
            if packed_kind is None or not self._plain_add(leader):
                continue
            for j in range(i + 1, min(i + 1 + _SIMD_WINDOW, n)):
                if j in removed or j in replaced:
                    continue
                partner = uops[j]
                if partner.kind is not leader.kind or not self._plain_add(partner):
                    continue
                if asap[j] != asap[i]:
                    continue  # different dataflow depth: pairing would stall
                if self._can_hoist(uops, i, j):
                    packed = leader.copy()
                    packed.kind = packed_kind
                    packed.dest2 = partner.dest
                    packed.extra_srcs = reg_sources(partner)
                    replaced[i] = packed
                    removed.add(j)
                    self.applied += 1
                    break
        if not self.applied:
            return uops
        return [
            replaced.get(k, uop)
            for k, uop in enumerate(uops)
            if k not in removed
        ]

    @staticmethod
    def _plain_add(uop: Uop) -> bool:
        """Eligible lane shape: two register sources, no immediate, one dest."""
        return (
            uop.dest != REG_NONE
            and uop.dest2 == REG_NONE
            and uop.src1 != REG_NONE
            and uop.src2 != REG_NONE
            and not uop.imm
            and not uop.extra_srcs
        )

    @staticmethod
    def _can_hoist(uops: list[Uop], i: int, j: int) -> bool:
        """True when uop ``j`` may execute at position ``i`` instead."""
        partner = uops[j]
        partner_srcs = set(reg_sources(partner))
        pdest = partner.dest
        for k in range(i, j):
            mid = uops[k]
            if mid.dest in partner_srcs or mid.dest2 in partner_srcs:
                return False
            if mid.dest == pdest or mid.dest2 == pdest:
                return False
            if pdest in mid.sources():
                return False
        return True
