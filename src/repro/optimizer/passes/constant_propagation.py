"""Constant and copy propagation (general-purpose optimization, §2.4).

Forward dataflow over the straight-line (post-promotion) trace:

* registers holding known constants are tracked; foldable uops whose
  register inputs are all known collapse to ``MOV_IMM`` (constant folding);
* additive/xor kinds with one known register input fold that input into the
  immediate field, removing a data dependence edge (the "dependency
  elimination" effect the paper highlights);
* register copies are propagated so consumers read the original source,
  which both shortens dependence chains and exposes dead copies to DCE.
"""

from __future__ import annotations

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import REG_NONE
from repro.optimizer.passes.base import OptimizationPass
from repro.optimizer.semantics import FOLDABLE_KINDS, fold

#: Kinds where a known src2 can be merged into the immediate operand.
_IMM_MERGEABLE = {
    UopKind.ALU: lambda imm, val: (imm or 0) + val,
    UopKind.AGU: lambda imm, val: (imm or 0) + val,
    UopKind.FP_ADD: lambda imm, val: (imm or 0) + val,
    UopKind.LOGIC: lambda imm, val: (imm or 0) ^ val,
}


class ConstantPropagation(OptimizationPass):
    """Constant folding, immediate merging and copy propagation."""

    name = "constant_propagation"
    core_specific = False

    def run(self, uops: list[Uop]) -> list[Uop]:
        known: dict[int, int] = {}
        copies: dict[int, int] = {}
        out: list[Uop] = []
        for uop in uops:
            uop = self._substitute_copies(uop, copies)
            uop = self._try_fold(uop, known)
            self._update_state(uop, known, copies)
            out.append(uop)
        return out

    @staticmethod
    def _substitute_copies(uop: Uop, copies: dict[int, int]) -> Uop:
        src1 = copies.get(uop.src1, uop.src1)
        src2 = copies.get(uop.src2, uop.src2)
        if src1 != uop.src1 or src2 != uop.src2:
            uop = uop.copy()
            uop.src1 = src1
            uop.src2 = src2
        return uop

    def _try_fold(self, uop: Uop, known: dict[int, int]) -> Uop:
        kind = uop.kind
        if kind not in FOLDABLE_KINDS or uop.dest == REG_NONE:
            return uop
        v1 = known.get(uop.src1) if uop.src1 != REG_NONE else 0
        v2 = known.get(uop.src2) if uop.src2 != REG_NONE else 0
        if v1 is not None and v2 is not None and kind is not UopKind.MOV_IMM:
            value = fold(kind, v1, v2, uop.imm)
            folded = uop.copy()
            folded.kind = UopKind.MOV_IMM
            folded.src1 = REG_NONE
            folded.src2 = REG_NONE
            folded.imm = value
            self.applied += 1
            return folded
        merge = _IMM_MERGEABLE.get(kind)
        if merge is not None:
            # One known register operand folds into the immediate field,
            # eliminating a dependence edge.
            if uop.src2 != REG_NONE and v2 is not None:
                merged = uop.copy()
                merged.imm = merge(uop.imm, v2)
                merged.src2 = REG_NONE
                self.applied += 1
                return merged
            if uop.src1 != REG_NONE and v1 is not None and uop.src2 != REG_NONE:
                merged = uop.copy()
                merged.imm = merge(uop.imm, v1)
                merged.src1 = merged.src2
                merged.src2 = REG_NONE
                self.applied += 1
                return merged
        return uop

    @staticmethod
    def _update_state(uop: Uop, known: dict[int, int], copies: dict[int, int]) -> None:
        for dest in uop.destinations():
            known.pop(dest, None)
            copies.pop(dest, None)
            # Invalidate copies whose *source* was overwritten.
            stale = [d for d, s in copies.items() if s == dest]
            for d in stale:
                del copies[d]
        if uop.kind is UopKind.MOV_IMM and uop.dest != REG_NONE:
            known[uop.dest] = uop.imm or 0
        elif uop.kind is UopKind.MOV and uop.dest != REG_NONE and uop.src1 != REG_NONE:
            if uop.dest != uop.src1:
                copies[uop.dest] = uop.src1
