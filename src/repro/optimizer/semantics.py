"""Concrete value semantics of the synthetic uop set.

The optimizer's constant folding and the equivalence checker
(:mod:`repro.optimizer.verify`) must agree *exactly* on what every uop
computes, so the single source of truth lives here.  Values are 64-bit
wrapped integers; the synthetic operations are: ALU/AGU/FUSED = addition,
LOGIC = xor, SHIFT = left shift, CMP = subtraction, MUL/DIV as expected,
and the FP kinds mirror their integer counterparts (the simulator never
needs real floating point — only deterministic dataflow).
"""

from __future__ import annotations

from repro.errors import OptimizationError
from repro.isa.opcodes import UopKind

_MASK = (1 << 64) - 1


def initial_register_value(reg: int) -> int:
    """Deterministic live-in value of architectural register ``reg``."""
    return ((reg + 1) * 0x9E3779B97F4A7C15) & _MASK


def load_token(origin: int) -> int:
    """Opaque value returned by the (single) load uop of instruction ``origin``.

    Loads are never duplicated by the optimizer and at most one load uop
    exists per originating instruction, so the origin index identifies the
    loaded value across reorderings.
    """
    return (0xC0FFEE ^ (origin * 0x2545F4914F6CDD1D)) & _MASK


def fold(kind: UopKind, a: int, b: int, imm: int | None) -> int:
    """Value computed by a uop of ``kind`` on operand values ``a``/``b``.

    ``a``/``b`` are 0 for absent register operands.  Raises
    :class:`~repro.errors.OptimizationError` for kinds with no value
    semantics (memory, control, asserts) — callers must special-case those.
    """
    imm_value = imm or 0
    if kind in (UopKind.ALU, UopKind.AGU, UopKind.FUSED_ALU, UopKind.FP_ADD):
        return (a + b + imm_value) & _MASK
    if kind is UopKind.MOV:
        return a
    if kind is UopKind.MOV_IMM:
        return imm_value & _MASK
    if kind is UopKind.LOGIC:
        return (a ^ b ^ imm_value) & _MASK
    if kind is UopKind.SHIFT:
        return (a << (imm_value & 63)) & _MASK
    if kind is UopKind.CMP:
        return (a - b - imm_value) & _MASK
    if kind in (UopKind.MUL, UopKind.FP_MUL):
        # Multiply templates always carry two register operands.
        return (a * b) & _MASK
    if kind in (UopKind.DIV, UopKind.FP_DIV):
        return (a // b) & _MASK if b else 0
    raise OptimizationError(f"uop kind {kind.name} has no value semantics")


#: Kinds whose results :func:`fold` can compute from constant operands.
FOLDABLE_KINDS = frozenset(
    {
        UopKind.ALU,
        UopKind.AGU,
        UopKind.MOV,
        UopKind.MOV_IMM,
        UopKind.LOGIC,
        UopKind.SHIFT,
        UopKind.MUL,
        UopKind.DIV,
        UopKind.FP_ADD,
        UopKind.FP_MUL,
        UopKind.FP_DIV,
    }
)

#: Kinds with architectural side effects beyond a register write: these
#: uops may never be eliminated by dead-code elimination.
SIDE_EFFECT_KINDS = frozenset(
    {
        UopKind.LOAD,
        UopKind.STORE,
        UopKind.BRANCH,
        UopKind.JUMP,
        UopKind.CALL,
        UopKind.RETURN,
        UopKind.IND_JUMP,
        UopKind.SYSCALL,
        UopKind.ASSERT_T,
        UopKind.ASSERT_NT,
    }
)
