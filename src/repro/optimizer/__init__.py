"""Dynamic trace optimizer: promotion, passes, pass manager, verification."""

from repro.optimizer.asserts import PromotionStats, promote_control
from repro.optimizer.dependency_graph import DependencyGraph, build_dependency_graph
from repro.optimizer.passes import (
    ConstantPropagation,
    CriticalPathScheduling,
    DeadCodeElimination,
    LogicSimplify,
    MicroOpFusion,
    OptimizationPass,
    Simdify,
    VirtualRenaming,
)
from repro.optimizer.pipeline import (
    OptimizationReport,
    OptimizerConfig,
    TraceOptimizer,
)
from repro.optimizer.semantics import (
    FOLDABLE_KINDS,
    SIDE_EFFECT_KINDS,
    fold,
    initial_register_value,
    load_token,
)
from repro.optimizer.verify import (
    EquivalenceResult,
    TraceMachineState,
    check_equivalence,
    interpret,
)

__all__ = [
    "ConstantPropagation",
    "CriticalPathScheduling",
    "DeadCodeElimination",
    "DependencyGraph",
    "EquivalenceResult",
    "FOLDABLE_KINDS",
    "LogicSimplify",
    "MicroOpFusion",
    "OptimizationPass",
    "OptimizationReport",
    "OptimizerConfig",
    "PromotionStats",
    "SIDE_EFFECT_KINDS",
    "Simdify",
    "TraceMachineState",
    "TraceOptimizer",
    "VirtualRenaming",
    "build_dependency_graph",
    "check_equivalence",
    "fold",
    "initial_register_value",
    "interpret",
    "load_token",
    "promote_control",
]
