"""Control promotion: branches inside atomic traces become assert uops.

Trace atomicity (§2.2-2.4) means a trace's internal control flow is fixed
at construction time: internal conditional branches are *promoted* to
assert operations that merely verify the recorded direction (rePlay-style
[25]); direct jumps, calls and returns need no execution at all — their
targets are implied by the trace — so their control uops are eliminated
(the stack-pointer-adjust uops of calls/returns remain, since they update
architectural state).  An indirect jump terminating a trace keeps a target
assert.

Promotion is the first optimizer pass: every subsequent pass relies on the
straight-line, assert-annotated form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.trace.tid import TraceId


@dataclass(slots=True)
class PromotionStats:
    """Counts of control uops transformed by promotion."""

    branches_promoted: int = 0
    jumps_eliminated: int = 0
    calls_eliminated: int = 0
    returns_eliminated: int = 0
    indirects_asserted: int = 0


def promote_control(uops: list[Uop], tid: TraceId) -> tuple[list[Uop], PromotionStats]:
    """Replace internal control uops with asserts / eliminate them.

    The i-th conditional-branch uop takes its asserted direction from the
    i-th bit of the TID's direction string.  Raises
    :class:`~repro.errors.OptimizationError` when the trace contains more
    branches than the TID records — that would mean selection and
    construction disagree.
    """
    stats = PromotionStats()
    out: list[Uop] = []
    branch_index = 0
    for uop in uops:
        kind = uop.kind
        if kind is UopKind.BRANCH:
            if branch_index >= tid.num_branches:
                raise OptimizationError(
                    f"{tid}: trace has more conditional branches than the TID"
                    f" records ({tid.num_branches})"
                )
            taken = tid.direction(branch_index)
            branch_index += 1
            promoted = uop.copy()
            promoted.kind = UopKind.ASSERT_T if taken else UopKind.ASSERT_NT
            out.append(promoted)
            stats.branches_promoted += 1
        elif kind is UopKind.JUMP:
            stats.jumps_eliminated += 1
        elif kind is UopKind.CALL:
            stats.calls_eliminated += 1
        elif kind is UopKind.RETURN:
            stats.returns_eliminated += 1
        elif kind is UopKind.IND_JUMP:
            asserted = uop.copy()
            asserted.kind = UopKind.ASSERT_T
            out.append(asserted)
            stats.indirects_asserted += 1
        else:
            out.append(uop.copy())
    if branch_index != tid.num_branches:
        raise OptimizationError(
            f"{tid}: trace has {branch_index} conditional branches but the "
            f"TID records {tid.num_branches}"
        )
    return out, stats
