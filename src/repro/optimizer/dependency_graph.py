"""Static dependency graph over a trace's uops.

The paper's optimizer "maintains a static dependency graph, which is used
across different optimization passes" (§3.1).  Ours records:

* RAW edges (true data dependences through registers, including flags),
* WAW/WAR edges (output/anti dependences — needed so the scheduling pass
  cannot produce a semantically different register state; the hardware's
  partial renaming would remove them, but the committed values must match),
* memory-order edges (stores are ordered with respect to all other memory
  operations; load-load pairs may reorder).

Heights (latency-weighted longest path to any leaf) drive the
critical-path scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind


@dataclass(slots=True)
class DependencyGraph:
    """Immutable-after-build dependence information for one uop list."""

    num_nodes: int
    #: predecessor index lists (deduplicated), per node
    preds: list[list[int]]
    #: successor index lists, per node
    succs: list[list[int]]
    #: latency-weighted height (longest path from node to any sink)
    heights: list[int]

    def critical_path(self) -> int:
        """Length of the longest dependence chain in the graph."""
        return max(self.heights, default=0)


def build_dependency_graph(uops: list[Uop]) -> DependencyGraph:
    """Construct the full dependence graph of a uop sequence."""
    n = len(uops)
    pred_sets: list[set[int]] = [set() for _ in range(n)]

    last_writer: dict[int, int] = {}
    readers_since_write: dict[int, list[int]] = {}
    last_store = -1
    last_mem = -1

    for i, uop in enumerate(uops):
        preds = pred_sets[i]
        # RAW: depend on the last writer of every source.
        for src in uop.sources():
            writer = last_writer.get(src)
            if writer is not None:
                preds.add(writer)
            readers_since_write.setdefault(src, []).append(i)
        # WAW / WAR on each destination.
        for dest in uop.destinations():
            writer = last_writer.get(dest)
            if writer is not None:
                preds.add(writer)
            for reader in readers_since_write.get(dest, ()):
                if reader != i:
                    preds.add(reader)
            last_writer[dest] = i
            readers_since_write[dest] = []
        # Memory ordering: stores order against everything; loads order
        # against stores only.
        if uop.kind is UopKind.STORE:
            if last_mem >= 0:
                preds.add(last_mem)
            last_store = i
            last_mem = i
        elif uop.kind is UopKind.LOAD:
            if last_store >= 0:
                preds.add(last_store)
            last_mem = i

    preds_list = [sorted(p) for p in pred_sets]
    succs: list[list[int]] = [[] for _ in range(n)]
    for i, preds in enumerate(preds_list):
        for p in preds:
            succs[p].append(i)

    heights = [0] * n
    for i in range(n - 1, -1, -1):
        best = 0
        for s in succs[i]:
            if heights[s] > best:
                best = heights[s]
        heights[i] = best + uops[i].latency

    return DependencyGraph(
        num_nodes=n, preds=preds_list, succs=succs, heights=heights
    )
