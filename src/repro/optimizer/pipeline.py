"""The dynamic optimizer unit: pass manager and latency model (§2.4, §3.1).

The optimizer is modelled as the paper describes: a non-pipelined unit that
holds one trace in a simplified ROB-like structure and runs the passes
sequentially, taking on the order of 100 cycles per trace.  The high
blazing threshold guarantees enough reuse that this relaxed design costs
neither performance nor amortised energy.

Pass classes (§2.4):

* **general purpose** — constant propagation, logic simplification,
  dead-code elimination;
* **core-specific** — micro-op fusion, SIMDification, virtual renaming,
  critical-path scheduling.

Either class can be disabled for the ablation studies (the companion-paper
breakdown the repo's ``benchmarks/test_ablation_passes.py`` mirrors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimizationError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.optimizer.asserts import PromotionStats, promote_control
from repro.optimizer.passes import (
    ConstantPropagation,
    CriticalPathScheduling,
    DeadCodeElimination,
    LogicSimplify,
    MicroOpFusion,
    Simdify,
    VirtualRenaming,
)
from repro.trace.trace import Trace, critical_path_length


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """What the optimizer is allowed to do, and how long it takes."""

    enable_generic: bool = True
    enable_core_specific: bool = True
    #: Non-pipelined per-trace optimization delay (§3.1: "on the order of
    #: 100 cycles").
    latency_cycles: int = 100

    @property
    def enabled(self) -> bool:
        """True when at least one pass class is active."""
        return self.enable_generic or self.enable_core_specific


@dataclass(slots=True)
class OptimizationReport:
    """What one optimization did to one trace."""

    uops_before: int = 0
    uops_after: int = 0
    critical_path_before: int = 0
    critical_path_after: int = 0
    virtual_renames: int = 0
    pass_applications: dict[str, int] = field(default_factory=dict)
    promotion: PromotionStats | None = None

    @property
    def uop_reduction(self) -> float:
        """Fraction of uops removed."""
        if self.uops_before == 0:
            return 0.0
        return 1.0 - self.uops_after / self.uops_before

    @property
    def dependency_reduction(self) -> float:
        """Fractional critical-path shortening."""
        if self.critical_path_before == 0:
            return 0.0
        return 1.0 - self.critical_path_after / self.critical_path_before


class TraceOptimizer:
    """Optimize blazing traces; returns new traces plus a report."""

    def __init__(self, config: OptimizerConfig | None = None):
        self.config = config or OptimizerConfig()
        self.traces_optimized = 0
        self.total_uops_in = 0
        self.total_uops_out = 0

    def optimize(self, trace: Trace) -> tuple[Trace, OptimizationReport]:
        """Produce the optimized replacement for ``trace``.

        The input trace is not mutated; the returned trace carries the
        same TID and origin mapping so the hot pipeline can bind dynamic
        memory addresses exactly as before.
        """
        if not self.config.enabled:
            raise OptimizationError("optimizer invoked with all passes disabled")
        report = OptimizationReport(
            uops_before=trace.original_uop_count,
            critical_path_before=trace.original_critical_path,
        )

        uops, promotion = promote_control(trace.uops, trace.tid)
        report.promotion = promotion

        renamer = VirtualRenaming()
        passes = []
        if self.config.enable_generic:
            passes += [ConstantPropagation(), LogicSimplify(), DeadCodeElimination()]
        if self.config.enable_core_specific:
            passes += [
                MicroOpFusion(),
                Simdify(),
                DeadCodeElimination(),
                renamer,
                CriticalPathScheduling(),
            ]
        for opt_pass in passes:
            uops = opt_pass.run(uops)
            key = opt_pass.name
            report.pass_applications[key] = (
                report.pass_applications.get(key, 0) + opt_pass.applied
            )
        report.virtual_renames = renamer.virtual_renames

        if not uops:
            # Degenerate but legitimate: every uop was architecturally dead
            # (e.g. a trace of self-moves).  The hardware still needs a
            # committable unit, so the trace shrinks to a single NOP.
            nop = Uop(UopKind.NOP)
            nop.origin = 0
            uops = [nop]

        optimized = Trace(
            tid=trace.tid,
            uops=uops,
            num_instructions=trace.num_instructions,
            original_uop_count=trace.original_uop_count,
            optimized=True,
            optimization_level=2 if self.config.enable_core_specific else 1,
            exec_count=trace.exec_count,
            original_critical_path=trace.original_critical_path,
            critical_path=critical_path_length(uops),
            virtual_renames=renamer.virtual_renames,
        )
        optimized.validate()

        report.uops_after = optimized.num_uops
        report.critical_path_after = optimized.critical_path
        self.traces_optimized += 1
        self.total_uops_in += report.uops_before
        self.total_uops_out += report.uops_after
        return optimized, report
