"""Architectural-equivalence checking for optimized traces.

The optimizer's transformations must preserve the trace's overall
semantics (§2.1: "provided the overall semantics of the trace is
preserved").  This module interprets a uop sequence over the concrete
value semantics of :mod:`repro.optimizer.semantics` and compares:

* the final architectural register state, and
* the ordered sequence of stores (origin, stored value).

Loads are modelled as opaque per-origin tokens (the optimizer never
duplicates a load and keeps memory operations ordered, so the token
assignment is stable across transformations).

Used heavily by the property-based test suite: every random trace must
optimize to an equivalent trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Uop
from repro.isa.opcodes import UopKind
from repro.isa.registers import NUM_ARCH_REGS, REG_NONE
from repro.optimizer.semantics import fold, initial_register_value, load_token

#: Kinds the interpreter treats as pure control (no register effect).
_CONTROL_KINDS = frozenset(
    {
        UopKind.BRANCH,
        UopKind.JUMP,
        UopKind.CALL,
        UopKind.RETURN,
        UopKind.IND_JUMP,
        UopKind.SYSCALL,
        UopKind.ASSERT_T,
        UopKind.ASSERT_NT,
        UopKind.NOP,
    }
)


@dataclass(slots=True)
class TraceMachineState:
    """Result of interpreting one uop sequence."""

    registers: list[int] = field(
        default_factory=lambda: [
            initial_register_value(r) for r in range(NUM_ARCH_REGS)
        ]
    )
    #: Ordered store records: (origin, address-operand value, data value).
    stores: list[tuple[int, int, int]] = field(default_factory=list)

    def value(self, reg: int) -> int:
        """Current value of ``reg`` (0 for the REG_NONE sentinel)."""
        return self.registers[reg] if reg != REG_NONE else 0


def interpret(uops: list[Uop]) -> TraceMachineState:
    """Execute ``uops`` over the synthetic value semantics."""
    state = TraceMachineState()
    regs = state.registers
    for uop in uops:
        kind = uop.kind
        if kind in _CONTROL_KINDS:
            continue
        if kind is UopKind.LOAD:
            if uop.dest != REG_NONE:
                regs[uop.dest] = load_token(uop.origin)
            continue
        if kind is UopKind.STORE:
            state.stores.append(
                (uop.origin, state.value(uop.src1), state.value(uop.src2))
            )
            continue
        if kind in (UopKind.SIMD2, UopKind.FP_SIMD2):
            lane0 = fold(
                UopKind.ALU, state.value(uop.src1), state.value(uop.src2), None
            )
            extras = uop.extra_srcs or ()
            lane1 = fold(
                UopKind.ALU,
                state.value(extras[0]) if len(extras) > 0 else 0,
                state.value(extras[1]) if len(extras) > 1 else 0,
                None,
            )
            if uop.dest != REG_NONE:
                regs[uop.dest] = lane0
            if uop.dest2 != REG_NONE:
                regs[uop.dest2] = lane1
            continue
        # Value-producing scalar kinds.
        result = fold(kind, state.value(uop.src1), state.value(uop.src2), uop.imm)
        if uop.dest != REG_NONE:
            regs[uop.dest] = result
    return state


@dataclass(slots=True)
class EquivalenceResult:
    """Outcome of an equivalence check, with a human-readable reason."""

    equivalent: bool
    reason: str = ""


def check_equivalence(original: list[Uop], optimized: list[Uop]) -> EquivalenceResult:
    """Compare final register state and store sequences of two uop lists."""
    state_a = interpret(original)
    state_b = interpret(optimized)
    if state_a.stores != state_b.stores:
        return EquivalenceResult(
            False,
            f"store sequences differ: {len(state_a.stores)} vs "
            f"{len(state_b.stores)} stores or mismatched values",
        )
    for reg in range(NUM_ARCH_REGS):
        if state_a.registers[reg] != state_b.registers[reg]:
            return EquivalenceResult(
                False,
                f"register {reg} differs: {state_a.registers[reg]:#x} vs "
                f"{state_b.registers[reg]:#x}",
            )
    return EquivalenceResult(True)
