"""PARROT: Power Awareness through Selective Dynamically Optimized Traces.

A from-scratch reproduction of Rosner, Almog, Moffie, Schwartz & Mendelson
(ISCA 2004): a trace-driven performance and energy simulator for
out-of-order machines extended with a selective, dynamically optimized
trace cache, plus synthetic workloads standing in for the paper's 44
proprietary application traces and a harness regenerating every table and
figure of the evaluation.

Quickstart::

    from repro import ParrotSimulator, model_config, application

    sim = ParrotSimulator(model_config("TON"))
    result = sim.simulate(application("swim"), length=20_000)
    print(result.ipc, result.total_energy, result.coverage)

Package map:

============================  ===============================================
``repro.isa``                 synthetic variable-length CISC ISA (IA32 stand-in)
``repro.workloads``           synthetic application generator + the 44-app suite
``repro.memory``              L1I/L1D/L2/DRAM hierarchy
``repro.frontend``            branch predictor, trace predictor, fetch models
``repro.pipeline``            cycle-level out-of-order timing core
``repro.trace``               TIDs, trace selection, filters, trace cache
``repro.optimizer``           dynamic trace optimizer (promotion + 7 passes)
``repro.power``               WATTCH-style energy model, leakage, CMPW
``repro.core``                the PARROT machine simulator
``repro.models``              the seven configurations N/W/TN/TW/TON/TOW/TOS
``repro.experiments``         figure/table regeneration harness
============================  ===============================================
"""

from repro.core.config import MachineConfig
from repro.core.results import SCHEMA_VERSION, SimulationResult, TraceUnitStats
from repro.core.simulator import ParrotSimulator, segment_stream
from repro.errors import (
    ConfigurationError,
    DecodeError,
    ExperimentError,
    OptimizationError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.experiments.engine import ExperimentEngine, ResultStore, Scale
from repro.experiments.runner import ExperimentRunner
from repro.models.configs import MODEL_NAMES, all_models, model_config
from repro.workloads.suite import (
    ALL_APPS,
    KILLER_APPS,
    Application,
    application,
    benchmark_suite,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_APPS",
    "Application",
    "ConfigurationError",
    "DecodeError",
    "ExperimentEngine",
    "ExperimentError",
    "ExperimentRunner",
    "KILLER_APPS",
    "MODEL_NAMES",
    "MachineConfig",
    "OptimizationError",
    "ParrotSimulator",
    "ReproError",
    "ResultStore",
    "SCHEMA_VERSION",
    "Scale",
    "SimulationError",
    "SimulationResult",
    "TraceError",
    "TraceUnitStats",
    "WorkloadError",
    "__version__",
    "all_models",
    "application",
    "benchmark_suite",
    "model_config",
    "segment_stream",
]
