"""``python -m repro`` — the command-line interface."""

from repro.cli import main

raise SystemExit(main())
