"""Scale-out grid sharding: plan, execute and merge across hosts.

The engine (:mod:`repro.experiments.engine`) parallelizes one grid on one
machine's process pool; this module is the horizontal layer above it.  An
(application x model) grid is partitioned into N deterministic,
content-keyed **shards** — work units small enough for independent hosts
or CI jobs — each of which executes against its *own*
:class:`~repro.experiments.engine.ResultStore` and artifact cache, and
the stores are then merged by run key.

Three properties make the whole scheme safe by construction:

* **determinism** — :func:`partition_tasks` is a pure function of the
  cell list and the shard count (app-affine LPT with a balancing
  rebalance pass), so every host that loads the same plan agrees on what
  shard ``i`` contains;
* **content addressing** — every cell's
  :func:`~repro.experiments.engine.run_key` is embedded in the plan and
  folded into the plan digest, so a host whose model configs, schema
  version or sampling regime drifted from the planner's *cannot* execute
  the plan (digest verification fails on load), and two hosts can never
  write different results under one key without it being corruption;
* **idempotent merge** —
  :meth:`~repro.experiments.engine.ResultStore.merge_from` copies new
  keys, skips byte-identical ones and skips-but-audits conflicts, so
  merging is safe to re-run, safe to run in any order, and safe to race.

Typical two-host flow (see EXPERIMENTS.md for the full recipe)::

    repro shard plan --models all --apps 8 --length 20000 --shards 2 \
        --output plan.json
    # host A:
    REPRO_CACHE_DIR=/tmp/shard0 repro shard run plan.json --index 0
    # host B:
    REPRO_CACHE_DIR=/tmp/shard1 repro shard run plan.json --index 1
    # anywhere (after copying the shard stores back):
    repro shard merge --into ~/.cache/repro /tmp/shard0 /tmp/shard1 \
        --plan plan.json
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.core.results import SCHEMA_VERSION
from repro.errors import ExperimentError
from repro.experiments.engine import (
    ExperimentEngine,
    MergeReport,
    ProgressFn,
    ResultStore,
    Task,
    run_key,
)
from repro.models.configs import MODEL_NAMES, model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import application, benchmark_suite

#: Version of the serialized plan format itself (not the result schema).
PLAN_VERSION = 1


# -- deterministic partitioning ----------------------------------------------


def partition_tasks(tasks: Sequence[Task], shards: int) -> list[list[Task]]:
    """Partition grid cells into ``shards`` balanced, app-affine lists.

    Cells of one application are kept together where possible (a shard
    resolves each application's compiled trace artifact once, exactly
    like the engine's per-app chunks), assigned largest-group-first to
    the least-loaded shard; a final rebalance pass moves individual
    cells from the heaviest to the lightest shard until loads differ by
    at most one cell, because a balanced partition — not affinity — is
    what bounds the fleet's wall clock (the slowest shard).

    Deterministic: equal inputs yield equal partitions on every host.
    Duplicate cells are dropped; empty shards are possible only when
    there are fewer cells than shards.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    tasks = list(dict.fromkeys(tasks))
    by_app: dict[str, list[Task]] = {}
    for task in tasks:
        by_app.setdefault(task[1], []).append(task)
    # Largest group first, ties broken by first appearance (stable sort).
    groups = sorted(by_app.values(), key=len, reverse=True)
    bins: list[list[Task]] = [[] for _ in range(shards)]
    for group in groups:
        target = min(range(shards), key=lambda i: (len(bins[i]), i))
        bins[target].extend(group)
    while True:
        hi = max(range(shards), key=lambda i: (len(bins[i]), -i))
        lo = min(range(shards), key=lambda i: (len(bins[i]), i))
        gap = len(bins[hi]) - len(bins[lo])
        if gap <= 1:
            return bins
        move = gap // 2
        bins[lo].extend(bins[hi][-move:])
        del bins[hi][-move:]


# -- the plan -----------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic, content-keyed partition of one experiment grid.

    The plan pins everything a shard's results depend on: the cell list
    per shard, the run length, the sampling regime, the execution
    backend and the result schema version.  :meth:`digest` additionally
    folds in every cell's run key — computed from the *local* model
    configurations — so :meth:`from_dict` on a host whose configs or
    schema differ from the planner's fails loudly instead of silently
    producing results that would conflict at merge time.
    """

    length: int
    shards: tuple[tuple[Task, ...], ...]
    sampling: SamplingConfig | None = None
    backend: ExecutionBackend = ExecutionBackend.SCALAR
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ExperimentError(
                f"plan length must be >= 1, got {self.length}"
            )
        if not self.shards or not any(self.shards):
            raise ExperimentError("a shard plan needs at least one cell")

    @property
    def cells(self) -> list[Task]:
        """Every grid cell of the plan, in shard order."""
        return [task for shard in self.shards for task in shard]

    def run_keys(self) -> dict[str, str]:
        """``{"model/app": run_key}`` for every cell, locally computed."""
        keys: dict[str, str] = {}
        for model_name, app_name in self.cells:
            keys[f"{model_name}/{app_name}"] = run_key(
                model_config(model_name), app_name, self.length,
                self.sampling,
            )
        return keys

    def _material(self) -> dict:
        sampling = (
            None if self.sampling is None
            else dataclasses.asdict(self.sampling)
        )
        return {
            "plan_version": PLAN_VERSION,
            "schema_version": self.schema_version,
            "length": self.length,
            "sampling": sampling,
            "backend": self.backend.value,
            "shards": [
                [list(task) for task in shard] for shard in self.shards
            ],
            "keys": self.run_keys(),
        }

    def digest(self) -> str:
        """Content digest over the plan *and* its locally derived keys."""
        material = json.dumps(self._material(), sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """JSON-representable plan, digest included."""
        payload = self._material()
        payload["digest"] = self.digest()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardPlan":
        """Reconstruct and verify a plan.

        Raises :class:`~repro.errors.ExperimentError` when the plan
        format or result schema does not match this implementation, or
        when the recomputed digest disagrees with the recorded one —
        i.e. the plan was edited, or this host's model configurations /
        sampling semantics drifted from the planner's.
        """
        try:
            version = payload["plan_version"]
            schema = payload["schema_version"]
            recorded = payload["digest"]
            sampling_fields = payload["sampling"]
            plan = cls(
                length=payload["length"],
                shards=tuple(
                    tuple((str(model), str(app)) for model, app in shard)
                    for shard in payload["shards"]
                ),
                sampling=(
                    None if sampling_fields is None
                    else SamplingConfig(**sampling_fields)
                ),
                backend=ExecutionBackend(payload["backend"]),
                schema_version=schema,
            )
        except ExperimentError:
            raise
        except Exception as exc:
            raise ExperimentError(f"unreadable shard plan: {exc}") from exc
        if version != PLAN_VERSION:
            raise ExperimentError(
                f"shard plan format v{version} is not supported "
                f"(this implementation speaks v{PLAN_VERSION})"
            )
        if schema != SCHEMA_VERSION:
            raise ExperimentError(
                f"shard plan targets result schema v{schema}, this host "
                f"produces v{SCHEMA_VERSION}; re-plan on matching versions"
            )
        actual = plan.digest()
        if actual != recorded:
            raise ExperimentError(
                "shard plan digest mismatch: the plan was edited or this "
                "host's model configurations/sampling semantics differ "
                f"from the planner's (recorded {recorded[:12]}…, "
                f"recomputed {actual[:12]}…)"
            )
        return plan

    def save(self, path: str | Path) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2,
                                         sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ShardPlan":
        """Read and verify a plan written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ExperimentError(
                f"cannot read shard plan {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)


def plan_grid(
    models: Sequence[str] | None = None,
    apps: int | Sequence[str] | None = None,
    *,
    length: int,
    shards: int,
    sampling: SamplingConfig | None = None,
    backend: ExecutionBackend = ExecutionBackend.SCALAR,
) -> ShardPlan:
    """Plan an (application x model) grid as ``shards`` work units.

    ``models`` defaults to the full model roster; ``apps`` is a balanced
    subset size (``None`` = all 44), or an explicit application-name
    list.  Unknown names raise :class:`~repro.errors.ExperimentError`.
    """
    model_names = list(MODEL_NAMES) if models is None else list(models)
    unknown = [m for m in model_names if m not in MODEL_NAMES]
    if unknown:
        raise ExperimentError(
            f"unknown model(s) {', '.join(unknown)}; known: "
            f"{', '.join(MODEL_NAMES)}"
        )
    if apps is None or isinstance(apps, int):
        app_names = [app.name for app in benchmark_suite(max_apps=apps)]
    else:
        app_names = list(apps)
        for name in app_names:
            try:
                application(name)
            except KeyError:
                raise ExperimentError(
                    f"unknown application {name!r}"
                ) from None
    tasks = [
        (model, app) for app in app_names for model in model_names
    ]
    return ShardPlan(
        length=length,
        shards=tuple(tuple(shard)
                     for shard in partition_tasks(tasks, shards)),
        sampling=sampling,
        backend=backend,
    )


# -- shard execution ----------------------------------------------------------


@dataclass
class ShardReport:
    """What one :func:`run_shard` call did."""

    index: int
    shards: int
    cells: int
    simulated: int
    from_store: int
    store_root: Path


def run_shard(
    plan: ShardPlan,
    index: int,
    *,
    store_root: str | Path | None = None,
    jobs: int = 1,
    artifacts: bool = True,
    artifact_root: str | Path | None = None,
    progress: ProgressFn | None = None,
    timeout: float | None = None,
    mp_context: Any | None = None,
) -> ShardReport:
    """Execute shard ``index`` of ``plan`` against its own result store.

    The executing engine carries a ``shard i/N`` label, so progress lines
    from N hosts interleave legibly in one aggregated log.  Cells already
    present in the shard's store are served from it — re-running a shard
    (after a crash, say) only simulates what is genuinely missing.
    """
    if not 0 <= index < len(plan.shards):
        raise ExperimentError(
            f"shard index {index} out of range; the plan has "
            f"{len(plan.shards)} shards (0..{len(plan.shards) - 1})"
        )
    store = ResultStore(store_root)
    engine = ExperimentEngine(
        plan.length,
        jobs=jobs,
        store=store,
        sampling=plan.sampling,
        backend=plan.backend,
        artifacts=artifacts,
        artifact_root=artifact_root,
        progress=progress,
        timeout=timeout,
        mp_context=mp_context,
        shard=f"shard {index + 1}/{len(plan.shards)}",
    )
    cells = list(plan.shards[index])
    engine.run(cells)
    return ShardReport(
        index=index,
        shards=len(plan.shards),
        cells=len(cells),
        simulated=engine.simulations_run,
        from_store=engine.cache_hits,
        store_root=store.root,
    )


# -- merging ------------------------------------------------------------------


def merge_stores(
    dest_root: str | Path | None,
    source_roots: Sequence[str | Path],
    *,
    quarantine: bool = True,
) -> list[MergeReport]:
    """Merge shard stores into one, idempotently; one report per source.

    Thin fan-out over
    :meth:`~repro.experiments.engine.ResultStore.merge_from`; safe to
    re-run (identical records are skipped) and order-independent up to
    conflict auditing.
    """
    dest = ResultStore(dest_root)
    return [dest.merge_from(root, quarantine=quarantine)
            for root in source_roots]


def missing_keys(plan: ShardPlan,
                 store: ResultStore | str | Path | None) -> list[str]:
    """Plan cells (``"model/app"``) not answerable from ``store``.

    The completeness audit after a merge: an empty list means the merged
    store replays the whole grid with zero simulations.
    """
    target = store if isinstance(store, ResultStore) else ResultStore(store)
    present = set(target.keys())
    return sorted(
        cell for cell, key in plan.run_keys().items()
        if key not in present
    )
