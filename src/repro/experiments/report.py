"""Report exporters: figures to Markdown / CSV, and a whole-paper report.

The text renderer on :class:`~repro.experiments.figures.FigureData` is for
terminals; these exporters feed documentation (EXPERIMENTS.md-style
tables) and downstream analysis (CSV into a spreadsheet or pandas).
"""

from __future__ import annotations

import io

from repro.experiments.figures import FIGURE_GENERATORS, FigureData, table3_1, table3_2
from repro.experiments.runner import ExperimentRunner


def _format_value(value: float, unit: str) -> str:
    if unit == "percent":
        return f"{value:+.1%}"
    if unit == "rate":
        return f"{value:.2f}"
    return f"{value:.3f}"


def to_markdown(figure: FigureData) -> str:
    """Render a figure as a GitHub-flavoured Markdown table."""
    groups: list[str] = []
    for values in figure.series.values():
        for group in values:
            if group not in groups:
                groups.append(group)
    lines = [f"### {figure.figure_id}: {figure.title}", ""]
    header = "| group | " + " | ".join(figure.series) + " |"
    separator = "|" + "---|" * (len(figure.series) + 1)
    lines += [header, separator]
    for group in groups:
        cells = []
        for values in figure.series.values():
            value = values.get(group)
            cells.append("-" if value is None else _format_value(value, figure.unit))
        lines.append(f"| {group} | " + " | ".join(cells) + " |")
    if figure.notes:
        lines += ["", f"*{figure.notes}*"]
    return "\n".join(lines)


def to_csv(figure: FigureData) -> str:
    """Render a figure as CSV (group, series..., raw values)."""
    groups: list[str] = []
    for values in figure.series.values():
        for group in values:
            if group not in groups:
                groups.append(group)
    out = io.StringIO()
    out.write("group," + ",".join(figure.series) + "\n")
    for group in groups:
        row = [group]
        for values in figure.series.values():
            value = values.get(group)
            row.append("" if value is None else repr(value))
        out.write(",".join(row) + "\n")
    return out.getvalue()


def full_report(runner: ExperimentRunner) -> str:
    """Regenerate every table and figure into one Markdown document.

    This is the one-command artefact a reviewer would ask for: the whole
    evaluation section, from the configured sweep.
    """
    parts = [
        "# PARROT reproduction — regenerated evaluation",
        "",
        f"Sweep: {len(runner.applications())} applications x "
        f"{runner.length} instructions.",
        "",
        "```",
        table3_1(),
        "",
        table3_2(),
        "```",
        "",
    ]
    for name, generator in FIGURE_GENERATORS.items():
        parts.append(to_markdown(generator(runner)))
        parts.append("")
    return "\n".join(parts)
