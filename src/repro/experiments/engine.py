"""Parallel experiment engine with a persistent result store.

Every figure and table of the evaluation is a view over the same
(application x model) grid, and one grid cell — a simulation run — is a
pure function of (model configuration, application, run length, generator
seed).  That purity buys two things:

* **fan-out**: cells evaluate in parallel on a
  :class:`~concurrent.futures.ProcessPoolExecutor` with per-run crash
  retry and a stall timeout (:class:`ExperimentEngine`);
* **persistence**: finished cells land in a content-keyed on-disk JSON
  store (:class:`ResultStore`), so a repeated sweep/figure/benchmark
  invocation re-reads results instead of re-simulating.

The store key is a SHA-256 digest over the full model configuration
(``repr`` of the frozen :class:`~repro.core.config.MachineConfig`
dataclass tree), the application name, its generator seed, the run length,
:data:`~repro.core.results.SCHEMA_VERSION` and the run regime carried by
:class:`~repro.core.simulator.RunOptions` (sampling fingerprint, prewarm
when disabled; the execution backend is excluded — all three backends
are pinned bit-identical) — any change to a model parameter, a workload
profile seed or the result schema silently keys to fresh entries, so
stale records can never be served.

A third property — every model of an application consumes the
bit-identical dynamic stream — drives the scheduler: missing cells are
grouped into per-application **chunks**, each submitted to the pool as one
call, so a worker resolves the application's compiled trace artifact
(:class:`~repro.workloads.tracefile.ArtifactCache`), its shared segment
partition and a :class:`~repro.core.simulator.ColdPlanCache` over it once,
and replays them for every model in the chunk (models with equal fetch
parameters and backend share compiled cold plans through the cache).
Workers are reused processes, so per-worker memos also amortise model
configs, simulators and applications across everything a worker executes.

Scale knobs (application count, run length, worker count, cache on/off,
artifact cache on/off, sampling regime, execution backend) are unified in
the :class:`Scale` dataclass; :func:`resolve_run_options` is the single
seam where sampling/backend specs from the environment
(``REPRO_BENCH_*``) or CLI arguments become a
:class:`~repro.core.simulator.RunOptions`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.config import MachineConfig
from repro.core.results import SCHEMA_VERSION, SimulationResult
from repro.core.simulator import ColdPlanCache, ParrotSimulator, RunOptions
from repro.errors import ExperimentError
from repro.models.configs import MODEL_NAMES, model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import Application, app_seed, application
from repro.workloads.tracefile import ArtifactCache, TraceArtifact

#: Environment variables controlling benchmark scale and the result store.
ENV_APPS = "REPRO_BENCH_APPS"
ENV_LENGTH = "REPRO_BENCH_LENGTH"
ENV_JOBS = "REPRO_BENCH_JOBS"
ENV_CACHE = "REPRO_BENCH_CACHE"
ENV_TIMEOUT = "REPRO_BENCH_TIMEOUT"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_SAMPLING = "REPRO_BENCH_SAMPLING"
ENV_ARTIFACTS = "REPRO_BENCH_ARTIFACTS"
ENV_BACKEND = "REPRO_BENCH_BACKEND"

DEFAULT_APPS = 15
DEFAULT_LENGTH = 20_000

#: One grid cell: (model name, application name).
Task = tuple[str, str]
#: Progress callback: (completed, total, "model/app", source) where source
#: is ``"run"`` for a fresh simulation and ``"store"`` for a disk hit.
ProgressFn = Callable[[int, int, str, str], None]


def default_jobs() -> int:
    """Worker count: ``REPRO_BENCH_JOBS`` if set, else the usable cores.

    "Usable" respects the process CPU-affinity mask
    (``os.sched_getaffinity``) where the platform exposes one: a
    containerized CI shard pinned to 2 of a 64-core host gets 2 workers
    instead of oversubscribing 64.  Platforms without affinity (macOS,
    Windows) fall back to ``os.cpu_count()``.
    """
    raw = os.environ.get(ENV_JOBS, "").strip()
    if raw:
        jobs = int(raw)
        if jobs < 1:
            raise ValueError(f"{ENV_JOBS} must be >= 1, got {jobs}")
        return jobs
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - affinity query denied
            pass
    return os.cpu_count() or 1


def parse_apps(text: str) -> int | None:
    """Parse an application-count spec; ``all``/``full``/``44`` -> None."""
    if str(text).lower() in ("all", "full", "44"):
        return None
    count = int(text)
    if count < 1:
        raise ValueError(f"application count must be >= 1, got {count}")
    return count


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def parse_backend(spec: str | None) -> ExecutionBackend:
    """Parse an execution-backend spec (``scalar``/``columnar``/``compiled``).

    ``None`` or an empty string selects the scalar reference backend.
    """
    if spec is None:
        return ExecutionBackend.SCALAR
    text = str(spec).strip().lower()
    if not text:
        return ExecutionBackend.SCALAR
    try:
        return ExecutionBackend(text)
    except ValueError:
        choices = ", ".join(b.value for b in ExecutionBackend)
        raise ValueError(
            f"unknown execution backend {spec!r}; choose from: {choices}"
        ) from None


def resolve_run_options(
    sampling_spec: str | None = None,
    backend_spec: str | None = None,
) -> RunOptions:
    """Parse user-facing regime specs into a :class:`RunOptions`.

    The single spec-parsing seam shared by the CLI, the engine and the
    benchmark runner: ``sampling_spec`` follows
    :meth:`~repro.sampling.config.SamplingConfig.parse` (falling back to
    ``REPRO_BENCH_SAMPLING``), ``backend_spec`` follows
    :func:`parse_backend` (falling back to ``REPRO_BENCH_BACKEND``).
    """
    if sampling_spec is None:
        sampling_spec = os.environ.get(ENV_SAMPLING)
    if backend_spec is None:
        backend_spec = os.environ.get(ENV_BACKEND)
    return RunOptions(
        sampling=SamplingConfig.parse(sampling_spec),
        backend=parse_backend(backend_spec),
    )


@dataclass(frozen=True, slots=True)
class Scale:
    """The unified scale knobs of one experiment-grid evaluation.

    ``apps`` is the balanced application-subset size (``None`` = the full
    44-app roster), ``length`` the instructions simulated per application,
    ``jobs`` the process-pool width, ``cache`` whether runs are served
    from / written to the persistent result store, ``sampling`` the
    sampled-simulation regime (``None`` = full detail), ``artifacts``
    whether runs ingest compiled trace artifacts instead of re-walking the
    workload generator per cell, and ``backend`` the batch executor
    evaluating planned segments (scalar reference, or its bit-identical
    columnar and compiled twins).
    """

    apps: int | None = DEFAULT_APPS
    length: int = DEFAULT_LENGTH
    jobs: int = field(default_factory=default_jobs)
    cache: bool = True
    sampling: SamplingConfig | None = None
    artifacts: bool = True
    backend: ExecutionBackend = ExecutionBackend.SCALAR

    def run_options(self) -> RunOptions:
        """The per-run regime knobs as a :class:`RunOptions`."""
        return RunOptions(sampling=self.sampling, backend=self.backend)

    @classmethod
    def from_environment(cls) -> "Scale":
        """Resolve every knob from the ``REPRO_BENCH_*`` variables.

        ``REPRO_BENCH_APPS`` (count or ``all``), ``REPRO_BENCH_LENGTH``,
        ``REPRO_BENCH_JOBS`` (default: all cores), ``REPRO_BENCH_CACHE``
        (``0`` disables the result store), ``REPRO_BENCH_SAMPLING``
        (``off``/``on``/``D:G:W[:F][:CONF]``; see
        :meth:`~repro.sampling.config.SamplingConfig.parse`),
        ``REPRO_BENCH_ARTIFACTS`` (``0`` disables the artifact fast path)
        and ``REPRO_BENCH_BACKEND``
        (``scalar``/``columnar``/``compiled``).
        """
        options = resolve_run_options()
        return cls(
            apps=parse_apps(os.environ.get(ENV_APPS, str(DEFAULT_APPS))),
            length=int(os.environ.get(ENV_LENGTH, str(DEFAULT_LENGTH))),
            jobs=default_jobs(),
            cache=_env_flag(ENV_CACHE),
            sampling=options.sampling,
            artifacts=_env_flag(ENV_ARTIFACTS),
            backend=options.backend,
        )

    @classmethod
    def from_args(cls, args: Any) -> "Scale":
        """Resolve from parsed CLI arguments (``--apps/--length/--jobs/
        --no-cache/--sampling/--no-artifacts/--backend``); unset
        ``--jobs`` falls back to the environment, and absent
        ``--sampling``/``--backend`` fall back to
        ``REPRO_BENCH_SAMPLING``/``REPRO_BENCH_BACKEND``."""
        jobs = getattr(args, "jobs", None)
        no_cache = bool(getattr(args, "no_cache", False))
        no_artifacts = bool(getattr(args, "no_artifacts", False))
        options = resolve_run_options(
            getattr(args, "sampling", None),
            getattr(args, "backend", None),
        )
        return cls(
            apps=parse_apps(args.apps),
            length=args.length,
            jobs=default_jobs() if jobs is None else jobs,
            cache=not no_cache and _env_flag(ENV_CACHE),
            sampling=options.sampling,
            artifacts=not no_artifacts and _env_flag(ENV_ARTIFACTS),
            backend=options.backend,
        )


# -- the persistent result store ---------------------------------------------


def config_fingerprint(config: MachineConfig) -> str:
    """Deterministic text fingerprint of a full machine configuration.

    ``MachineConfig`` is a frozen dataclass of frozen dataclasses and
    scalars, so its ``repr`` enumerates every parameter in declaration
    order — any microarchitectural change alters the fingerprint.
    """
    return repr(config)


def run_key(
    config: MachineConfig,
    app_name: str,
    length: int,
    options: "SamplingConfig | RunOptions | None" = None,
) -> str:
    """Content key of one simulation run in the result store.

    The key material carries the simulation regime — ``sampling=off`` for
    full detail, the full :meth:`~repro.sampling.config.SamplingConfig.
    fingerprint` otherwise — so a sampled estimate can never be served
    where a full-detail result was asked for (or vice versa), and two
    different sampling configurations never collide either.

    ``options`` accepts either a bare :class:`SamplingConfig` (historical
    call shape) or a full :class:`RunOptions`.  Of the run options, only
    the result-affecting regime knobs enter the key: sampling always,
    prewarm when disabled.  The execution *backend* is deliberately
    excluded — scalar, columnar and compiled are pinned bit-identical by
    the golden parity suite, so any backend may serve a stored cell.
    """
    prewarm = True
    if isinstance(options, RunOptions):
        sampling = options.sampling
        prewarm = options.prewarm
    else:
        sampling = options
    parts = [
        f"schema={SCHEMA_VERSION}",
        f"model={config_fingerprint(config)}",
        f"app={app_name}",
        f"seed={app_seed(app_name)}",
        f"length={length}",
        f"sampling={'off' if sampling is None else sampling.fingerprint()}",
    ]
    if not prewarm:
        parts.append("prewarm=0")
    material = "|".join(parts)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def default_store_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True, slots=True)
class StoreInfo:
    """A snapshot of the result store's contents.

    ``stale_tmp`` counts orphaned ``.tmp.<pid>`` files from crashed
    writers that the snapshot swept away.
    """

    path: Path
    entries: int
    total_bytes: int
    schema_version: int = SCHEMA_VERSION
    stale_tmp: int = 0


def _result_digest(payload: dict) -> str:
    """Canonical content digest of one stored record's result payload."""
    material = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class MergeReport:
    """Audit trail of one :meth:`ResultStore.merge_from` pass.

    ``copied`` records were new to the destination, ``identical`` existed
    with a byte-equal result payload (skipped — the merge is idempotent),
    ``conflicts`` lists keys that existed with a *different* payload
    (skipped too — the destination wins — but surfaced for audit: with
    content-derived keys a conflict means corruption or a schema lie),
    and ``quarantined`` counts source records that failed to parse or
    whose embedded key contradicted their filename (deleted best-effort).
    """

    source: Path
    copied: int = 0
    identical: int = 0
    conflicts: list[str] = field(default_factory=list)
    quarantined: int = 0

    @property
    def scanned(self) -> int:
        """Source records examined in this pass."""
        return (self.copied + self.identical + len(self.conflicts)
                + self.quarantined)


class ResultStore:
    """Content-keyed persistent store of simulation results.

    One JSON file per run, sharded by the first two hex digits of the key
    (``<root>/<k[:2]>/<k>.json``).  Writes are atomic (temp file +
    ``os.replace``), so a crashed or parallel writer can never leave a
    half-written record; unreadable records are treated as misses.

    Several processes may share one root (grid shards, the serve front
    end, a concurrent ``cache clear``): every directory scan and unlink
    tolerates entries deleted underneath it mid-walk.

    ``lru`` > 0 adds an in-process LRU over deserialized results, so a
    repeated ``load`` of a warm key skips disk and JSON decode entirely
    (the serve front end's hot path).  LRU hits still count as ``hits``;
    they are additionally tallied in ``lru_hits``.
    """

    def __init__(self, root: str | Path | None = None, *, lru: int = 0):
        self.root = Path(root) if root is not None else default_store_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.lru_hits = 0
        self._lru_limit = max(0, int(lru))
        self._lru: OrderedDict[str, SimulationResult] = OrderedDict()
        self._lru_lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _lru_get(self, key: str) -> SimulationResult | None:
        if not self._lru_limit:
            return None
        with self._lru_lock:
            result = self._lru.get(key)
            if result is not None:
                self._lru.move_to_end(key)
            return result

    def _lru_put(self, key: str, result: SimulationResult) -> None:
        if not self._lru_limit:
            return
        with self._lru_lock:
            self._lru[key] = result
            self._lru.move_to_end(key)
            while len(self._lru) > self._lru_limit:
                self._lru.popitem(last=False)

    def load(self, key: str) -> SimulationResult | None:
        """The stored result under ``key``, or ``None`` on any miss."""
        cached = self._lru_get(key)
        if cached is not None:
            self.hits += 1
            self.lru_hits += 1
            return cached
        try:
            payload = json.loads(self._path(key).read_text())
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        self._lru_put(key, result)
        return result

    def store(self, key: str, result: SimulationResult) -> None:
        """Persist ``result`` under ``key`` (atomic, last writer wins)."""
        self._write_record(key, {
            "key": key,
            "model": result.model_name,
            "app": result.app_name,
            "result": result.to_dict(),
        })
        self._lru_put(key, result)
        self.writes += 1

    def _write_record(self, key: str, record: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, path)

    def _scan(self, match: Callable[[str], bool]) -> list[Path]:
        """Record paths whose filename satisfies ``match``.

        Built on explicit ``os.scandir`` walks with per-directory
        tolerance: a shard directory (or the root) deleted by a
        concurrent ``clear()``/sweeper between listing and scanning is
        skipped, where ``Path.glob`` would raise ``FileNotFoundError``
        mid-iteration — a latent race once N shard processes share one
        cache root.
        """
        try:
            shards = sorted(
                entry.path for entry in os.scandir(self.root)
                if entry.is_dir(follow_symlinks=False)
            )
        except OSError:
            return []
        found: list[Path] = []
        for shard in shards:
            try:
                entries = sorted(
                    entry.path for entry in os.scandir(shard)
                    if entry.is_file(follow_symlinks=False)
                    and match(entry.name)
                )
            except OSError:
                continue  # shard swept by a concurrent deleter mid-walk
            found.extend(Path(path) for path in entries)
        return found

    def _records(self) -> list[Path]:
        return self._scan(lambda name: name.endswith(".json"))

    def keys(self) -> list[str]:
        """Keys of every record currently on disk (sorted)."""
        return [record.name[:-len(".json")] for record in self._records()]

    def _sweep_stale_tmp(self) -> int:
        """Remove ``.tmp.<pid>`` files orphaned by crashed writers.

        A writer that dies between ``write_text`` and ``os.replace`` leaks
        its temp file forever (no retry ever reuses the name, and ``clear``
        would fail to ``rmdir`` the shard around it).  Returns the number
        swept; a tmp file concurrently renamed or deleted mid-sweep is
        skipped, so N processes may sweep one root at once.
        """
        swept = 0
        for tmp in self._scan(lambda name: ".tmp." in name):
            try:
                tmp.unlink()
                swept += 1
            except OSError:
                pass  # renamed into place or swept by a concurrent process
        return swept

    def info(self) -> StoreInfo:
        """Entry count and on-disk footprint of the store.

        Also sweeps stale writer temp files and reports how many it found.
        """
        stale = self._sweep_stale_tmp()
        records = self._records()
        total = 0
        entries = 0
        for record in records:
            try:
                total += record.stat().st_size
            except OSError:
                continue  # deleted since the scan: not an entry anymore
            entries += 1
        return StoreInfo(path=self.root, entries=entries,
                         total_bytes=total, stale_tmp=stale)

    def clear(self) -> int:
        """Delete every stored record; returns the number removed.

        Stale writer temp files are swept too (they are not counted — they
        were never entries), so emptied shards always ``rmdir`` cleanly.
        Safe to race against concurrent writers and other clearers: an
        entry deleted underneath us is simply not counted.
        """
        self._sweep_stale_tmp()
        removed = 0
        for record in self._records():
            try:
                record.unlink()
                removed += 1
            except OSError:
                pass
        try:
            shards = [entry.path for entry in os.scandir(self.root)
                      if entry.is_dir(follow_symlinks=False)]
        except OSError:
            shards = []
        for shard in shards:
            try:
                os.rmdir(shard)
            except OSError:
                pass
        with self._lru_lock:
            self._lru.clear()
        return removed

    # -- scale-out merge ---------------------------------------------------

    def merge_from(self, source: "ResultStore | str | Path",
                   *, quarantine: bool = True) -> MergeReport:
        """Merge another store's records into this one, idempotently.

        Records are matched by run key (the filename).  A key new to this
        store is copied (atomic write); a key present in both with a
        byte-identical result payload is skipped, so re-running a merge —
        or merging A into B and B into A — converges on the same store.
        A key present in both with a *different* payload is a conflict:
        the destination record wins (skip-on-conflict) and the key lands
        in :attr:`MergeReport.conflicts` for audit — run keys are derived
        from the full content of the run request, so a genuine conflict
        means a corrupt record or an implementation that lied about its
        schema, never a benign difference.

        Source records that fail to parse, decode to no result, or carry
        an embedded key contradicting their filename are quarantined:
        counted in :attr:`MergeReport.quarantined` and (with
        ``quarantine=True``) deleted from the source best-effort so the
        next merge pass does not trip over them again.
        """
        src = source if isinstance(source, ResultStore) else ResultStore(source)
        report = MergeReport(source=src.root)
        for record_path in src._records():
            key = record_path.name[:-len(".json")]
            try:
                record = json.loads(record_path.read_text())
                payload = record["result"]
                if record.get("key") != key:
                    raise ValueError(
                        f"embedded key {record.get('key')!r} contradicts "
                        f"filename {key!r}"
                    )
                SimulationResult.from_dict(payload)  # validate schema
            except FileNotFoundError:
                continue  # deleted by a concurrent merger: nothing to do
            except (OSError, ValueError, KeyError, TypeError):
                report.quarantined += 1
                if quarantine:
                    try:
                        record_path.unlink()
                    except OSError:
                        pass
                continue
            mine = self._path(key)
            try:
                existing = json.loads(mine.read_text())["result"]
            except (OSError, ValueError, KeyError):
                existing = None
            if existing is None:
                self._write_record(key, record)
                report.copied += 1
            elif _result_digest(existing) == _result_digest(payload):
                report.identical += 1
            else:
                report.conflicts.append(key)
        return report


# -- the process-pool engine --------------------------------------------------

# Pool workers are reused processes, so module-level memos amortise the
# per-cell setup cost across every cell a worker ever executes: model
# configs and simulators by model name, Application handles by app name,
# and the two most recent (artifact, shared segment partition, cold-plan
# memo) entries by (cache root, app, length).  ParrotSimulator keeps no
# state across runs
# (everything lives in a per-run machine), so sharing one instance per
# model is safe; the artifact memo is a tiny LRU because one decoded
# instruction list plus its segment partition is the only per-app state
# worth holding, and chunk scheduling gives each worker app affinity.
_WORKER_SIMULATORS: dict[str, ParrotSimulator] = {}
_WORKER_APPS: dict[str, Application] = {}
_WORKER_ARTIFACT_CACHES: dict[str, ArtifactCache] = {}
_WORKER_ARTIFACTS: OrderedDict[tuple[str, str, int], list] = OrderedDict()
_WORKER_ARTIFACT_LIMIT = 2


def _worker_simulator(model_name: str) -> ParrotSimulator:
    simulator = _WORKER_SIMULATORS.get(model_name)
    if simulator is None:
        simulator = ParrotSimulator(model_config(model_name))
        _WORKER_SIMULATORS[model_name] = simulator
    return simulator


def _worker_application(app_name: str) -> Application:
    app = _WORKER_APPS.get(app_name)
    if app is None:
        app = application(app_name)
        _WORKER_APPS[app_name] = app
    return app


def _worker_artifact_cache(root: str) -> ArtifactCache:
    cache = _WORKER_ARTIFACT_CACHES.get(root)
    if cache is None:
        cache = ArtifactCache(root)
        _WORKER_ARTIFACT_CACHES[root] = cache
    return cache


def _worker_artifact(
    cache: ArtifactCache,
    app_name: str,
    length: int,
    want_segments: bool,
) -> tuple[TraceArtifact, list | None, ColdPlanCache | None]:
    """The (artifact, shared segments, plan cache) for one worker-memoized app.

    The segment partition is model-independent (the selector segments the
    raw dynamic stream before any model state exists), so it is resolved
    once per (app, length) via :meth:`TraceArtifact.segments` and replayed
    for every model — but only in full-detail mode (``want_segments``);
    sampled runs drive their own interval schedule off the stream.  The
    :class:`~repro.core.simulator.ColdPlanCache` is bound to that segment
    list and partitions plans by (fetch parameters, backend); it lives and
    dies with the entry, so plans can never leak across applications.
    """
    memo_key = (str(cache.root), app_name, length)
    entry = _WORKER_ARTIFACTS.get(memo_key)
    if entry is None:
        artifact = cache.get_or_compile(_worker_application(app_name), length)
        entry = [artifact, None, None]
        _WORKER_ARTIFACTS[memo_key] = entry
        while len(_WORKER_ARTIFACTS) > _WORKER_ARTIFACT_LIMIT:
            _WORKER_ARTIFACTS.popitem(last=False)
    else:
        _WORKER_ARTIFACTS.move_to_end(memo_key)
    artifact = entry[0]
    if not want_segments:
        return artifact, None, None
    if entry[1] is None:
        entry[1] = artifact.segments()
        entry[2] = ColdPlanCache(entry[1])
    return artifact, entry[1], entry[2]


def simulate_task(
    model_name: str,
    app_name: str,
    length: int,
    sampling: SamplingConfig | None = None,
    backend: ExecutionBackend = ExecutionBackend.SCALAR,
) -> dict:
    """Worker entry point: run one grid cell, return its serialized result.

    Executes in a pool worker; the payload crosses the process boundary as
    a ``SimulationResult.to_dict()`` dict (the same schema the result
    store persists), keeping worker IPC and the store on one format.  With
    ``sampling`` set the run is sampled and the payload is the
    extrapolated result.  The simulator and application handle come from
    the worker-local memos, so a reused worker never rebuilds them.
    """
    result = _worker_simulator(model_name).simulate(
        _worker_application(app_name),
        RunOptions(sampling=sampling, backend=backend),
        length=length,
    )
    return result.to_dict()


def simulate_chunk(
    cells: Sequence[Task],
    length: int,
    sampling: SamplingConfig | None = None,
    artifact_root: str | None = None,
    task_fn: Callable[..., dict] | None = None,
    backend: ExecutionBackend = ExecutionBackend.SCALAR,
) -> dict:
    """Worker entry point: run a chunk of grid cells in one pool call.

    ``cells`` share one application by construction (see
    ``ExperimentEngine._plan_chunks``), so with ``artifact_root`` set the
    worker resolves the app's compiled trace artifact and shared segment
    partition once and replays them for every model in the chunk.  With
    ``artifact_root=None`` (artifacts disabled) each cell runs through the
    generator path; a custom ``task_fn`` (test harnesses) is called per
    cell exactly as the unchunked engine did, and its exceptions propagate
    raw so the engine can attribute them.

    Returns ``{"results": [...], "artifact_hits": h, "artifact_compiles": c}``
    with one serialized result per cell, in cell order.
    """
    if task_fn is not None:
        extra = () if sampling is None else (sampling,)
        return {
            "results": [
                task_fn(model, app, length, *extra) for model, app in cells
            ],
            "artifact_hits": 0,
            "artifact_compiles": 0,
        }
    if artifact_root is None:
        return {
            "results": [
                simulate_task(model, app, length, sampling, backend)
                for model, app in cells
            ],
            "artifact_hits": 0,
            "artifact_compiles": 0,
        }
    cache = _worker_artifact_cache(artifact_root)
    hits0, compiles0 = cache.hits, cache.compiles
    results = []
    for model_name, app_name in cells:
        artifact, segments, plan_cache = _worker_artifact(
            cache, app_name, length, want_segments=sampling is None
        )
        result = _worker_simulator(model_name).simulate(
            artifact,
            RunOptions(
                sampling=sampling, backend=backend,
                segments=segments, cold_plans=plan_cache,
            ),
        )
        results.append(result.to_dict())
    return {
        "results": results,
        "artifact_hits": cache.hits - hits0,
        "artifact_compiles": cache.compiles - compiles0,
    }


class ExperimentEngine:
    """Evaluate (application x model) grid cells, in parallel, cached.

    The engine owns the two cross-cutting counters the harness and the
    acceptance tests read: ``cache_hits`` (runs served from the persistent
    store) and ``simulations_run`` (runs actually simulated, in-process or
    in a worker).

    Fault handling in the parallel path:

    * a crashed worker (``BrokenProcessPool``) triggers one pool rebuild
      and resubmission of the unfinished cells; a second crash raises
      :class:`~repro.errors.ExperimentError`;
    * any other worker exception is a real simulation failure: the
      surviving workers are terminated and the grid fails with an
      :class:`~repro.errors.ExperimentError` naming the failing
      (model, app) cell, the worker traceback chained as ``__cause__``;
    * ``timeout`` bounds the wait for the *next* completion — if no run
      finishes within it the surviving workers are terminated and the
      grid fails (a deterministic simulator either finishes or is hung).

    Progress reported through ``progress`` is clamped monotonic across
    crash retries.
    """

    def __init__(
        self,
        length: int = DEFAULT_LENGTH,
        *,
        jobs: int = 1,
        store: ResultStore | None = None,
        timeout: float | None = None,
        progress: ProgressFn | None = None,
        task_fn: Callable[..., dict] = simulate_task,
        mp_context: Any | None = None,
        sampling: SamplingConfig | None = None,
        artifacts: bool = True,
        artifact_root: str | Path | None = None,
        backend: ExecutionBackend = ExecutionBackend.SCALAR,
        shard: str | None = None,
    ):
        if timeout is None:
            raw = os.environ.get(ENV_TIMEOUT, "").strip()
            timeout = float(raw) if raw else None
        self.length = length
        self.jobs = max(1, jobs)
        self.store = store
        self.timeout = timeout
        self.progress = progress
        self.task_fn = task_fn
        self.mp_context = mp_context
        self.sampling = sampling
        self.backend = backend
        self.shard = shard
        self.artifact_cache = ArtifactCache(artifact_root) if artifacts else None
        self.simulations_run = 0
        self._simulators: dict[str, ParrotSimulator] = {}
        self._configs: dict[str, MachineConfig] = {}
        self._artifact_memo: OrderedDict[str, list] = OrderedDict()
        self._pool_artifact_hits = 0
        self._pool_artifact_compiles = 0
        self._reported_done = 0

    # -- bookkeeping -------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Runs served from the persistent store instead of simulated."""
        return self.store.hits if self.store is not None else 0

    @property
    def artifact_hits(self) -> int:
        """Compiled trace artifacts loaded from disk (engine + workers)."""
        own = self.artifact_cache.hits if self.artifact_cache else 0
        return own + self._pool_artifact_hits

    @property
    def artifact_compiles(self) -> int:
        """Compiled trace artifacts built from scratch (engine + workers)."""
        own = self.artifact_cache.compiles if self.artifact_cache else 0
        return own + self._pool_artifact_compiles

    def _config(self, model_name: str) -> MachineConfig:
        if model_name not in MODEL_NAMES:
            raise ExperimentError(
                f"unknown model {model_name!r}; known: {MODEL_NAMES}"
            )
        if model_name not in self._configs:
            self._configs[model_name] = model_config(model_name)
        return self._configs[model_name]

    def _key(self, task: Task) -> str:
        model_name, app_name = task
        return run_key(self._config(model_name), app_name, self.length,
                       self.sampling)

    # -- execution ---------------------------------------------------------

    def run_one(self, model_name: str, app_name: str) -> SimulationResult:
        """One grid cell: store lookup, else an in-process simulation."""
        return self.run([(model_name, app_name)])[(model_name, app_name)]

    def run(self, tasks: Sequence[Task]) -> dict[Task, SimulationResult]:
        """Evaluate ``tasks``; returns ``{(model, app): result}``.

        Store hits are collected first; the remainder is simulated — on
        the process pool when ``jobs > 1`` and more than one cell is
        missing, in-process otherwise.
        """
        tasks = list(dict.fromkeys(tasks))
        self._reported_done = 0
        results: dict[Task, SimulationResult] = {}
        missing: list[Task] = []
        for task in tasks:
            cached = self.store.load(self._key(task)) if self.store else None
            if cached is not None:
                results[task] = cached
                self._report(len(results), len(tasks), task, "store")
            else:
                missing.append(task)
        if missing:
            if self.jobs > 1 and len(missing) > 1:
                fresh = self._run_parallel(missing, done=len(results),
                                           total=len(tasks))
            else:
                fresh = self._run_serial(missing, done=len(results),
                                         total=len(tasks))
            for task, result in fresh.items():
                if self.store is not None:
                    self.store.store(self._key(task), result)
                results[task] = result
        return results

    def _report(self, done: int, total: int, task: Task, source: str,
                chunk: str = "") -> None:
        if self.progress is not None:
            # Reported progress is clamped monotonic: a pool-crash retry
            # replays its pass from the pre-crash count, and completed
            # work is never "un-done" from the caller's point of view.
            done = max(done, self._reported_done)
            self._reported_done = done
            label = f"{task[0]}/{task[1]}"
            if chunk:
                # The serial and parallel paths both annotate runs with
                # their chunk, so multi-host shard logs line up 1:1.
                label = f"{label} [{chunk}]"
            if self.shard:
                label = f"{self.shard}:{label}"
            self.progress(done, total, label, source)

    def _simulator(self, model_name: str) -> ParrotSimulator:
        if model_name not in self._simulators:
            self._simulators[model_name] = ParrotSimulator(
                self._config(model_name)
            )
        return self._simulators[model_name]

    def _serial_artifact(
        self, app_name: str
    ) -> tuple[TraceArtifact, list | None, ColdPlanCache | None]:
        """In-process analogue of the worker artifact memo (LRU of 2)."""
        entry = self._artifact_memo.get(app_name)
        if entry is None:
            artifact = self.artifact_cache.get_or_compile(
                application(app_name), self.length
            )
            entry = [artifact, None, None]
            self._artifact_memo[app_name] = entry
            while len(self._artifact_memo) > _WORKER_ARTIFACT_LIMIT:
                self._artifact_memo.popitem(last=False)
        else:
            self._artifact_memo.move_to_end(app_name)
        if self.sampling is not None:
            return entry[0], None, None
        if entry[1] is None:
            entry[1] = entry[0].segments()
            entry[2] = ColdPlanCache(entry[1])
        return entry[0], entry[1], entry[2]

    def _run_serial(
        self, tasks: list[Task], *, done: int, total: int
    ) -> dict[Task, SimulationResult]:
        for model_name, _ in tasks:
            self._config(model_name)  # validate names before simulating
        # Group cells into per-application chunks (the same planner the
        # pool path uses, one "worker") so the artifact and its shared
        # segment partition are resolved once per app and replayed for
        # every model — and so progress lines carry the same chunk labels
        # the parallel path reports.
        chunks = self._plan_chunks(tasks, 1)
        use_artifacts = (
            self.artifact_cache is not None and self.task_fn is simulate_task
        )
        results: dict[Task, SimulationResult] = {}
        for index, chunk in enumerate(chunks):
            tag = f"chunk {index + 1}/{len(chunks)}"
            app_name = chunk[0][1]
            artifact = segments = plan_cache = None
            if use_artifacts:
                artifact, segments, plan_cache = self._serial_artifact(
                    app_name
                )
            for model_name, _ in chunk:
                simulator = self._simulator(model_name)
                if artifact is not None:
                    result = simulator.simulate(
                        artifact,
                        RunOptions(
                            sampling=self.sampling, backend=self.backend,
                            segments=segments, cold_plans=plan_cache,
                        ),
                    )
                else:
                    result = simulator.simulate(
                        application(app_name),
                        RunOptions(
                            sampling=self.sampling, backend=self.backend,
                        ),
                        length=self.length,
                    )
                results[(model_name, app_name)] = result
                self.simulations_run += 1
                done += 1
                self._report(done, total, (model_name, app_name), "run",
                             chunk=tag)
        return results

    def _run_parallel(
        self, tasks: list[Task], *, done: int, total: int
    ) -> dict[Task, SimulationResult]:
        for model_name, _ in tasks:
            self._config(model_name)  # validate names before forking
        results: dict[Task, SimulationResult] = {}
        pending = list(tasks)
        start = done
        for attempt in (0, 1):
            try:
                done = self._pool_pass(pending, results, done=done, total=total)
                return results
            except BrokenProcessPool:
                pending = [t for t in tasks if t not in results]
                if not pending:
                    return results
                if attempt == 1:
                    raise ExperimentError(
                        f"worker pool crashed twice; {len(pending)} of "
                        f"{len(tasks)} runs unfinished"
                    )
                done = start + len(results)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _plan_chunks(tasks: list[Task], jobs: int) -> list[list[Task]]:
        """Group cells into per-application chunks, balanced across jobs.

        One chunk = one pool call = one application, so a worker resolves
        the app's artifact and segment partition once per chunk.  If that
        yields fewer chunks than workers, the largest chunks are split in
        half (still single-app) until every worker has something to do —
        worker-affinity matters less than keeping the pool saturated.
        """
        by_app: dict[str, list[Task]] = {}
        for task in tasks:
            by_app.setdefault(task[1], []).append(task)
        chunks = list(by_app.values())
        while len(chunks) < min(jobs, len(tasks)):
            largest = max(range(len(chunks)), key=lambda i: len(chunks[i]))
            chunk = chunks[largest]
            if len(chunk) < 2:
                break
            mid = len(chunk) // 2
            chunks[largest] = chunk[:mid]
            chunks.append(chunk[mid:])
        return chunks

    @staticmethod
    def _chunk_label(chunk: list[Task]) -> str:
        if len(chunk) == 1:
            return f"{chunk[0][0]}/{chunk[0][1]}"
        models = ", ".join(model for model, _ in chunk)
        return f"{chunk[0][1]} x [{models}]"

    def _pool_pass(
        self,
        tasks: list[Task],
        results: dict[Task, SimulationResult],
        *,
        done: int,
        total: int,
    ) -> int:
        chunks = self._plan_chunks(tasks, self.jobs)
        workers = min(self.jobs, len(chunks))
        # A custom task_fn (test harness) is forwarded per cell inside the
        # chunk call; the default path runs artifact-backed in the worker.
        custom = None if self.task_fn is simulate_task else self.task_fn
        root = (
            str(self.artifact_cache.root)
            if custom is None and self.artifact_cache is not None
            else None
        )
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=self.mp_context
        ) as pool:
            futures: dict[Future, tuple[str, list[Task]]] = {
                pool.submit(
                    simulate_chunk, chunk, self.length, self.sampling,
                    artifact_root=root, task_fn=custom,
                    backend=self.backend,
                ): (f"chunk {index + 1}/{len(chunks)}", chunk)
                for index, chunk in enumerate(chunks)
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(
                    pending, timeout=self.timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not finished:
                    self._terminate(pool)
                    abandoned = sum(len(futures[f][1]) for f in pending)
                    raise ExperimentError(
                        f"no simulation finished within {self.timeout}s; "
                        f"{abandoned} runs abandoned"
                    )
                broken: BrokenProcessPool | None = None
                for future in finished:
                    tag, chunk = futures[future]
                    try:
                        payload = future.result()
                    except BrokenProcessPool as exc:
                        # Record the batch's surviving results first; the
                        # crash-retry logic in _run_parallel resubmits only
                        # what is genuinely unfinished.
                        broken = exc
                        continue
                    except Exception as exc:
                        # A worker exception that is not a pool crash is a
                        # real simulation failure: name the chunk, stop the
                        # survivors, chain the original traceback.
                        self._terminate(pool)
                        raise ExperimentError(
                            f"simulation of {self._chunk_label(chunk)} "
                            f"failed: {type(exc).__name__}: {exc}"
                        ) from exc
                    self._pool_artifact_hits += payload["artifact_hits"]
                    self._pool_artifact_compiles += payload["artifact_compiles"]
                    for task, cell in zip(chunk, payload["results"]):
                        results[task] = SimulationResult.from_dict(cell)
                        self.simulations_run += 1
                        done += 1
                        self._report(done, total, task, "run", chunk=tag)
                if broken is not None:
                    raise broken
        return done

    @staticmethod
    def _terminate(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool whose workers are hung (timeout path)."""
        # Snapshot first: shutdown() drops the executor's process table.
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
