"""Experiment grid runner: memoisation over the parallel engine.

Every figure of the evaluation section is a different view over the same
(application x model) grid of simulation runs.  The runner keeps the
in-process memo (one sweep serves all figures within an invocation) and
delegates execution to the
:class:`~repro.experiments.engine.ExperimentEngine`, which adds process
fan-out (``jobs``) and the persistent on-disk result store (``cache``) so
repeated invocations re-read results instead of re-simulating.

Scale is controlled explicitly or via :class:`~repro.experiments.engine.Scale`
(the ``REPRO_BENCH_*`` environment variables for the benchmark harness):
the paper simulates 30-100M instructions per application; our default is
20k instructions over a balanced subset, enough for every qualitative
shape, and the full 44-application roster is one knob away.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.results import SimulationResult
from repro.experiments.engine import (
    DEFAULT_APPS,
    DEFAULT_LENGTH,
    ENV_APPS,
    ENV_LENGTH,
    ExperimentEngine,
    ProgressFn,
    ResultStore,
    Scale,
)
from repro.pipeline.columnar import ExecutionBackend
from repro.sampling.config import SamplingConfig
from repro.workloads.suite import Application, application, benchmark_suite

__all__ = [
    "DEFAULT_APPS",
    "DEFAULT_LENGTH",
    "ENV_APPS",
    "ENV_LENGTH",
    "ExperimentRunner",
    "bench_scale",
]


def bench_scale() -> tuple[int | None, int]:
    """Deprecated: use :meth:`Scale.from_environment` instead.

    Kept as a shim for callers of the pre-engine API; returns the old
    ``(max_apps, length)`` pair.
    """
    warnings.warn(
        "bench_scale() is deprecated; use Scale.from_environment()",
        DeprecationWarning,
        stacklevel=2,
    )
    scale = Scale.from_environment()
    return scale.apps, scale.length


@dataclass
class ExperimentRunner:
    """Run and memoise (application, model) simulations.

    ``jobs > 1`` evaluates grid batches on a process pool; ``cache=True``
    adds the persistent result store under ``cache_dir`` (default:
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``); ``sampling`` switches
    every run to sampled simulation (keyed separately in the store);
    ``artifacts=False`` disables the compiled-trace-artifact fast path
    (``artifact_dir`` overrides where artifacts live, default beside the
    result store); ``backend`` selects the batch executor (scalar
    reference or its bit-identical columnar twin).  The default
    construction — serial, no disk store, full detail — behaves exactly
    like the historical in-process runner apart from the artifact fast
    path, which is bit-identical by construction.
    """

    length: int = DEFAULT_LENGTH
    max_apps: int | None = DEFAULT_APPS
    jobs: int = 1
    cache: bool = False
    cache_dir: str | Path | None = None
    timeout: float | None = None
    progress: ProgressFn | None = None
    sampling: SamplingConfig | None = None
    artifacts: bool = True
    artifact_dir: str | Path | None = None
    backend: ExecutionBackend = ExecutionBackend.SCALAR
    _memo: dict[tuple[str, str], SimulationResult] = field(
        default_factory=dict, repr=False
    )
    engine: ExperimentEngine = field(init=False, repr=False)

    def __post_init__(self) -> None:
        store = ResultStore(self.cache_dir) if self.cache else None
        self.engine = ExperimentEngine(
            self.length,
            jobs=self.jobs,
            store=store,
            timeout=self.timeout,
            progress=self.progress,
            sampling=self.sampling,
            artifacts=self.artifacts,
            artifact_root=self.artifact_dir,
            backend=self.backend,
        )

    @classmethod
    def from_scale(cls, scale: Scale, **kwargs) -> "ExperimentRunner":
        """Build a runner from one :class:`Scale` knob bundle."""
        return cls(
            length=scale.length,
            max_apps=scale.apps,
            jobs=scale.jobs,
            cache=scale.cache,
            sampling=scale.sampling,
            artifacts=scale.artifacts,
            backend=scale.backend,
            **kwargs,
        )

    @classmethod
    def from_environment(cls) -> "ExperimentRunner":
        """Build a runner scaled by the ``REPRO_BENCH_*`` variables."""
        return cls.from_scale(Scale.from_environment())

    # -- execution --------------------------------------------------------

    def applications(self) -> list[Application]:
        """The application roster at the configured scale."""
        return benchmark_suite(max_apps=self.max_apps)

    def result(self, model_name: str, app: Application | str) -> SimulationResult:
        """Result of one (model, application) run, memoised."""
        if isinstance(app, str):
            app = application(app)
        key = (model_name, app.name)
        cached = self._memo.get(key)
        if cached is None:
            cached = self.engine.run_one(model_name, app.name)
            self._memo[key] = cached
        return cached

    def results(
        self, model_name: str, apps: list[Application] | None = None
    ) -> list[SimulationResult]:
        """Results of one model over the roster (or an explicit app list)."""
        return self.grid([model_name], apps)[model_name]

    def grid(
        self, model_names: list[str], apps: list[Application] | None = None
    ) -> dict[str, list[SimulationResult]]:
        """Results for several models over the same applications.

        Cells missing from the memo are evaluated in one engine batch, so
        with ``jobs > 1`` the whole remainder of the grid fans out at once.
        """
        if apps is None:
            apps = self.applications()
        wanted = [
            (model, app.name) for model in model_names for app in apps
        ]
        missing = [task for task in wanted if task not in self._memo]
        if missing:
            self._memo.update(self.engine.run(missing))
        return {
            model: [self._memo[(model, app.name)] for app in apps]
            for model in model_names
        }

    # -- bookkeeping ------------------------------------------------------

    @property
    def runs_cached(self) -> int:
        """Number of memoised simulation runs."""
        return len(self._memo)

    @property
    def cache_hits(self) -> int:
        """Runs served from the persistent store (0 without a store)."""
        return self.engine.cache_hits

    @property
    def simulations_run(self) -> int:
        """Runs actually simulated (not served from memo or store)."""
        return self.engine.simulations_run

    @property
    def artifact_hits(self) -> int:
        """Compiled trace artifacts loaded from the artifact cache."""
        return self.engine.artifact_hits

    @property
    def artifact_compiles(self) -> int:
        """Compiled trace artifacts built from scratch this invocation."""
        return self.engine.artifact_compiles
