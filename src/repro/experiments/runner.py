"""Experiment grid runner with result caching.

Every figure of the evaluation section is a different view over the same
(application x model) grid of simulation runs, so the runner memoises
results: one sweep serves all figures.  Scale is controlled explicitly (or
via the ``REPRO_BENCH_APPS`` / ``REPRO_BENCH_LENGTH`` environment
variables for the benchmark harness): the paper simulates 30-100M
instructions per application; our default is 20k instructions over a
balanced subset, enough for every qualitative shape, and the full
44-application roster is one environment variable away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.results import SimulationResult
from repro.core.simulator import ParrotSimulator
from repro.errors import ExperimentError
from repro.models.configs import MODEL_NAMES, model_config
from repro.workloads.suite import Application, application, benchmark_suite

#: Environment variables controlling benchmark scale.
ENV_APPS = "REPRO_BENCH_APPS"
ENV_LENGTH = "REPRO_BENCH_LENGTH"

DEFAULT_APPS = 15
DEFAULT_LENGTH = 20_000


def bench_scale() -> tuple[int | None, int]:
    """Resolve (max_apps, instructions) from the environment.

    ``REPRO_BENCH_APPS=all`` (or 44) selects the full roster.
    """
    apps_raw = os.environ.get(ENV_APPS, str(DEFAULT_APPS))
    max_apps: int | None
    if apps_raw.lower() in ("all", "full", "44"):
        max_apps = None
    else:
        max_apps = int(apps_raw)
    length = int(os.environ.get(ENV_LENGTH, str(DEFAULT_LENGTH)))
    return max_apps, length


@dataclass
class ExperimentRunner:
    """Run and memoise (application, model) simulations."""

    length: int = DEFAULT_LENGTH
    max_apps: int | None = DEFAULT_APPS
    _cache: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)
    _simulators: dict[str, ParrotSimulator] = field(default_factory=dict)

    @classmethod
    def from_environment(cls) -> "ExperimentRunner":
        """Build a runner scaled by the ``REPRO_BENCH_*`` variables."""
        max_apps, length = bench_scale()
        return cls(length=length, max_apps=max_apps)

    # -- execution --------------------------------------------------------

    def applications(self) -> list[Application]:
        """The application roster at the configured scale."""
        return benchmark_suite(max_apps=self.max_apps)

    def _simulator(self, model_name: str) -> ParrotSimulator:
        if model_name not in MODEL_NAMES:
            raise ExperimentError(
                f"unknown model {model_name!r}; known: {MODEL_NAMES}"
            )
        if model_name not in self._simulators:
            self._simulators[model_name] = ParrotSimulator(model_config(model_name))
        return self._simulators[model_name]

    def result(self, model_name: str, app: Application | str) -> SimulationResult:
        """Result of one (model, application) run, memoised."""
        if isinstance(app, str):
            app = application(app)
        key = (model_name, app.name)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._simulator(model_name).run(app, self.length)
            self._cache[key] = cached
        return cached

    def results(
        self, model_name: str, apps: list[Application] | None = None
    ) -> list[SimulationResult]:
        """Results of one model over the roster (or an explicit app list)."""
        if apps is None:
            apps = self.applications()
        return [self.result(model_name, app) for app in apps]

    def grid(
        self, model_names: list[str], apps: list[Application] | None = None
    ) -> dict[str, list[SimulationResult]]:
        """Results for several models over the same applications."""
        if apps is None:
            apps = self.applications()
        return {name: self.results(name, apps) for name in model_names}

    @property
    def runs_cached(self) -> int:
        """Number of memoised simulation runs."""
        return len(self._cache)
