"""Aggregation helpers: per-suite and overall geometric means.

The paper's graphs "display the geometrical mean for each group of
applications as well as the overall mean for the entire benchmark" (§4).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence

from repro.core.results import SimulationResult
from repro.workloads.profiles import ALL_SUITES

#: Label used for the whole-benchmark mean.
OVERALL = "Overall"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ignores non-positives)."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean (used for additive quantities like reductions)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def by_suite(
    results: Sequence[SimulationResult],
    metric: Callable[[SimulationResult], float],
    *,
    mean: Callable[[Iterable[float]], float] = geomean,
) -> dict[str, float]:
    """Aggregate ``metric`` per suite plus the overall mean.

    Suites appear in the paper's order; suites with no results are omitted.
    """
    out: dict[str, float] = {}
    for suite in ALL_SUITES:
        suite_values = [metric(r) for r in results if r.suite == suite]
        if suite_values:
            out[suite] = mean(suite_values)
    out[OVERALL] = mean([metric(r) for r in results])
    return out


def paired_ratio_by_suite(
    test: Sequence[SimulationResult],
    base: Sequence[SimulationResult],
    metric: Callable[[SimulationResult], float],
) -> dict[str, float]:
    """Geomean of per-application ``metric(test)/metric(base)`` per suite.

    ``test`` and ``base`` must cover the same applications (matched by
    name); the result maps suite -> geomean ratio - 1 (i.e. +0.17 = +17%).
    """
    base_by_name = {r.app_name: r for r in base}
    ratios: dict[str, list[float]] = {}
    all_ratios: list[float] = []
    for r in test:
        b = base_by_name[r.app_name]
        denominator = metric(b)
        if denominator == 0:
            continue
        ratio = metric(r) / denominator
        ratios.setdefault(r.suite, []).append(ratio)
        all_ratios.append(ratio)
    out = {}
    for suite in ALL_SUITES:
        if suite in ratios:
            out[suite] = geomean(ratios[suite]) - 1.0
    out[OVERALL] = geomean(all_ratios) - 1.0
    return out
