"""Regeneration of every table and figure of the paper's evaluation (§4).

Each ``fig4_*`` function runs (via the memoising
:class:`~repro.experiments.runner.ExperimentRunner`) exactly the models the
corresponding paper figure compares, and returns a :class:`FigureData`
whose rows/series mirror the paper's presentation: per-suite geometric
means, the overall mean, and (where the paper shows them) the three killer
applications flash, wupwise and perlbmk.

``EXPERIMENTS.md`` records the paper-reported value next to each measured
value; the benchmark suite prints these tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import SimulationResult
from repro.experiments.aggregate import (
    OVERALL,
    arithmetic_mean,
    by_suite,
    paired_ratio_by_suite,
)
from repro.experiments.runner import ExperimentRunner
from repro.models.configs import MODEL_NAMES, model_config
from repro.power.energy import COMPONENTS
from repro.workloads.suite import KILLER_APPS


@dataclass(slots=True)
class FigureData:
    """One regenerated table/figure: named series over named groups."""

    figure_id: str
    title: str
    #: series label -> (group label -> value)
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    #: how to render values: "percent", "ratio", "rate" or "value"
    unit: str = "percent"
    notes: str = ""

    def format(self) -> str:
        """Render as an aligned text table (the benchmark output)."""
        groups: list[str] = []
        for values in self.series.values():
            for group in values:
                if group not in groups:
                    groups.append(group)
        width = max((len(g) for g in groups), default=8) + 2
        lines = [f"{self.figure_id}: {self.title}"]
        header = " " * width + "".join(f"{label:>12}" for label in self.series)
        lines.append(header)
        for group in groups:
            row = f"{group:<{width}}"
            for values in self.series.values():
                value = values.get(group)
                if value is None:
                    row += f"{'-':>12}"
                elif self.unit == "percent":
                    row += f"{value:>+11.1%} "
                elif self.unit == "rate":
                    row += f"{value:>11.2f} "
                else:
                    row += f"{value:>11.3f} "
            lines.append(row)
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def _killer_rows(
    test: list[SimulationResult],
    base: list[SimulationResult],
    metric,
) -> dict[str, float]:
    base_by_name = {r.app_name: r for r in base}
    rows = {}
    for r in test:
        if r.app_name in KILLER_APPS:
            b = base_by_name[r.app_name]
            rows[r.app_name] = metric(r) / metric(b) - 1.0
    return rows


def _improvement_figure(
    runner: ExperimentRunner,
    figure_id: str,
    title: str,
    metric,
    *,
    invert: bool = False,
    include_killers: bool = True,
) -> FigureData:
    """Shared shape of Figures 4.1-4.3: extensions vs same-width baselines."""
    apps = runner.applications()
    baselines = {"TN": "N", "TON": "N", "TW": "W", "TOW": "W"}
    fig = FigureData(figure_id=figure_id, title=title)
    for model, base in baselines.items():
        test_results = runner.results(model, apps)
        base_results = runner.results(base, apps)
        rows = paired_ratio_by_suite(test_results, base_results, metric)
        if include_killers:
            rows.update(_killer_rows(test_results, base_results, metric))
        fig.series[f"{model}/{base}"] = rows
    return fig


def fig4_1(runner: ExperimentRunner) -> FigureData:
    """Figure 4.1: IPC improvement over the baseline of the same width."""
    fig = _improvement_figure(
        runner, "Figure 4.1", "IPC improvement over same-width baseline",
        lambda r: r.ipc,
    )
    fig.notes = "paper: TN~+2%, TW~+7%, TON~+17%, TOW~+25% (overall geomeans)"
    return fig


def fig4_2(runner: ExperimentRunner) -> FigureData:
    """Figure 4.2: increased energy consumption over the same-width baseline."""
    fig = _improvement_figure(
        runner, "Figure 4.2", "Energy increase over same-width baseline",
        lambda r: r.total_energy, include_killers=False,
    )
    fig.notes = (
        "paper: TN~+1%, TON~+3% over N; TOW ~-18% over W; TW +12% "
        "(baseline ambiguity documented in EXPERIMENTS.md)"
    )
    return fig


def fig4_3(runner: ExperimentRunner) -> FigureData:
    """Figure 4.3: improved power-awareness (CMPW) over same-width baseline."""
    fig = _improvement_figure(
        runner, "Figure 4.3", "CMPW improvement over same-width baseline",
        lambda r: r.point.cmpw, include_killers=False,
    )
    fig.notes = "paper: TON +32% over N, TOW +92% over W"
    return fig


def _extremes_figure(
    runner: ExperimentRunner, figure_id: str, title: str, metric
) -> FigureData:
    """Shared shape of Figures 4.4-4.6: {W, TON, TOW} relative to N."""
    apps = runner.applications()
    base_results = runner.results("N", apps)
    fig = FigureData(figure_id=figure_id, title=title)
    for model in ("W", "TON", "TOW"):
        fig.series[f"{model}/N"] = paired_ratio_by_suite(
            runner.results(model, apps), base_results, metric
        )
    return fig


def fig4_4(runner: ExperimentRunner) -> FigureData:
    """Figure 4.4: IPC of the extreme alternatives relative to N."""
    fig = _extremes_figure(
        runner, "Figure 4.4", "IPC relative to N", lambda r: r.ipc
    )
    fig.notes = "paper: TON slightly outperforms W; TOW ~+45% over N"
    return fig


def fig4_5(runner: ExperimentRunner) -> FigureData:
    """Figure 4.5: total energy of the extreme alternatives relative to N."""
    fig = _extremes_figure(
        runner, "Figure 4.5", "Energy relative to N", lambda r: r.total_energy
    )
    fig.notes = "paper: W ~+70% over N; TON ~39% below W (~+3% over N)"
    return fig


def fig4_6(runner: ExperimentRunner) -> FigureData:
    """Figure 4.6: power awareness (CMPW) of the extremes relative to N."""
    fig = _extremes_figure(
        runner, "Figure 4.6", "CMPW relative to N", lambda r: r.point.cmpw
    )
    fig.notes = "paper: TON +67% over W; TOW +51% over N"
    return fig


def fig4_7(runner: ExperimentRunner) -> FigureData:
    """Figure 4.7: front-end predictability — mispredictions per 1K instrs.

    Three series: the baseline N's branch mispredictions (4K-entry
    predictor), the PARROT TON machine's hot-trace mispredictions, and
    TON's cold-code branch mispredictions (2K+2K predictors), each per
    1000 instructions of the corresponding stream portion.
    """
    apps = runner.applications()
    n_results = runner.results("N", apps)
    ton_results = runner.results("TON", apps)
    fig = FigureData(
        figure_id="Figure 4.7",
        title="Mispredictions per 1K instructions",
        unit="rate",
    )
    fig.series["N branch"] = by_suite(
        n_results, lambda r: r.cold_mispredicts_per_kinstr, mean=arithmetic_mean
    )

    def trace_rate(r: SimulationResult) -> float:
        return 1000.0 * r.trace_mispredictions / max(r.instructions, 1)

    def cold_rate(r: SimulationResult) -> float:
        cold_instrs = r.instructions - r.hot_instructions
        return 1000.0 * r.cold_branch_mispredicts / max(cold_instrs, 1)

    fig.series["TON trace (hot)"] = by_suite(
        ton_results, trace_rate, mean=arithmetic_mean
    )
    fig.series["TON branch (cold)"] = by_suite(
        ton_results, cold_rate, mean=arithmetic_mean
    )
    fig.notes = (
        "paper shape: hot-trace rate < N branch rate < TON cold branch rate"
    )
    return fig


def fig4_8(runner: ExperimentRunner) -> FigureData:
    """Figure 4.8: coverage — fraction of instructions committed hot (TON)."""
    ton_results = runner.results("TON")
    fig = FigureData(
        figure_id="Figure 4.8", title="Coverage (TON)", unit="rate"
    )
    fig.series["coverage"] = by_suite(
        ton_results, lambda r: r.coverage, mean=arithmetic_mean
    )
    fig.notes = "paper: ~90% for SpecFP, 60-70% for SpecInt"
    return fig


def fig4_9(runner: ExperimentRunner) -> FigureData:
    """Figure 4.9: optimizer impact on TOW — uop and dependency reduction."""
    tow_results = runner.results("TOW")
    fig = FigureData(
        figure_id="Figure 4.9",
        title="Optimizer impact (TOW): executed-uop and dependency reduction",
        unit="rate",
    )
    fig.series["uop reduction"] = by_suite(
        tow_results, lambda r: r.uop_reduction, mean=arithmetic_mean
    )
    fig.series["dep reduction"] = by_suite(
        tow_results, lambda r: r.dependency_reduction, mean=arithmetic_mean
    )
    fig.notes = (
        "paper: ~19% average uop reduction, ~8% dependency reduction; "
        "dependency reduction relatively higher on SpecInt"
    )
    return fig


def fig4_10(runner: ExperimentRunner) -> FigureData:
    """Figure 4.10: utilization of optimizer work — reuse of optimized traces."""
    tow_results = runner.results("TOW")
    fig = FigureData(
        figure_id="Figure 4.10",
        title="Mean dynamic executions per optimized trace (TOW)",
        unit="rate",
    )
    fig.series["executions/trace"] = by_suite(
        tow_results,
        lambda r: r.trace_stats.mean_optimized_reuse,
        mean=arithmetic_mean,
    )
    fig.notes = "paper: highest reuse for SpecFP (trace-cache locality)"
    return fig


#: The three applications Figure 4.11 breaks down.
BREAKDOWN_APPS = ("flash", "swim", "gcc")
#: The three models Figure 4.11 compares.
BREAKDOWN_MODELS = ("N", "TON", "TOS")


def fig4_11(runner: ExperimentRunner) -> FigureData:
    """Figure 4.11: energy breakdown by component for {N, TON, TOS}.

    Shown for flash, swim and gcc, as fractional shares of total energy.
    """
    fig = FigureData(
        figure_id="Figure 4.11",
        title="Energy breakdown (fraction of total)",
        unit="rate",
    )
    for app_name in BREAKDOWN_APPS:
        for model in BREAKDOWN_MODELS:
            result = runner.result(model, app_name)
            assert result.energy is not None
            shares = {
                component: result.energy.component_share(component)
                for component in COMPONENTS
                if result.energy.by_component.get(component, 0.0) > 0
            }
            fig.series[f"{app_name}/{model}"] = shares
    fig.notes = (
        "paper shape: front-end share diminishes N -> TON -> TOS; trace "
        "manipulation ~10% of total"
    )
    return fig


def table3_1() -> str:
    """Table 3.1: the two-dimensional configuration space."""
    lines = [
        "Table 3.1: configuration space (width x trace-cache extension)",
        f"{'':10}{'base':>8}{'+TC':>8}{'+TC+opt':>10}",
        f"{'narrow':10}{'N':>8}{'TN':>8}{'TON':>10}",
        f"{'wide':10}{'W':>8}{'TW':>8}{'TOW':>10}",
        f"{'split':10}{'-':>8}{'-':>8}{'TOS':>10}",
    ]
    return "\n".join(lines)


def table3_2() -> str:
    """Table 3.2: microarchitectural settings of the seven models."""
    header = (
        f"{'model':6}{'rename':>7}{'issue':>6}{'rob':>5}{'win':>5}"
        f"{'depth':>6}{'bpred':>7}{'tpred':>7}{'tc_uops':>8}{'opt':>5}"
        f"{'split':>6}{'area':>6}"
    )
    lines = ["Table 3.2: microarchitectural settings", header]
    for name in MODEL_NAMES:
        config = model_config(name)
        core = config.core
        lines.append(
            f"{name:6}{core.rename_width:>7}{core.issue_width:>6}"
            f"{core.rob_size:>5}{core.window_size:>5}{core.front_depth:>6}"
            f"{config.bpred_entries:>7}"
            f"{config.tpred_entries if config.has_trace_cache else 0:>7}"
            f"{config.tcache_uops if config.has_trace_cache else 0:>8}"
            f"{'yes' if config.optimize_traces else 'no':>5}"
            f"{'yes' if config.is_split else 'no':>6}"
            f"{core.area + config.extra_area:>6.2f}"
        )
    return "\n".join(lines)


def headline(runner: ExperimentRunner) -> FigureData:
    """The abstract's headline claims, regenerated.

    * TON delivers better performance than N at comparable energy, while
      the conventional path to similar performance (W) costs ~70% more
      energy;
    * TOW delivers ~+45% IPC with a >50% CMPW improvement over N.
    """
    apps = runner.applications()
    n = runner.results("N", apps)
    fig = FigureData(figure_id="Headline", title="Abstract claims vs N")
    for model in ("W", "TON", "TOW"):
        rows = {}
        results = runner.results(model, apps)
        rows["IPC"] = paired_ratio_by_suite(results, n, lambda r: r.ipc)[OVERALL]
        rows["Energy"] = paired_ratio_by_suite(
            results, n, lambda r: r.total_energy
        )[OVERALL]
        rows["CMPW"] = paired_ratio_by_suite(
            results, n, lambda r: r.point.cmpw
        )[OVERALL]
        fig.series[model] = rows
    fig.notes = (
        "paper: TON up to ~+16% IPC at ~+3% energy; W ~+70% energy; "
        "TOW ~+45% IPC, >+50% CMPW"
    )
    return fig


#: All per-figure generators keyed by their experiment id (DESIGN.md index).
FIGURE_GENERATORS = {
    "fig4_1": fig4_1,
    "fig4_2": fig4_2,
    "fig4_3": fig4_3,
    "fig4_4": fig4_4,
    "fig4_5": fig4_5,
    "fig4_6": fig4_6,
    "fig4_7": fig4_7,
    "fig4_8": fig4_8,
    "fig4_9": fig4_9,
    "fig4_10": fig4_10,
    "fig4_11": fig4_11,
    "headline": headline,
}
