"""The serve front end's core: jobs, warm lookups, figure rendering.

:class:`ReproService` is the piece of ``repro serve`` that knows the
simulator; the HTTP layer (:mod:`repro.serve.http`) only translates
requests into the methods here.  The design splits traffic into two
classes:

* **warm reads** (:meth:`ReproService.lookup`, a warm
  :meth:`ReproService.figure`) are answered directly from the shared
  :class:`~repro.experiments.engine.ResultStore` — with its in-process
  LRU over deserialized results, a repeated query never touches disk or
  JSON decode.  Figures are rendered through a ``jobs=1`` engine, so a
  fully warm request spawns **no worker process** and performs **zero
  simulations**: the millions-of-users story is many clients hitting one
  warm store that N shard hosts filled.
* **cold work** is submitted as a *job* (:meth:`ReproService.submit`):
  it runs on a background thread (the engine inside may fan out its own
  process pool), publishes progress events the HTTP layer streams as
  NDJSON, and lands its results in the same store — warming it for every
  later read.

Everything here is stdlib: asyncio for orchestration, one
``ThreadPoolExecutor`` lane for blocking engine calls.  Event mutation
happens only on the event loop thread (worker threads publish through
``loop.call_soon_threadsafe``), so streamers never race publishers.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, AsyncIterator, Callable

from repro.errors import ExperimentError
from repro.experiments.engine import (
    ResultStore,
    default_jobs,
    resolve_run_options,
    run_key,
)
from repro.experiments.figures import FIGURE_GENERATORS
from repro.experiments.runner import ExperimentRunner
from repro.models.configs import MODEL_NAMES, model_config
from repro.workloads.suite import ALL_APPS, application

#: Job kinds the service accepts.
JOB_KINDS = ("sweep", "figure")


class ServiceError(Exception):
    """A client-attributable service failure (maps to an HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Job:
    """One submitted unit of background work and its event log.

    ``events`` grows append-only on the event loop thread; streamers
    iterate it by index and wait on ``_next`` (rotated per publish) for
    more, so any number of subscribers replay and follow one job.
    """

    id: str
    kind: str
    params: dict
    state: str = "queued"
    created: float = field(default_factory=time.time)
    events: list[dict] = field(default_factory=list)
    result: dict | None = None
    error: str | None = None
    _next: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def publish(self, event: dict) -> None:
        """Append an event and wake every streamer (loop thread only)."""
        self.events.append(event)
        waiter, self._next = self._next, asyncio.Event()
        waiter.set()

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def summary(self) -> dict:
        """The job as the status endpoints report it."""
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "params": self.params,
            "events": len(self.events),
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _as_model_list(raw: Any) -> list[str]:
    if raw is None:
        return list(MODEL_NAMES)
    if isinstance(raw, str):
        raw = [name.strip() for name in raw.split(",") if name.strip()]
    models = list(raw)
    unknown = [m for m in models if m not in MODEL_NAMES]
    if unknown:
        raise ServiceError(
            400, f"unknown model(s) {', '.join(map(str, unknown))}; "
                 f"known: {', '.join(MODEL_NAMES)}"
        )
    if not models:
        raise ServiceError(400, "empty model list")
    return models


def _as_apps(raw: Any) -> int | None | list[str]:
    """An app spec: a count, ``"all"``, or an explicit name list."""
    if raw is None:
        return None
    if isinstance(raw, list):
        for name in raw:
            if name not in ALL_APPS:
                raise ServiceError(400, f"unknown application {name!r}")
        if not raw:
            raise ServiceError(400, "empty application list")
        return list(raw)
    text = str(raw).strip().lower()
    if text in ("all", "full", "44"):
        return None
    try:
        count = int(text)
    except ValueError:
        raise ServiceError(
            400, f"bad apps spec {raw!r} (count, 'all', or a name list)"
        ) from None
    if count < 1:
        raise ServiceError(400, f"apps count must be >= 1, got {count}")
    return count


def _as_length(raw: Any, default: int = 20_000) -> int:
    if raw is None:
        return default
    try:
        length = int(raw)
    except (TypeError, ValueError):
        raise ServiceError(400, f"bad length {raw!r}") from None
    if length < 1:
        raise ServiceError(400, f"length must be >= 1, got {length}")
    return length


class ReproService:
    """Job orchestration and warm-store reads behind ``repro serve``.

    One service owns one :class:`ResultStore` (LRU-backed) that every
    request path shares: shard hosts fill it (directly or via
    ``repro shard merge``), jobs extend it, reads drain it.
    ``worker_threads`` bounds concurrently *running* jobs (default 1 —
    a job may already saturate the machine with its own process pool);
    queued jobs wait their turn inside the executor.
    """

    def __init__(
        self,
        *,
        store_root: str | Path | None = None,
        lru: int = 256,
        jobs: int | None = None,
        worker_threads: int = 1,
    ):
        self.store = ResultStore(store_root, lru=lru)
        self.jobs_width = jobs if jobs is not None else default_jobs()
        self.started = time.time()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, worker_threads),
            thread_name_prefix="repro-job",
        )
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._ids = itertools.count(1)

    def close(self) -> None:
        """Stop accepting work and release the worker threads."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- warm reads -------------------------------------------------------

    def lookup(self, model: str, app: str, length: Any,
               sampling: str | None) -> dict:
        """A single cached result, or a 404 :class:`ServiceError`.

        Never simulates: the GET path answers from the warm store (LRU
        first, disk second) or tells the client how to warm it.
        """
        if model not in MODEL_NAMES:
            raise ServiceError(
                400, f"unknown model {model!r}; known: "
                     f"{', '.join(MODEL_NAMES)}"
            )
        if app not in ALL_APPS:
            raise ServiceError(400, f"unknown application {app!r}")
        options = resolve_run_options(sampling or "off", None)
        run_length = _as_length(length)
        key = run_key(model_config(model), app, run_length, options)
        lru0 = self.store.lru_hits
        result = self.store.load(key)
        if result is None:
            raise ServiceError(
                404, f"no stored result for {model}/{app} at length "
                     f"{run_length}; POST /api/jobs to compute it"
            )
        return {
            "model": model,
            "app": app,
            "length": run_length,
            "sampling": ("off" if options.sampling is None
                         else options.sampling.fingerprint()),
            "key": key,
            "lru": self.store.lru_hits > lru0,
            "metrics": {
                "ipc": round(result.ipc, 6),
                "cycles": result.cycles,
                "energy": round(result.total_energy, 3),
                "power": round(result.point.power, 6),
                "cmpw": round(result.point.cmpw, 6),
            },
            "result": result.to_dict(),
        }

    def status(self) -> dict:
        """Service + store health for ``GET /api/status``."""
        info = self.store.info()
        return {
            "uptime": round(time.time() - self.started, 3),
            "store": {
                "path": str(info.path),
                "entries": info.entries,
                "bytes": info.total_bytes,
                "schema": info.schema_version,
            },
            "cache": {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "lru_hits": self.store.lru_hits,
            },
            "jobs": [job.summary() for job in self._jobs.values()],
        }

    # -- figures ----------------------------------------------------------

    def _runner(self, params: dict) -> ExperimentRunner:
        """A per-request runner sharing the service's LRU-backed store.

        ``jobs=1`` by construction: request-path engines never spawn a
        worker pool, so a warm request costs store reads only and a cold
        figure computes inline on the job thread.
        """
        options = resolve_run_options(params.get("sampling") or "off",
                                      params.get("backend"))
        apps = _as_apps(params.get("apps"))
        runner = ExperimentRunner(
            length=_as_length(params.get("length")),
            max_apps=apps if not isinstance(apps, list) else None,
            jobs=1,
            cache=True,
            cache_dir=self.store.root,
            sampling=options.sampling,
            backend=options.backend,
        )
        # Swap in the shared store so the request benefits from (and
        # feeds) the in-process LRU instead of a cold per-request view.
        runner.engine.store = self.store
        return runner

    def _render_figure(self, name: str, params: dict) -> dict:
        if name not in FIGURE_GENERATORS:
            raise ServiceError(
                404, f"unknown figure {name!r}; known: "
                     f"{', '.join(FIGURE_GENERATORS)}"
            )
        runner = self._runner(params)
        hits0 = self.store.hits
        lru0 = self.store.lru_hits
        figure = FIGURE_GENERATORS[name](runner)
        return {
            "figure": name,
            "text": figure.format(),
            "simulated": runner.engine.simulations_run,
            "from_store": self.store.hits - hits0,
            "from_lru": self.store.lru_hits - lru0,
        }

    async def figure(self, name: str, params: dict) -> dict:
        """Render one figure; warm grids never simulate or fork."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._render_figure, name, params
        )

    # -- jobs -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(404, f"no such job {job_id!r}") from None

    async def submit(self, spec: Any) -> Job:
        """Validate and enqueue one background job."""
        if not isinstance(spec, dict):
            raise ServiceError(400, "job spec must be a JSON object")
        kind = spec.get("kind")
        if kind not in JOB_KINDS:
            raise ServiceError(
                400, f"job kind must be one of {', '.join(JOB_KINDS)}, "
                     f"got {kind!r}"
            )
        params = {k: v for k, v in spec.items() if k != "kind"}
        # Validate the cheap parts up front so a bad request fails at
        # submit time, not minutes later inside the job.
        _as_length(params.get("length"))
        _as_apps(params.get("apps"))
        if kind == "sweep":
            _as_model_list(params.get("models"))
        elif params.get("figure") not in FIGURE_GENERATORS:
            raise ServiceError(
                400, f"figure job needs a known 'figure' name; known: "
                     f"{', '.join(FIGURE_GENERATORS)}"
            )
        job = Job(id=f"job-{next(self._ids)}", kind=kind, params=params)
        self._jobs[job.id] = job
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.publish({"event": "state", "state": "running"})

        def progress(done: int, total: int, label: str, source: str) -> None:
            loop.call_soon_threadsafe(job.publish, {
                "event": "progress", "done": done, "total": total,
                "label": label, "source": source,
            })

        def finish(task: "asyncio.Future") -> None:
            if task.cancelled():
                job.state = "failed"
                job.error = "cancelled"
            elif task.exception() is not None:
                exc = task.exception()
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            else:
                job.state = "done"
                job.result = task.result()
            event = {"event": job.state}
            if job.result is not None:
                event["result"] = job.result
            if job.error is not None:
                event["error"] = job.error
            job.publish(event)

        task = loop.run_in_executor(
            self._executor, self._execute, job, progress
        )
        asyncio.ensure_future(task).add_done_callback(finish)
        return job

    def _execute(self, job: Job,
                 progress: Callable[[int, int, str, str], None]) -> dict:
        """Run one job to completion on the worker thread."""
        if job.kind == "figure":
            return self._render_figure(job.params["figure"], job.params)
        return self._execute_sweep(job, progress)

    def _execute_sweep(self, job: Job, progress) -> dict:
        params = job.params
        models = _as_model_list(params.get("models"))
        apps_spec = _as_apps(params.get("apps"))
        options = resolve_run_options(params.get("sampling") or "off",
                                      params.get("backend"))
        runner = ExperimentRunner(
            length=_as_length(params.get("length")),
            max_apps=apps_spec if not isinstance(apps_spec, list) else None,
            jobs=int(params.get("jobs") or self.jobs_width),
            cache=True,
            cache_dir=self.store.root,
            progress=progress,
            sampling=options.sampling,
            backend=options.backend,
        )
        runner.engine.store = self.store
        apps = (
            [application(name) for name in apps_spec]
            if isinstance(apps_spec, list) else runner.applications()
        )
        hits0 = self.store.hits
        try:
            grid = runner.grid(models, apps)
        except ExperimentError as exc:
            raise ServiceError(500, f"sweep failed: {exc}") from exc
        rows = [
            {
                "model": model,
                "app": app.name,
                "suite": app.suite,
                "ipc": round(result.ipc, 6),
                "energy": round(result.total_energy, 3),
                "power": round(result.point.power, 6),
                "cmpw": round(result.point.cmpw, 6),
            }
            for model in models
            for app, result in zip(apps, grid[model])
        ]
        return {
            "cells": len(rows),
            "simulated": runner.engine.simulations_run,
            "from_store": self.store.hits - hits0,
            "rows": rows,
        }

    # -- event streaming --------------------------------------------------

    async def stream(self, job: Job) -> AsyncIterator[dict]:
        """Replay a job's events, then follow until it finishes.

        Safe for any number of concurrent subscribers: events are
        appended only on the loop thread, and each subscriber keeps its
        own cursor.
        """
        index = 0
        while True:
            while index < len(job.events):
                yield job.events[index]
                index += 1
            if job.finished:
                return
            waiter = job._next
            await waiter.wait()
