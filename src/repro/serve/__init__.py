"""``repro serve``: an asyncio HTTP front end over the warm result store.

The scale-out story's last hop: N shard hosts fill content-keyed result
stores (:mod:`repro.experiments.shard`), stores merge into one warm root,
and this package serves it — cached results and figures instantly (LRU +
store, zero simulations, no worker processes on the warm path), cold
sweeps/figures as background jobs with NDJSON progress streaming.

Stdlib only: :mod:`asyncio` sockets, no web framework.  See
:mod:`repro.serve.http` for the route table and
:mod:`repro.serve.service` for the orchestration core.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any

from repro.serve.http import handle_client, start_server
from repro.serve.service import Job, ReproService, ServiceError

__all__ = [
    "Job",
    "ReproService",
    "ServiceError",
    "handle_client",
    "main",
    "start_server",
]


async def _serve_forever(service: ReproService, host: str,
                         port: int) -> None:
    server = await start_server(service, host, port)
    bound = server.sockets[0].getsockname()
    print(f"repro serve listening on http://{bound[0]}:{bound[1]} "
          f"(store {service.store.root})", file=sys.stderr, flush=True)
    async with server:
        await server.serve_forever()


def main(args: Any) -> int:
    """CLI entry point for ``repro serve`` (parsed argparse namespace)."""
    service = ReproService(
        store_root=args.store,
        lru=args.lru,
        jobs=args.jobs,
    )
    try:
        asyncio.run(_serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0
