"""A minimal asyncio HTTP/1.1 layer for ``repro serve`` — stdlib only.

The service deliberately speaks a small, honest subset of HTTP: one
request per connection (every response carries ``Connection: close``),
JSON bodies both ways, and NDJSON (one JSON object per line) for the
progress stream — which is exactly what ``curl`` and any HTTP client
library consume without ceremony.  No routing framework, no dependency.

Routes::

    GET  /healthz                     liveness probe
    GET  /api/status                  store/cache/job overview
    GET  /api/result?model=&app=&length=&sampling=
                                      one warm result (404 when cold)
    GET  /api/figure/NAME?apps=&length=&sampling=&backend=
                                      render a figure (warm grid: zero
                                      simulations, no worker processes)
    GET  /api/jobs                    submitted jobs
    POST /api/jobs                    submit {"kind": "sweep"|"figure", ...}
    GET  /api/jobs/ID                 one job's status
    GET  /api/jobs/ID/events          NDJSON progress stream (follows
                                      until the job finishes)
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.service import Job, ReproService, ServiceError

#: Request caps: header block and body sizes a well-behaved client needs.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _head(status: int, content_type: str,
          length: int | None = None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _json_payload(status: int, payload: Any) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _head(status, "application/json", len(body)) + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, bytes]:
    """Parse one request: (method, path, query, body).

    Raises :class:`ServiceError` on anything malformed or oversized.
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ServiceError(400, "request line too long") from None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ServiceError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ServiceError(400, "header block too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            size = int(headers["content-length"])
        except ValueError:
            raise ServiceError(400, "bad Content-Length") from None
        if size > MAX_BODY_BYTES:
            raise ServiceError(400, "request body too large")
        body = await reader.readexactly(size)
    url = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(url.query, keep_blank_values=True).items()
    }
    return method.upper(), unquote(url.path), query, body


def _json_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ServiceError(400, "request body is not valid JSON") from None


async def _stream_events(service: ReproService, job: Job,
                         writer: asyncio.StreamWriter) -> None:
    """NDJSON: replay the job's events, follow until it finishes."""
    writer.write(_head(200, "application/x-ndjson"))
    await writer.drain()
    async for event in service.stream(job):
        writer.write((json.dumps(event, sort_keys=True) + "\n")
                     .encode("utf-8"))
        await writer.drain()


async def _dispatch(service: ReproService, method: str, path: str,
                    query: dict, body: bytes,
                    writer: asyncio.StreamWriter) -> bytes | None:
    """Route one request; returns a full response, or ``None`` when the
    handler streamed the response itself."""
    segments = [part for part in path.split("/") if part]
    if path == "/healthz":
        if method != "GET":
            raise ServiceError(405, "healthz is GET-only")
        return _json_payload(200, {"status": "ok"})
    if segments[:1] != ["api"]:
        raise ServiceError(404, f"no route for {path}")
    rest = segments[1:]
    if rest == ["status"] and method == "GET":
        return _json_payload(200, service.status())
    if rest == ["result"] and method == "GET":
        missing = [k for k in ("model", "app") if k not in query]
        if missing:
            raise ServiceError(
                400, f"missing query parameter(s): {', '.join(missing)}"
            )
        payload = service.lookup(
            query["model"], query["app"], query.get("length"),
            query.get("sampling"),
        )
        return _json_payload(200, payload)
    if rest[:1] == ["figure"] and len(rest) == 2 and method == "GET":
        return _json_payload(200, await service.figure(rest[1], query))
    if rest == ["jobs"]:
        if method == "POST":
            job = await service.submit(_json_body(body))
            return _json_payload(202, job.summary())
        if method == "GET":
            return _json_payload(200, service.status()["jobs"])
        raise ServiceError(405, "jobs is GET/POST-only")
    if rest[:1] == ["jobs"] and len(rest) == 2 and method == "GET":
        return _json_payload(200, service.job(rest[1]).summary())
    if rest[:1] == ["jobs"] and len(rest) == 3 and rest[2] == "events" \
            and method == "GET":
        await _stream_events(service, service.job(rest[1]), writer)
        return None
    raise ServiceError(404, f"no route for {method} {path}")


async def handle_client(service: ReproService,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
    """Serve one connection: one request, one response, close."""
    try:
        try:
            method, path, query, body = await _read_request(reader)
            response = await _dispatch(service, method, path, query, body,
                                       writer)
        except ServiceError as exc:
            response = _json_payload(exc.status, {"error": exc.message})
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except Exception as exc:  # defensive: never kill the server loop
            response = _json_payload(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        if response is not None:
            writer.write(response)
            await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_server(service: ReproService, host: str = "127.0.0.1",
                       port: int = 8035) -> asyncio.base_events.Server:
    """Bind and return the listening asyncio server (port 0 = ephemeral)."""

    async def _client(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await handle_client(service, reader, writer)

    return await asyncio.start_server(_client, host, port)
