"""The seven machine models of Tables 3.1 and 3.2.

The two-dimensional configuration space (Table 3.1) crosses machine width
{narrow = 4-wide, wide = 8-wide} with trace-cache extension
{none, selective trace cache (T), trace cache + dynamic optimization (TO)}:

=========  ==============  =====================  =========================
width      base            + trace cache          + trace cache + optimizer
=========  ==============  =====================  =========================
narrow     ``N``           ``TN``                 ``TON``
wide       ``W``           ``TW``                 ``TOW``
split      --              --                     ``TOS`` (cold 4 / hot 8)
=========  ==============  =====================  =========================

Microarchitectural settings (Table 3.2): the reference N is a standard
4-wide super-scalar, super-pipelined OOO machine with a 4K-entry branch
predictor; W doubles every stage; trace-cache models halve the branch
predictor to 2K entries and add a 2K-entry trace predictor plus a 16K-uop
decoded trace cache with hot/blazing filtering; TOS couples a narrow cold
pipeline with a wide hot pipeline over a shared architectural state.
"""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.frontend.fetch import FetchParams
from repro.optimizer.pipeline import OptimizerConfig
from repro.pipeline.resources import (
    ExecProfile,
    narrow_core_params,
    narrow_fu_counts,
    wide_core_params,
)
from repro.power.tags import EnergyCalibration

#: Names of the seven models, in the paper's presentation order.
MODEL_NAMES = ("N", "W", "TN", "TW", "TON", "TOW", "TOS")

#: Leakage-relevant area of the trace machinery (trace cache, predictors,
#: filters, constructor, optimizer) relative to the standard core.
_TRACE_UNIT_AREA = 0.15

_NARROW_FETCH = FetchParams(width_instrs=4, width_bytes=16, trace_uops=8)
# The wide front end decodes 8 instructions per cycle, but taken-branch
# redirects and fetch-block alignment keep its sustained supply below the
# theoretical peak (the classic limiter the trace cache removes).
_WIDE_FETCH = FetchParams(width_instrs=6, width_bytes=24, trace_uops=16)
#: TOS: narrow cold fetch feeding a wide hot pipeline.
_SPLIT_FETCH = FetchParams(width_instrs=4, width_bytes=16, trace_uops=16)


def model_n(calibration: EnergyCalibration | None = None) -> MachineConfig:
    """N: the standard 4-wide OOO reference machine."""
    return MachineConfig(
        name="N",
        description="4-wide super-scalar, super-pipelined OOO reference",
        core=narrow_core_params("N-core"),
        fetch=_NARROW_FETCH,
        has_trace_cache=False,
        bpred_entries=4096,
        calibration=calibration or EnergyCalibration(),
    )


def model_w(calibration: EnergyCalibration | None = None) -> MachineConfig:
    """W: the theoretical 8-wide extension (all stages widened)."""
    return MachineConfig(
        name="W",
        description="8-wide extension of N: all stages doubled",
        core=wide_core_params("W-core"),
        fetch=_WIDE_FETCH,
        has_trace_cache=False,
        bpred_entries=4096,
        calibration=calibration or EnergyCalibration(),
    )


def _trace_model(
    name: str,
    description: str,
    *,
    wide: bool,
    optimize: bool,
    calibration: EnergyCalibration | None,
    optimizer: OptimizerConfig | None = None,
) -> MachineConfig:
    core = wide_core_params(f"{name}-core") if wide else narrow_core_params(f"{name}-core")
    return MachineConfig(
        name=name,
        description=description,
        core=core,
        fetch=_WIDE_FETCH if wide else _NARROW_FETCH,
        has_trace_cache=True,
        optimize_traces=optimize,
        optimizer=optimizer or OptimizerConfig(),
        bpred_entries=2048,
        tpred_entries=2048,
        tcache_uops=16 * 1024,
        extra_area=_TRACE_UNIT_AREA,
        calibration=calibration or EnergyCalibration(),
    )


def model_tn(calibration: EnergyCalibration | None = None) -> MachineConfig:
    """TN: N plus a selective trace cache (optimizations disabled)."""
    return _trace_model(
        "TN", "4-wide + selective trace cache, no optimizer",
        wide=False, optimize=False, calibration=calibration,
    )


def model_tw(calibration: EnergyCalibration | None = None) -> MachineConfig:
    """TW: W plus a selective trace cache (optimizations disabled)."""
    return _trace_model(
        "TW", "8-wide + selective trace cache, no optimizer",
        wide=True, optimize=False, calibration=calibration,
    )


def model_ton(
    calibration: EnergyCalibration | None = None,
    optimizer: OptimizerConfig | None = None,
) -> MachineConfig:
    """TON: the PARROT narrow machine (trace cache + dynamic optimizer)."""
    return _trace_model(
        "TON", "4-wide PARROT: selective trace cache + dynamic optimizer",
        wide=False, optimize=True, calibration=calibration, optimizer=optimizer,
    )


def model_tow(
    calibration: EnergyCalibration | None = None,
    optimizer: OptimizerConfig | None = None,
) -> MachineConfig:
    """TOW: the PARROT wide machine (trace cache + dynamic optimizer)."""
    return _trace_model(
        "TOW", "8-wide PARROT: selective trace cache + dynamic optimizer",
        wide=True, optimize=True, calibration=calibration, optimizer=optimizer,
    )


def model_tos(
    calibration: EnergyCalibration | None = None,
    *,
    state_switch_latency: int = 3,
    cold_width: int = 4,
) -> MachineConfig:
    """TOS: the conceptual split machine — narrow cold core, wide hot core.

    Presented in the paper "only as a reference for alternative future
    developments" (§4); its energy breakdown appears in Figure 4.11.  The
    ``state_switch_latency`` and ``cold_width`` knobs support the §5
    future-work exploration of alternative decoupled split cores (see
    ``examples/split_core_study.py``).

    Known approximation: the energy tag matrix is built from the wide hot
    core's parameters, so cold-pipeline uops are charged wide-width
    rename/issue/regfile energy.  This overstates TOS's cold-phase energy
    (conservative for the paper's point that the split design is the more
    power-hungry alternative); per-pipeline tag matrices are future work.
    """
    cold_profile = ExecProfile(
        rename_width=cold_width,
        issue_width=cold_width,
        commit_width=cold_width,
        fu_counts=narrow_fu_counts(),
    )
    core = wide_core_params("TOS-hot-core")
    return MachineConfig(
        name="TOS",
        description="split PARROT: narrow cold pipeline, 8-wide hot pipeline",
        core=core,
        fetch=_SPLIT_FETCH,
        has_trace_cache=True,
        optimize_traces=True,
        optimizer=OptimizerConfig(),
        bpred_entries=2048,
        tpred_entries=2048,
        tcache_uops=16 * 1024,
        cold_profile=cold_profile,
        state_switch_latency=state_switch_latency,
        # Two cores on die: the narrow cold core's area adds to leakage.
        extra_area=_TRACE_UNIT_AREA + 1.0,
        calibration=calibration or EnergyCalibration(),
    )


_FACTORIES = {
    "N": model_n,
    "W": model_w,
    "TN": model_tn,
    "TW": model_tw,
    "TON": model_ton,
    "TOW": model_tow,
    "TOS": model_tos,
}


def model_config(name: str, calibration: EnergyCalibration | None = None) -> MachineConfig:
    """Build a named model configuration (Table 3.1/3.2)."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; known: {MODEL_NAMES}") from exc
    return factory(calibration)


def all_models(calibration: EnergyCalibration | None = None) -> list[MachineConfig]:
    """All seven configurations, in presentation order."""
    return [model_config(name, calibration) for name in MODEL_NAMES]
