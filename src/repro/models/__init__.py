"""The seven machine models of the paper (Tables 3.1/3.2)."""

from repro.models.configs import (
    MODEL_NAMES,
    all_models,
    model_config,
    model_n,
    model_tn,
    model_ton,
    model_tos,
    model_tow,
    model_tw,
    model_w,
)

__all__ = [
    "MODEL_NAMES",
    "all_models",
    "model_config",
    "model_n",
    "model_tn",
    "model_ton",
    "model_tos",
    "model_tow",
    "model_tw",
    "model_w",
]
