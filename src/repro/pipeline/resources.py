"""Execution-core resource descriptions (widths, windows, functional units).

:class:`CoreParams` captures everything the timing core needs to know about
one execution engine.  The paper's generic "object-oriented execution core
class which can be instantiated with a variable number of execution cores of
widely differing characteristics" (§3.1) maps to
:class:`~repro.pipeline.core.TimingCore` parameterised by this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.opcodes import FuClass


def narrow_fu_counts() -> dict[FuClass, int]:
    """Functional units of the standard 4-wide machine (model N)."""
    return {
        FuClass.INT: 3,
        FuClass.INT_MUL: 1,
        FuClass.FP: 2,
        FuClass.MEM_LOAD: 2,
        FuClass.MEM_STORE: 1,
        FuClass.BRANCH: 1,
    }


def wide_fu_counts() -> dict[FuClass, int]:
    """Functional units of the 8-wide machine (model W): doubled."""
    return {
        FuClass.INT: 6,
        FuClass.INT_MUL: 2,
        FuClass.FP: 4,
        FuClass.MEM_LOAD: 3,
        FuClass.MEM_STORE: 2,
        FuClass.BRANCH: 2,
    }


@dataclass(frozen=True, slots=True)
class CoreParams:
    """Complete description of one out-of-order execution engine.

    Widths are in uops per cycle.  ``front_depth`` is the number of pipeline
    stages between fetch and dispatch — it determines the misprediction
    penalty (super-pipelined machines pay dearly for flushes).  ``area`` is
    the relative core area K in the paper's leakage formula
    ``LE = P_MAX x (0.05 M + 0.4 K) x CYC``.
    """

    name: str
    rename_width: int
    issue_width: int
    commit_width: int
    rob_size: int
    window_size: int
    front_depth: int = 20
    trace_flush_extra: int = 4
    fu_counts: dict[FuClass, int] = field(default_factory=narrow_fu_counts)
    area: float = 1.0

    def __post_init__(self) -> None:
        if min(self.rename_width, self.issue_width, self.commit_width) < 1:
            raise ConfigurationError(f"{self.name}: widths must be >= 1")
        if self.rob_size < self.window_size:
            raise ConfigurationError(
                f"{self.name}: ROB ({self.rob_size}) smaller than scheduler "
                f"window ({self.window_size})"
            )
        if self.front_depth < 1:
            raise ConfigurationError(f"{self.name}: front_depth must be >= 1")
        if self.area <= 0:
            raise ConfigurationError(f"{self.name}: area must be positive")
        for fu, count in self.fu_counts.items():
            if count < 1:
                raise ConfigurationError(f"{self.name}: no units of class {fu.name}")


@dataclass(frozen=True, slots=True)
class ExecProfile:
    """Per-pipeline execution widths applied on top of a core's structures.

    A unified PARROT core uses one profile for both hot and cold work; a
    split machine (TOS) gives the hot pipeline a wider profile than the
    cold one while sharing the architectural state.  Deriving profiles from
    :class:`CoreParams` keeps the two representations consistent.
    """

    rename_width: int
    issue_width: int
    commit_width: int
    fu_counts: dict[FuClass, int]

    @classmethod
    def from_params(cls, params: CoreParams) -> "ExecProfile":
        """The profile matching a core's own widths."""
        return cls(
            rename_width=params.rename_width,
            issue_width=params.issue_width,
            commit_width=params.commit_width,
            fu_counts=dict(params.fu_counts),
        )


def narrow_core_params(name: str = "narrow") -> CoreParams:
    """The standard 4-wide OOO core of the reference model N (§3.3)."""
    return CoreParams(
        name=name,
        rename_width=4,
        issue_width=4,
        commit_width=4,
        rob_size=128,
        window_size=48,
        front_depth=20,
        fu_counts=narrow_fu_counts(),
        area=1.0,
    )


def wide_core_params(name: str = "wide") -> CoreParams:
    """The theoretical 8-wide extension W: all stages doubled (§3.3).

    The area factor reflects the superlinear growth of rename, bypass and
    scheduling structures with width — the source of W's "vast energy
    inefficiency" (Figure 4.5).
    """
    return CoreParams(
        name=name,
        rename_width=8,
        issue_width=8,
        commit_width=8,
        rob_size=256,
        window_size=96,
        front_depth=22,
        fu_counts=wide_fu_counts(),
        area=1.9,
    )
