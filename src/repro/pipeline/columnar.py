"""Columnar batch execution backend: planned segments as column arrays.

The scalar batch executors (:meth:`~repro.pipeline.core.TimingCore.
run_hot_plan` / :meth:`~repro.pipeline.core.TimingCore.run_cold_plan`)
replay per-uop *row* tuples — nine fields each, four of which (the source
and destination register ids) exist only to be re-resolved against the
register file on every execution.  This module compiles the same plans
one step further and replays them with a leaner fused loop:

* **column extraction** — functional unit, latency and fetch-group offset
  become per-uop columns (numpy at compile time for the arithmetic
  columns), pre-zipped into compact replay tuples so the loop never
  unpacks unused fields and never rebuilds iteration state per run;
* **dependency wake-up as precomputed propagation links** — for every uop
  the compiler resolves which *in-segment* producers (by uop index) and
  which *carried-in* architectural registers gate its readiness.  The
  replay loop propagates completion times through those links directly
  and writes the register file back once per segment (each register's
  last in-segment writer), instead of guarding and re-resolving register
  ids per uop;
* **memory binding hoisted where it is order-free** — a hot trace's
  cache-hierarchy probes depend only on the recorded dynamic stream, so
  they hoist out of the timing recurrence into a prologue that preserves
  the exact scalar call order (L1I/L1D share the L2's LRU state, so
  order *is* semantics) and patches latency overrides into a copy of the
  affected rows.  Cold segments interleave icache probes, memory probes
  and predictor training with timing in scalar order by construction;
* **event counting as per-plan reductions** — shared with the scalar
  plans via :func:`~repro.pipeline.core.compile_plan_stats`: one batched
  charge per executed segment.

The dispatch/issue/commit recurrence itself stays a sequential fused
loop here: the ROB gate applies ``int(gate) + 1`` *inside* a running max
and the issue scan consumes shared slot-table state, so the recurrence is
not associative and cannot be expressed as a prefix-scan over arrays
without changing results *in general*.  The ``compiled`` backend
(:mod:`repro.pipeline.specialize`) attacks that residual from two sides:
per-plan generated straight-line code takes the interpreter overhead out
of the sequential loop, and a verified max-plus pre-pass vectorizes the
segments whose constraints provably never bind.  Bit-identity with the
scalar executors — pinned by the golden parity suite — is the contract
for every backend; the columnar win comes from moving everything that
*is* order-free out of the loop.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.isa.opcodes import FuClass
from repro.isa.registers import NUM_ARCH_REGS, REG_NONE
from repro.pipeline.core import (
    _PRUNE_INTERVAL,
    TimingCore,
    compile_plan_stats,
    compile_uop_row,
)


class ExecutionBackend(Enum):
    """Which batch executor evaluates planned segments.

    ``SCALAR`` is the historical row-replay path (and the reference
    semantics, itself pinned against :meth:`TimingCore.run_uop`);
    ``COLUMNAR`` replays column-compiled plans; ``COMPILED`` replays
    per-plan generated functions with a vectorized max-plus issue
    pre-pass (:mod:`repro.pipeline.specialize`).  All are bit-identical;
    the enum exists so callers opt into the faster backends explicitly
    and regressions stay attributable.
    """

    SCALAR = "scalar"
    COLUMNAR = "columnar"
    COMPILED = "compiled"


def _dependency_links(rows: list) -> tuple[list, list, tuple]:
    """Resolve per-uop wake-up structure from planned rows.

    Returns ``(producers, carried, last_writers)``:

    * ``producers[k]`` — tuple of earlier uop indices whose completion
      gates uop ``k`` (one entry per source register last written inside
      the segment), or ``None`` when empty;
    * ``carried[k]`` — tuple of register-file indices uop ``k`` reads from
      the carried-in state (sources with no earlier in-segment writer),
      or ``None`` when empty;
    * ``last_writers`` — ``((reg, k), ...)``: each register's last
      in-segment writer, the only ``reg_ready`` updates that survive the
      segment.

    Source indices are normalised to the register-file cell the scalar
    executor actually reads (``reg_ready[s]`` with a negative ``s`` wraps
    in CPython), so packed extra sources alias bit-identically.
    """
    writer: dict[int, int] = {}
    writer_get = writer.get
    producers: list[tuple | None] = []
    carried: list[tuple | None] = []
    for k, (_fu, _lat, src1, src2, extra, dest, dest2, _mem, _origin) in enumerate(rows):
        prods: list[int] = []
        carry: list[int] = []
        if src1 != REG_NONE:
            j = writer_get(src1)
            if j is None:
                carry.append(src1)
            else:
                prods.append(j)
        if src2 != REG_NONE:
            j = writer_get(src2)
            if j is None:
                carry.append(src2)
            else:
                prods.append(j)
        if extra:
            for src in extra:
                cell = src if src >= 0 else src + NUM_ARCH_REGS
                j = writer_get(cell)
                if j is None:
                    carry.append(cell)
                else:
                    prods.append(j)
        producers.append(tuple(prods) if prods else None)
        carried.append(tuple(carry) if carry else None)
        if dest != REG_NONE:
            writer[dest] = k
        if dest2 != REG_NONE:
            writer[dest2] = k
    return producers, carried, tuple(writer.items())


def compile_hot_columnar(rows: list, per_cycle: int, front_depth: int) -> tuple:
    """Compile a hot trace's planned rows into a columnar plan.

    ``per_cycle`` is the trace-cache uop bandwidth (one fetch group per
    cycle), ``front_depth`` the owning machine's front-end depth — both
    static per machine, so the offset column bakes the whole
    ``group_cycle + front_depth`` dispatch base per uop.  Layout::

        (n_uops, cols, mem_entries, last_writers, n_groups,
         n_reads, n_writes, fu_counts)

    ``cols`` is the pre-zipped replay column: one ``(offset, fu, latency,
    producers, carried)`` tuple per uop.  ``mem_entries`` is ``((k,
    mem_code, origin), ...)`` in uop order — the hierarchy-order-
    preserving prologue.
    """
    n = len(rows)
    # Column extraction: the dispatch base of uop k relative to the
    # trace's fetch-entry cycle is (k // per_cycle) + 1 + front_depth.
    offsets = (np.arange(n, dtype=np.int64) // per_cycle
               + (1 + front_depth)).tolist()
    producers, carried, last_writers = _dependency_links(rows)
    cols = tuple(zip(
        offsets,
        [row[0] for row in rows],
        [row[1] for row in rows],
        producers,
        carried,
    ))
    mem_entries = tuple(
        (k, row[7], row[8]) for k, row in enumerate(rows) if row[7]
    )
    n_uops, n_reads, n_writes, fu_counts = compile_plan_stats(rows)
    n_groups = -(-n // per_cycle) if n else 0
    return (
        n_uops, cols, mem_entries, last_writers, n_groups,
        n_reads, n_writes, fu_counts,
    )


def compile_cold_columnar(instructions: list, params) -> tuple:
    """Compile a cold segment into a columnar plan.

    Mirrors :meth:`ParrotSimulator._compile_cold_plan` but with condensed
    replay rows: register ids are compiled away into dependency links
    (:func:`_dependency_links` over the concatenated uops), so a replay
    row is ``(fu, latency, producers, carried, mem_code)``.  Unlike hot
    plans, nothing machine-specific beyond the fetch parameters is baked
    in, so cold columnar plans keep the scalar sharing contract:
    shareable across models with equal
    :class:`~repro.frontend.fetch.FetchParams` over one segment list.
    Layout::

        (n_uops, groups, last_writers, n_reads, n_writes, fu_counts,
         n_cti)

    ``groups`` is ``((start_address, entries), ...)``; each entry is
    ``(instr_index, is_cti, rows)``.
    """
    from repro.frontend.fetch import plan_cold_groups

    all_rows: list = []
    raw_groups: list = []
    n_cti = 0
    for start_idx, end_idx, start_address in plan_cold_groups(
        instructions, params
    ):
        entries = []
        for idx in range(start_idx, end_idx):
            instr = instructions[idx].instr
            rows = tuple(compile_uop_row(uop) for uop in instr.uops)
            all_rows.extend(rows)
            is_cti = instr.is_cti
            if is_cti:
                n_cti += 1
            entries.append((idx, is_cti, rows))
        raw_groups.append((start_address, entries))
    producers, carried, last_writers = _dependency_links(all_rows)
    # Re-thread the flat links back through the per-instruction rows,
    # condensing each nine-field row to its replay columns.
    k = 0
    groups = []
    for start_address, entries in raw_groups:
        condensed = []
        for idx, is_cti, rows in entries:
            replay = []
            for row in rows:
                replay.append(
                    (row[0], row[1], producers[k], carried[k], row[7])
                )
                k += 1
            condensed.append((idx, is_cti, tuple(replay)))
        groups.append((start_address, tuple(condensed)))
    n_uops, n_reads, n_writes, fu_counts = compile_plan_stats(all_rows)
    return (
        n_uops, tuple(groups), last_writers,
        n_reads, n_writes, fu_counts, n_cti,
    )


def run_hot_columnar(
    core: TimingCore,
    plan: tuple,
    instructions: list,
    load_latency,
    store_access,
) -> None:
    """Columnar twin of :meth:`TimingCore.run_hot_plan`.

    The prologue binds memory uops to the dynamic execution (exact scalar
    probe order), patching load-latency overrides into a shallow copy of
    the replay columns; the fused loop then replays the
    dispatch/issue/commit recurrence, propagating wake-up through the
    precompiled links; the epilogue writes rings, register file and the
    plan's static event totals back in one step.  Timing is in lockstep
    with the scalar executor — the parity suite pins their agreement.
    """
    (n, cols, mem_entries, last_writers, n_groups,
     n_reads, n_writes, plan_fu_counts) = plan

    # ---- prologue: memory binding, in recorded uop order.  Overrides
    # (L1 load misses) are rare with a prewarmed hierarchy, so the
    # columns are only copied when one actually lands.
    patched = None
    for k, code, origin in mem_entries:
        dyn = instructions[origin]
        addr = dyn.mem_addr
        if addr is None:
            addr = dyn.instr.address
        if code == 1:
            mem_latency = load_latency(addr)
            if mem_latency:
                if patched is None:
                    patched = list(cols)
                offset, fu, _latency, prods, carry = patched[k]
                patched[k] = (offset, fu, mem_latency, prods, carry)
        else:
            store_access(addr)
    if patched is not None:
        cols = patched

    # ---- hoist all per-uop state to locals (see run_hot_plan).
    fetch0 = core.fetch_cycle
    rename_width = core._rename_width
    issue_width = core._issue_width
    commit_step = core._commit_step
    rob_size = core._rob_size
    win_size = core._win_size
    last_dispatch = core._last_dispatch
    disp_cycle = core._disp_cycle
    disp_used = core._disp_used
    rob_ring = core._rob_ring
    rob_idx = core._rob_idx
    win_ring = core._win_ring
    win_idx = core._win_idx
    commit_time = core._commit_time
    reg_ready = core.reg_ready
    issue_slots = core._issue_slots
    issue_get = issue_slots.get
    fu_lookup = core._fu_lookup
    none_fu = FuClass.NONE
    completes: list = []
    completes_append = completes.append

    for offset, fu, latency, prods, carry in cols:
        # ---- dispatch (mirrors run_uop; the group clock is the column).
        dispatch = fetch0 + offset
        if last_dispatch > dispatch:
            dispatch = last_dispatch
        rob_gate = rob_ring[rob_idx]
        if rob_gate > dispatch:
            dispatch = int(rob_gate) + 1
        win_gate = win_ring[win_idx]
        if win_gate > dispatch:
            dispatch = win_gate
        if dispatch > disp_cycle:
            disp_cycle = dispatch
            disp_used = 0
        else:
            dispatch = disp_cycle
        if disp_used >= rename_width:
            disp_cycle += 1
            disp_used = 0
            dispatch = disp_cycle
        disp_used += 1
        last_dispatch = dispatch

        # ---- operand readiness via precompiled wake-up links.
        ready = dispatch + 1
        if prods is not None:
            for j in prods:
                r = completes[j]
                if r > ready:
                    ready = r
        if carry is not None:
            for reg in carry:
                r = reg_ready[reg]
                if r > ready:
                    ready = r

        # ---- issue (mirrors _find_issue_slot; ``ready`` is an int by
        # construction, see run_hot_plan).
        cycle = ready
        if fu is none_fu:
            while True:
                used = issue_get(cycle, 0)
                if used < issue_width:
                    break
                cycle += 1
            issue_slots[cycle] = used + 1
        else:
            fu_slots, fu_get, fu_width = fu_lookup[fu]
            while True:
                used = issue_get(cycle, 0)
                if used < issue_width:
                    fu_used = fu_get(cycle, 0)
                    if fu_used < fu_width:
                        break
                cycle += 1
            issue_slots[cycle] = used + 1
            fu_slots[cycle] = fu_used + 1

        # ---- execute: completion feeds the links, not the regfile.
        complete = cycle + latency
        completes_append(complete)

        # ---- commit.
        commit = commit_time + commit_step
        if complete + 1 > commit:
            commit = complete + 1.0
        commit_time = commit
        rob_ring[rob_idx] = commit
        rob_idx += 1
        if rob_idx == rob_size:
            rob_idx = 0
        win_ring[win_idx] = cycle
        win_idx += 1
        if win_idx == win_size:
            win_idx = 0

    # ---- epilogue: regfile (each register's last writer), core state,
    # and the plan's static event totals.
    for reg, j in last_writers:
        reg_ready[reg] = completes[j]
    core.fetch_cycle = fetch0 + n_groups
    core._last_dispatch = last_dispatch
    core._disp_cycle = disp_cycle
    core._disp_used = disp_used
    core._rob_idx = rob_idx
    core._win_idx = win_idx
    core._commit_time = commit_time
    core._n_src_reads += n_reads
    core._n_dest_writes += n_writes
    n_exec = core._n_exec
    for fu, count in plan_fu_counts:
        n_exec[fu] += count
    core.uops_executed += n
    core._since_prune += n
    if core._since_prune >= _PRUNE_INTERVAL:
        core._prune_slots()


def run_cold_columnar(
    core: TimingCore,
    plan: tuple,
    instructions: list,
    fetch_latency,
    load_latency,
    store_access,
    predict_and_train,
) -> int:
    """Columnar twin of :meth:`TimingCore.run_cold_plan`.

    One fused pass, like the scalar executor — icache probes, memory
    probes, predictor training and mispredict redirects interleave with
    timing in the exact scalar order by construction.  The columnar
    advantage is the condensed replay rows: readiness flows through
    precompiled dependency links and the register file is written back
    once per segment, so the loop never touches register ids.  Returns
    the mispredict count.
    """
    (n, groups, last_writers, n_reads, n_writes, plan_fu_counts,
     _n_cti) = plan

    fetch_cycle = core.fetch_cycle
    front_depth = core._front_depth
    rename_width = core._rename_width
    issue_width = core._issue_width
    commit_step = core._commit_step
    rob_size = core._rob_size
    win_size = core._win_size
    last_dispatch = core._last_dispatch
    disp_cycle = core._disp_cycle
    disp_used = core._disp_used
    rob_ring = core._rob_ring
    rob_idx = core._rob_idx
    win_ring = core._win_ring
    win_idx = core._win_idx
    commit_time = core._commit_time
    reg_ready = core.reg_ready
    issue_slots = core._issue_slots
    issue_get = issue_slots.get
    fu_lookup = core._fu_lookup
    none_fu = FuClass.NONE
    n_misp = 0
    completes: list = []
    completes_append = completes.append

    for start_address, entries in groups:
        fetch_cycle += 1 + fetch_latency(start_address)
        group_cycle = fetch_cycle
        for idx, is_cti, rows in entries:
            dyn = instructions[idx]
            complete = 0.0
            for fu, latency, prods, carry, mem_code in rows:
                if mem_code:
                    addr = dyn.mem_addr
                    if addr is None:
                        addr = dyn.instr.address
                    if mem_code == 1:
                        mem_latency = load_latency(addr)
                        if mem_latency:
                            latency = mem_latency
                    else:
                        store_access(addr)

                # ---- dispatch (mirrors run_uop).
                dispatch = group_cycle + front_depth
                if last_dispatch > dispatch:
                    dispatch = last_dispatch
                rob_gate = rob_ring[rob_idx]
                if rob_gate > dispatch:
                    dispatch = int(rob_gate) + 1
                win_gate = win_ring[win_idx]
                if win_gate > dispatch:
                    dispatch = win_gate
                if dispatch > disp_cycle:
                    disp_cycle = dispatch
                    disp_used = 0
                else:
                    dispatch = disp_cycle
                if disp_used >= rename_width:
                    disp_cycle += 1
                    disp_used = 0
                    dispatch = disp_cycle
                disp_used += 1
                last_dispatch = dispatch

                # ---- operand readiness via precompiled links.
                ready = dispatch + 1
                if prods is not None:
                    for j in prods:
                        r = completes[j]
                        if r > ready:
                            ready = r
                if carry is not None:
                    for reg in carry:
                        r = reg_ready[reg]
                        if r > ready:
                            ready = r

                # ---- issue.
                cycle = ready
                if fu is none_fu:
                    while True:
                        used = issue_get(cycle, 0)
                        if used < issue_width:
                            break
                        cycle += 1
                    issue_slots[cycle] = used + 1
                else:
                    fu_slots, fu_get, fu_width = fu_lookup[fu]
                    while True:
                        used = issue_get(cycle, 0)
                        if used < issue_width:
                            fu_used = fu_get(cycle, 0)
                            if fu_used < fu_width:
                                break
                        cycle += 1
                    issue_slots[cycle] = used + 1
                    fu_slots[cycle] = fu_used + 1

                # ---- execute.
                complete = cycle + latency
                completes_append(complete)

                # ---- commit.
                commit = commit_time + commit_step
                if complete + 1 > commit:
                    commit = complete + 1.0
                commit_time = commit
                rob_ring[rob_idx] = commit
                rob_idx += 1
                if rob_idx == rob_size:
                    rob_idx = 0
                win_ring[win_idx] = cycle
                win_idx += 1
                if win_idx == win_size:
                    win_idx = 0

            if is_cti:
                if predict_and_train(dyn.instr, dyn.taken, dyn.next_address):
                    n_misp += 1
                    # Redirect past the resolving uop, then refetch the
                    # fall-through the front end did not pursue.
                    resolved = int(complete + 1)
                    if resolved > fetch_cycle:
                        fetch_cycle = resolved
                    fetch_cycle += 1
                    group_cycle = fetch_cycle

    # ---- epilogue.
    for reg, j in last_writers:
        reg_ready[reg] = completes[j]
    core.fetch_cycle = fetch_cycle
    core._last_dispatch = last_dispatch
    core._disp_cycle = disp_cycle
    core._disp_used = disp_used
    core._rob_idx = rob_idx
    core._win_idx = win_idx
    core._commit_time = commit_time
    core._n_src_reads += n_reads
    core._n_dest_writes += n_writes
    n_exec = core._n_exec
    for fu, count in plan_fu_counts:
        n_exec[fu] += count
    core.uops_executed += n
    core._since_prune += n
    if core._since_prune >= _PRUNE_INTERVAL:
        core._prune_slots()
    return n_misp
