"""The cycle-level out-of-order execution core timing model.

This is the generic execution engine of §3.1: one class instantiated for
every machine configuration, executing *abstract instructions* — cold
macro-instructions or hot atomic traces — as sequences of uops.

Model
-----
The core is a one-pass dependence/resource timing model.  For each uop, in
program order, it computes:

``dispatch``
    when the uop enters the scheduler: its fetch-group cycle plus the
    front-end depth, delayed by rename bandwidth, ROB occupancy (the uop
    ``rob_size`` older must have committed) and scheduler-window span (the
    uop ``window_size`` older must have issued).
``issue``
    the first cycle at or after operand readiness with a free issue slot
    and a free functional unit of the uop's class.
``complete``
    issue plus execution latency (plus memory-hierarchy latency for loads).
``commit``
    in order, at ``commit_width`` uops per cycle, never before completion.

Total cycles are the commit time of the last uop.  This captures every
first-order effect the paper's results depend on — width limits, window-
limited ILP, dependence chains, mispredict redirects and cache misses —
at a per-uop cost low enough for pure-Python benchmark sweeps.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UOP_FU, UOP_LATENCY, FuClass, UopKind
from repro.isa.registers import NUM_ARCH_REGS, REG_NONE
from repro.pipeline.resources import CoreParams, ExecProfile
from repro.power.events import EventCounts

#: How many uops between prunes of the issue/FU slot tables.
_PRUNE_INTERVAL = 8192


def compile_uop_row(uop: Uop) -> tuple:
    """Precompute one uop's planned-execution row.

    The batch executors (:meth:`TimingCore.run_hot_plan`,
    :meth:`TimingCore.run_cold_plan`) replay these rows instead of reading
    ``Uop`` attributes and the per-kind latency/FU tables on every dynamic
    execution.  Row layout::

        (fu, latency, src1, src2, extra_srcs, dest, dest2, mem_code, origin)

    with ``mem_code`` 1 for loads, 2 for stores, 0 otherwise.
    """
    kind = uop.kind
    if kind is UopKind.LOAD:
        mem_code = 1
    elif kind is UopKind.STORE:
        mem_code = 2
    else:
        mem_code = 0
    return (
        UOP_FU[kind],
        UOP_LATENCY[kind],
        uop.src1,
        uop.src2,
        uop.extra_srcs,
        uop.dest,
        uop.dest2,
        mem_code,
        uop.origin,
    )


def compile_plan_stats(rows: list) -> tuple[int, int, int, tuple]:
    """Static event totals of a sequence of planned uop rows.

    Register reads/writes and per-FU execution counts do not depend on
    dynamic state, so the batch executors charge them once per executed
    plan instead of counting inside the per-uop loop.  Returns
    ``(n_uops, n_src_reads, n_dest_writes, ((fu, count), ...))``.
    """
    n_reads = 0
    n_writes = 0
    fu_counts: dict[FuClass, int] = {}
    for fu, _lat, src1, src2, extra, dest, dest2, _mem, _origin in rows:
        if src1 != REG_NONE:
            n_reads += 1
        if src2 != REG_NONE:
            n_reads += 1
        if extra:
            n_reads += len(extra)
        if dest != REG_NONE:
            n_writes += 1
        if dest2 != REG_NONE:
            n_writes += 1
        fu_counts[fu] = fu_counts.get(fu, 0) + 1
    return len(rows), n_reads, n_writes, tuple(fu_counts.items())


class TimingCore:
    """One-pass cycle-level timing engine for an OOO execution core."""

    __slots__ = (
        "params",
        "events",
        "profile",
        "reg_ready",
        "fetch_cycle",
        "_last_dispatch",
        "_disp_cycle",
        "_disp_used",
        "_front_depth",
        "_rob_size",
        "_win_size",
        "_rename_width",
        "_issue_width",
        "_commit_step",
        "_fu_counts",
        "_rob_ring",
        "_rob_idx",
        "_win_ring",
        "_win_idx",
        "_commit_time",
        "_issue_slots",
        "_fu_slots",
        "_fu_lookup",
        "uops_executed",
        "_since_prune",
        "_n_src_reads",
        "_n_dest_writes",
        "_n_exec",
        "_events_flushed",
        "_drained_uops",
        "_drained_src_reads",
        "_drained_dest_writes",
        "_drained_exec",
    )

    def __init__(self, params: CoreParams, events: EventCounts | None = None):
        self.params = params
        self.events = events if events is not None else EventCounts()
        self.reg_ready = [0] * NUM_ARCH_REGS

        self.fetch_cycle = 0
        self._last_dispatch = 0
        self._disp_cycle = 0
        self._disp_used = 0

        # Structural constants, pulled out of ``params`` once: the per-uop
        # path reads them every call.
        self._front_depth = params.front_depth
        self._rob_size = params.rob_size
        self._win_size = params.window_size

        self._rob_ring = [0.0] * params.rob_size
        self._rob_idx = 0
        self._win_ring = [0] * params.window_size
        self._win_idx = 0
        self._commit_time = 0.0

        self._issue_slots: dict[int, int] = {}
        self._fu_slots: dict[FuClass, dict[int, int]] = {
            fu: {} for fu in params.fu_counts
        }
        self.uops_executed = 0
        self._since_prune = 0
        # Batched per-uop event counters: string-keyed EventCounts.add in
        # the per-uop path costs ~10 dict increments per uop; these plain
        # ints are folded into ``events`` by :meth:`flush_events`.
        self._n_src_reads = 0
        self._n_dest_writes = 0
        self._n_exec: dict[FuClass, int] = {fu: 0 for fu in FuClass}
        self._events_flushed = False
        # High-water marks of the batched counters already folded by
        # drain_events() (the incremental, sampled-simulation form).
        self._drained_uops = 0
        self._drained_src_reads = 0
        self._drained_dest_writes = 0
        self._drained_exec: dict[FuClass, int] = {fu: 0 for fu in FuClass}
        self.set_profile(ExecProfile.from_params(params))

    # -- pipeline-selection hooks ------------------------------------------

    def set_profile(self, profile: ExecProfile) -> None:
        """Switch execution widths (split-core machines switch per pipeline)."""
        # Non-split machines hand the same profile object to both pipeline
        # selectors, making most switches no-ops; skipping them avoids
        # rebuilding the per-FU issue triples once per segment.
        if getattr(self, "profile", None) is profile:
            return
        self.profile = profile
        # Width caches: switches are per-segment at most, reads are per-uop.
        self._rename_width = profile.rename_width
        self._issue_width = profile.issue_width
        self._commit_step = 1.0 / profile.commit_width
        self._fu_counts = profile.fu_counts
        for fu in profile.fu_counts:
            if fu not in self._fu_slots:
                self._fu_slots[fu] = {}
        self._rebuild_fu_lookup()

    def _rebuild_fu_lookup(self) -> None:
        """Refresh the merged per-FU issue triples.

        ``_fu_lookup`` folds the three per-uop lookups of the issue scan —
        the FU's slot dict, its bound ``.get`` and its width under the
        current profile — into one dict hit.  It caches dict identities,
        so it must be rebuilt whenever a slot dict is added or the widths
        change (:meth:`set_profile`); :meth:`_prune_slots` prunes in
        place and leaves every identity intact.
        """
        fu_counts = self._fu_counts
        self._fu_lookup = {
            fu: (slots, slots.get, fu_counts.get(fu, 1))
            for fu, slots in self._fu_slots.items()
        }

    # -- fetch clocking -----------------------------------------------------

    def begin_fetch_group(self, extra_latency: int = 0) -> int:
        """Open the next fetch group; returns its fetch cycle.

        ``extra_latency`` models instruction-supply stalls (icache misses,
        trace-cache fill) that delay this and subsequent groups.
        """
        self.fetch_cycle += 1 + extra_latency
        return self.fetch_cycle

    def redirect_fetch(self, until_cycle: float) -> None:
        """Stall fetch until ``until_cycle`` (mispredict/flush recovery)."""
        cycle = int(until_cycle)
        if cycle > self.fetch_cycle:
            self.fetch_cycle = cycle

    def stall_fetch(self, cycles: int) -> None:
        """Insert a fixed fetch bubble (state switches, optimizer hand-off)."""
        if cycles > 0:
            self.fetch_cycle += cycles

    # -- uop execution ------------------------------------------------------

    def run_uop(self, uop: Uop, group_cycle: int, mem_latency: int = 0) -> float:
        """Time one uop fetched in the group at ``group_cycle``.

        ``mem_latency`` replaces the default L1-hit latency for loads that
        missed (the caller resolves the hierarchy).  Returns the completion
        (writeback) cycle, which the caller uses to resolve branches.
        """
        # ---- dispatch: in order, rename-width limited, ROB/window gated.
        dispatch = group_cycle + self._front_depth
        if self._last_dispatch > dispatch:
            dispatch = self._last_dispatch
        rob_gate = self._rob_ring[self._rob_idx]
        if rob_gate > dispatch:
            dispatch = int(rob_gate) + 1
        win_gate = self._win_ring[self._win_idx]
        if win_gate > dispatch:
            dispatch = win_gate
        if dispatch > self._disp_cycle:
            self._disp_cycle = dispatch
            self._disp_used = 0
        else:
            dispatch = self._disp_cycle
        if self._disp_used >= self._rename_width:
            self._disp_cycle += 1
            self._disp_used = 0
            dispatch = self._disp_cycle
        self._disp_used += 1
        self._last_dispatch = dispatch

        # ---- operand readiness (wakeup).
        ready = dispatch + 1
        reg_ready = self.reg_ready
        n_reads = 0
        src = uop.src1
        if src != REG_NONE:
            r = reg_ready[src]
            if r > ready:
                ready = r
            n_reads = 1
        src = uop.src2
        if src != REG_NONE:
            r = reg_ready[src]
            if r > ready:
                ready = r
            n_reads += 1
        if uop.extra_srcs:
            for src in uop.extra_srcs:
                r = reg_ready[src]
                if r > ready:
                    ready = r
                n_reads += 1
        if n_reads:
            self._n_src_reads += n_reads

        # ---- issue: first cycle with a free issue slot and functional unit.
        kind = uop.kind
        fu = UOP_FU[kind]
        issue = self._find_issue_slot(int(ready), fu)

        # ---- execute.
        latency = UOP_LATENCY[kind]
        if mem_latency:
            latency = mem_latency
        complete = issue + latency

        dest = uop.dest
        if dest != REG_NONE:
            reg_ready[dest] = complete
            self._n_dest_writes += 1
        dest = uop.dest2
        if dest != REG_NONE:
            reg_ready[dest] = complete
            self._n_dest_writes += 1

        # ---- commit: in order at commit width, after completion.
        commit = self._commit_time + self._commit_step
        if complete + 1 > commit:
            commit = complete + 1.0
        self._commit_time = commit
        rob_idx = self._rob_idx
        self._rob_ring[rob_idx] = commit
        self._rob_idx = (rob_idx + 1) % self._rob_size
        win_idx = self._win_idx
        self._win_ring[win_idx] = issue
        self._win_idx = (win_idx + 1) % self._win_size

        # ---- per-uop structural energy events (batched; see flush_events).
        self._n_exec[fu] += 1

        self.uops_executed += 1
        self._since_prune += 1
        if self._since_prune >= _PRUNE_INTERVAL:
            self._prune_slots()
        return complete

    def _find_issue_slot(self, earliest: int, fu: FuClass) -> int:
        """First cycle at or after ``earliest`` with issue + FU slots free.

        The scan is linear from each uop's ready time.  A skip-ahead cursor
        is not safe here: bookings are sparse, so cycles below another
        uop's contention point can still be free for an earlier-ready uop.
        In practice contention runs are short (width slots per cycle), and
        measured scan lengths stay near 1; revisit with a per-FU free-list
        if a profile ever shows otherwise.
        """
        issue_slots = self._issue_slots
        issue_width = self._issue_width
        issue_get = issue_slots.get
        if fu is FuClass.NONE:
            cycle = earliest
            while True:
                used = issue_get(cycle, 0)
                if used < issue_width:
                    break
                cycle += 1
            issue_slots[cycle] = used + 1
            return cycle
        fu_slots, fu_get, fu_width = self._fu_lookup[fu]
        cycle = earliest
        while True:
            used = issue_get(cycle, 0)
            if used < issue_width:
                fu_used = fu_get(cycle, 0)
                if fu_used < fu_width:
                    break
            cycle += 1
        issue_slots[cycle] = used + 1
        fu_slots[cycle] = fu_used + 1
        return cycle

    def run_hot_plan(
        self,
        plan: tuple,
        instructions: list,
        load_latency,
        store_access,
    ) -> None:
        """Execute a hot trace's planned uop groups in one pass.

        ``plan`` is ``(groups, n_uops, n_reads, n_writes, fu_counts)``
        (see :func:`compile_plan_stats`); each group is a sequence of
        :func:`compile_uop_row` rows, one group streaming from the trace
        cache per cycle.  ``load_latency``/``store_access`` are the memory
        hierarchy's bound methods; memory rows bind to the current dynamic
        execution through their ``origin`` index into ``instructions``.

        Semantically identical to ``begin_fetch_group()`` +
        :meth:`run_uop` per row — but with the whole per-uop state held in
        locals and the static event totals charged once per plan, which is
        worth ~2x on the per-uop path in CPython.  Keep the timing logic
        in lockstep with :meth:`run_uop` (the reference implementation);
        the parity suite pins their agreement.
        """
        groups, n_uops, n_reads, n_writes, plan_fu_counts = plan
        # ---- hoist all per-uop state to locals.
        fetch_cycle = self.fetch_cycle
        front_depth = self._front_depth
        rename_width = self._rename_width
        issue_width = self._issue_width
        commit_step = self._commit_step
        rob_size = self._rob_size
        win_size = self._win_size
        last_dispatch = self._last_dispatch
        disp_cycle = self._disp_cycle
        disp_used = self._disp_used
        rob_ring = self._rob_ring
        rob_idx = self._rob_idx
        win_ring = self._win_ring
        win_idx = self._win_idx
        commit_time = self._commit_time
        reg_ready = self.reg_ready
        issue_slots = self._issue_slots
        issue_get = issue_slots.get
        fu_lookup = self._fu_lookup
        none_fu = FuClass.NONE
        reg_none = REG_NONE

        for rows in groups:
            fetch_cycle += 1
            group_cycle = fetch_cycle
            for (fu, latency, src1, src2, extra, dest, dest2,
                 mem_code, origin) in rows:
                mem_latency = 0
                if mem_code:
                    dyn = instructions[origin]
                    addr = dyn.mem_addr
                    if addr is None:
                        addr = dyn.instr.address
                    if mem_code == 1:
                        mem_latency = load_latency(addr)
                    else:
                        store_access(addr)

                # ---- dispatch (mirrors run_uop).
                dispatch = group_cycle + front_depth
                if last_dispatch > dispatch:
                    dispatch = last_dispatch
                rob_gate = rob_ring[rob_idx]
                if rob_gate > dispatch:
                    dispatch = int(rob_gate) + 1
                win_gate = win_ring[win_idx]
                if win_gate > dispatch:
                    dispatch = win_gate
                if dispatch > disp_cycle:
                    disp_cycle = dispatch
                    disp_used = 0
                else:
                    dispatch = disp_cycle
                if disp_used >= rename_width:
                    disp_cycle += 1
                    disp_used = 0
                    dispatch = disp_cycle
                disp_used += 1
                last_dispatch = dispatch

                # ---- operand readiness.
                ready = dispatch + 1
                if src1 != reg_none:
                    r = reg_ready[src1]
                    if r > ready:
                        ready = r
                if src2 != reg_none:
                    r = reg_ready[src2]
                    if r > ready:
                        ready = r
                if extra:
                    for src in extra:
                        r = reg_ready[src]
                        if r > ready:
                            ready = r

                # ---- issue (mirrors _find_issue_slot).  ``ready`` is an
                # int by construction (all latencies and gates are ints;
                # only the ROB commit times are floats, and those enter
                # the dispatch chain through ``int(rob_gate) + 1``).
                cycle = ready
                if fu is none_fu:
                    while True:
                        used = issue_get(cycle, 0)
                        if used < issue_width:
                            break
                        cycle += 1
                    issue_slots[cycle] = used + 1
                else:
                    fu_slots, fu_get, fu_width = fu_lookup[fu]
                    while True:
                        used = issue_get(cycle, 0)
                        if used < issue_width:
                            fu_used = fu_get(cycle, 0)
                            if fu_used < fu_width:
                                break
                        cycle += 1
                    issue_slots[cycle] = used + 1
                    fu_slots[cycle] = fu_used + 1

                # ---- execute.
                if mem_latency:
                    latency = mem_latency
                complete = cycle + latency
                if dest != reg_none:
                    reg_ready[dest] = complete
                if dest2 != reg_none:
                    reg_ready[dest2] = complete

                # ---- commit.
                commit = commit_time + commit_step
                if complete + 1 > commit:
                    commit = complete + 1.0
                commit_time = commit
                rob_ring[rob_idx] = commit
                rob_idx += 1
                if rob_idx == rob_size:
                    rob_idx = 0
                win_ring[win_idx] = cycle
                win_idx += 1
                if win_idx == win_size:
                    win_idx = 0

        # ---- write state back; charge the plan's static event totals.
        self.fetch_cycle = fetch_cycle
        self._last_dispatch = last_dispatch
        self._disp_cycle = disp_cycle
        self._disp_used = disp_used
        self._rob_idx = rob_idx
        self._win_idx = win_idx
        self._commit_time = commit_time
        self._n_src_reads += n_reads
        self._n_dest_writes += n_writes
        n_exec = self._n_exec
        for fu, count in plan_fu_counts:
            n_exec[fu] += count
        self.uops_executed += n_uops
        self._since_prune += n_uops
        if self._since_prune >= _PRUNE_INTERVAL:
            self._prune_slots()

    def run_cold_plan(
        self,
        plan: tuple,
        instructions: list,
        fetch_latency,
        load_latency,
        store_access,
        predict_and_train,
    ) -> int:
        """Execute a cold segment's planned fetch groups in one pass.

        ``plan`` is ``(groups, n_uops, n_reads, n_writes, fu_counts,
        n_cti)``; each group is ``(start_address, instr_entries)``, each
        entry ``(index, rows, is_cti)`` with :func:`compile_uop_row` rows.
        Per group the icache is probed (``fetch_latency``); per CTI the
        branch predictor trains, and a mispredict redirects fetch past the
        resolving uop's completion and opens a fresh group.

        Returns the number of mispredicts.  Timing is in lockstep with
        the per-uop path (see :meth:`run_hot_plan`).
        """
        groups, n_uops, n_reads, n_writes, plan_fu_counts, _n_cti = plan
        fetch_cycle = self.fetch_cycle
        front_depth = self._front_depth
        rename_width = self._rename_width
        issue_width = self._issue_width
        commit_step = self._commit_step
        rob_size = self._rob_size
        win_size = self._win_size
        last_dispatch = self._last_dispatch
        disp_cycle = self._disp_cycle
        disp_used = self._disp_used
        rob_ring = self._rob_ring
        rob_idx = self._rob_idx
        win_ring = self._win_ring
        win_idx = self._win_idx
        commit_time = self._commit_time
        reg_ready = self.reg_ready
        issue_slots = self._issue_slots
        issue_get = issue_slots.get
        fu_lookup = self._fu_lookup
        n_misp = 0
        none_fu = FuClass.NONE
        reg_none = REG_NONE

        for start_address, entries in groups:
            fetch_cycle += 1 + fetch_latency(start_address)
            group_cycle = fetch_cycle
            for idx, rows, is_cti in entries:
                dyn = instructions[idx]
                complete = 0.0
                for (fu, latency, src1, src2, extra, dest, dest2,
                     mem_code, origin) in rows:
                    mem_latency = 0
                    if mem_code:
                        addr = dyn.mem_addr
                        if addr is None:
                            addr = dyn.instr.address
                        if mem_code == 1:
                            mem_latency = load_latency(addr)
                        else:
                            store_access(addr)

                    # ---- dispatch (mirrors run_uop).
                    dispatch = group_cycle + front_depth
                    if last_dispatch > dispatch:
                        dispatch = last_dispatch
                    rob_gate = rob_ring[rob_idx]
                    if rob_gate > dispatch:
                        dispatch = int(rob_gate) + 1
                    win_gate = win_ring[win_idx]
                    if win_gate > dispatch:
                        dispatch = win_gate
                    if dispatch > disp_cycle:
                        disp_cycle = dispatch
                        disp_used = 0
                    else:
                        dispatch = disp_cycle
                    if disp_used >= rename_width:
                        disp_cycle += 1
                        disp_used = 0
                        dispatch = disp_cycle
                    disp_used += 1
                    last_dispatch = dispatch

                    # ---- operand readiness.
                    ready = dispatch + 1
                    if src1 != reg_none:
                        r = reg_ready[src1]
                        if r > ready:
                            ready = r
                    if src2 != reg_none:
                        r = reg_ready[src2]
                        if r > ready:
                            ready = r
                    if extra:
                        for src in extra:
                            r = reg_ready[src]
                            if r > ready:
                                ready = r

                    # ---- issue (mirrors _find_issue_slot; ``ready`` is
                    # an int by construction, see run_hot_plan).
                    cycle = ready
                    if fu is none_fu:
                        while True:
                            used = issue_get(cycle, 0)
                            if used < issue_width:
                                break
                            cycle += 1
                        issue_slots[cycle] = used + 1
                    else:
                        fu_slots, fu_get, fu_width = fu_lookup[fu]
                        while True:
                            used = issue_get(cycle, 0)
                            if used < issue_width:
                                fu_used = fu_get(cycle, 0)
                                if fu_used < fu_width:
                                    break
                            cycle += 1
                        issue_slots[cycle] = used + 1
                        fu_slots[cycle] = fu_used + 1

                    # ---- execute.
                    if mem_latency:
                        latency = mem_latency
                    complete = cycle + latency
                    if dest != reg_none:
                        reg_ready[dest] = complete
                    if dest2 != reg_none:
                        reg_ready[dest2] = complete

                    # ---- commit.
                    commit = commit_time + commit_step
                    if complete + 1 > commit:
                        commit = complete + 1.0
                    commit_time = commit
                    rob_ring[rob_idx] = commit
                    rob_idx += 1
                    if rob_idx == rob_size:
                        rob_idx = 0
                    win_ring[win_idx] = cycle
                    win_idx += 1
                    if win_idx == win_size:
                        win_idx = 0

                if is_cti:
                    if predict_and_train(dyn.instr, dyn.taken, dyn.next_address):
                        n_misp += 1
                        # Redirect past the resolving uop, then refetch the
                        # fall-through the front end did not pursue.
                        resolved = int(complete + 1)
                        if resolved > fetch_cycle:
                            fetch_cycle = resolved
                        fetch_cycle += 1
                        group_cycle = fetch_cycle

        self.fetch_cycle = fetch_cycle
        self._last_dispatch = last_dispatch
        self._disp_cycle = disp_cycle
        self._disp_used = disp_used
        self._rob_idx = rob_idx
        self._win_idx = win_idx
        self._commit_time = commit_time
        self._n_src_reads += n_reads
        self._n_dest_writes += n_writes
        n_exec = self._n_exec
        for fu, count in plan_fu_counts:
            n_exec[fu] += count
        self.uops_executed += n_uops
        self._since_prune += n_uops
        if self._since_prune >= _PRUNE_INTERVAL:
            self._prune_slots()
        return n_misp

    def _prune_slots(self) -> None:
        """Drop slot bookkeeping for cycles no future uop can target.

        Any future uop dispatches at or after the current fetch cycle (plus
        front depth), so slots strictly below ``fetch_cycle`` are dead.
        Pruning is in place — the dict identities cached by ``_fu_lookup``
        and by the executors' entry-time locals stay valid, so no rebuild
        is needed.  Between prunes the fetch cycle advances far past every
        occupied slot, so the overwhelmingly common shape is "everything
        is dead": one C-level ``max`` scan settles it and ``clear()``
        replaces the per-item dict rebuild.
        """
        horizon = self.fetch_cycle
        for slots in (self._issue_slots, *self._fu_slots.values()):
            if not slots:
                continue
            if max(slots) < horizon:
                slots.clear()
            else:
                # A few live future slots amid thousands of dead ones:
                # rebuild from the survivors (clear + update keeps the
                # dict identity) instead of deleting key by key.
                kept = {c: u for c, u in slots.items() if c >= horizon}
                slots.clear()
                slots.update(kept)
        self._since_prune = 0

    # -- state switches (split-core machines) --------------------------------

    def apply_state_switch(self, transfer_latency: int) -> None:
        """Model the split-core register hand-off (§2.3).

        Values still in flight at the switch must be forwarded to the other
        core: every register whose producer has not yet written back by the
        time the other core's first consumers dispatch gets its ready time
        pushed out by the transfer latency (the last-writer / first-reader
        tracking mechanism).
        """
        horizon = self.fetch_cycle + self.params.front_depth
        reg_ready = self.reg_ready
        for reg in range(NUM_ARCH_REGS):
            if reg_ready[reg] > horizon:
                reg_ready[reg] += transfer_latency
        self.events.add("state_switch")

    # -- results ----------------------------------------------------------------

    def flush_events(self) -> None:
        """Fold the batched per-uop counters into the event counts.

        Must be called exactly once, after the last ``run_uop`` of a
        simulation, before the energy model reads the counters.
        """
        if self._events_flushed:
            raise SimulationError("flush_events called twice")
        if self._drained_uops or self._drained_src_reads or self._drained_dest_writes:
            raise SimulationError(
                "flush_events after drain_events would double-count; "
                "a draining (sampled) run must keep draining"
            )
        self._events_flushed = True
        events = self.events
        n = self.uops_executed
        events.add("rename_uop", n)
        events.add("window_insert", n)
        events.add("issue_uop", n)
        events.add("rob_write", n)
        events.add("rob_commit", n)
        events.add("window_wakeup", self._n_src_reads)
        events.add("regfile_read", self._n_src_reads)
        events.add("regfile_write", self._n_dest_writes)
        for fu, count in self._n_exec.items():
            if count:
                events.add(_EXEC_EVENT[fu], count)

    def drain_events(self) -> None:
        """Fold the batched counters accumulated since the last drain.

        The incremental sibling of :meth:`flush_events`, used by the
        sampled simulator at every interval boundary so per-interval event
        deltas (and hence per-interval energy) are observable.  Zero deltas
        never materialise an event key, and a run that only ever drains is
        charged exactly the same totals as one final ``flush_events``.
        """
        if self._events_flushed:
            raise SimulationError("drain_events after flush_events")
        events = self.events
        n = self.uops_executed - self._drained_uops
        if n:
            events.add("rename_uop", n)
            events.add("window_insert", n)
            events.add("issue_uop", n)
            events.add("rob_write", n)
            events.add("rob_commit", n)
            self._drained_uops = self.uops_executed
        src = self._n_src_reads - self._drained_src_reads
        if src:
            events.add("window_wakeup", src)
            events.add("regfile_read", src)
            self._drained_src_reads = self._n_src_reads
        dest = self._n_dest_writes - self._drained_dest_writes
        if dest:
            events.add("regfile_write", dest)
            self._drained_dest_writes = self._n_dest_writes
        drained_exec = self._drained_exec
        for fu, count in self._n_exec.items():
            delta = count - drained_exec[fu]
            if delta:
                events.add(_EXEC_EVENT[fu], delta)
                drained_exec[fu] = count

    @property
    def cycles(self) -> float:
        """Total elapsed cycles (commit time of the youngest committed uop)."""
        commit = self._commit_time
        return commit if commit > self.fetch_cycle else float(self.fetch_cycle)

    def check_invariants(self) -> None:
        """Internal consistency checks (used by tests and debug runs)."""
        if self._commit_time < 0:
            raise SimulationError("negative commit time")
        if self.fetch_cycle < 0:
            raise SimulationError("negative fetch cycle")
        if any(r < 0 for r in self.reg_ready):
            raise SimulationError("negative register-ready time")


_EXEC_EVENT = {
    FuClass.NONE: "exec_int",
    FuClass.INT: "exec_int",
    FuClass.INT_MUL: "exec_mul",
    FuClass.FP: "exec_fp",
    FuClass.MEM_LOAD: "exec_mem",
    FuClass.MEM_STORE: "exec_mem",
    FuClass.BRANCH: "exec_branch",
}
