"""The cycle-level out-of-order execution core timing model.

This is the generic execution engine of §3.1: one class instantiated for
every machine configuration, executing *abstract instructions* — cold
macro-instructions or hot atomic traces — as sequences of uops.

Model
-----
The core is a one-pass dependence/resource timing model.  For each uop, in
program order, it computes:

``dispatch``
    when the uop enters the scheduler: its fetch-group cycle plus the
    front-end depth, delayed by rename bandwidth, ROB occupancy (the uop
    ``rob_size`` older must have committed) and scheduler-window span (the
    uop ``window_size`` older must have issued).
``issue``
    the first cycle at or after operand readiness with a free issue slot
    and a free functional unit of the uop's class.
``complete``
    issue plus execution latency (plus memory-hierarchy latency for loads).
``commit``
    in order, at ``commit_width`` uops per cycle, never before completion.

Total cycles are the commit time of the last uop.  This captures every
first-order effect the paper's results depend on — width limits, window-
limited ILP, dependence chains, mispredict redirects and cache misses —
at a per-uop cost low enough for pure-Python benchmark sweeps.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instruction import Uop
from repro.isa.opcodes import UOP_FU, UOP_LATENCY, FuClass
from repro.isa.registers import NUM_ARCH_REGS, REG_NONE
from repro.pipeline.resources import CoreParams, ExecProfile
from repro.power.events import EventCounts

#: How many uops between prunes of the issue/FU slot tables.
_PRUNE_INTERVAL = 8192


class TimingCore:
    """One-pass cycle-level timing engine for an OOO execution core."""

    def __init__(self, params: CoreParams, events: EventCounts | None = None):
        self.params = params
        self.events = events if events is not None else EventCounts()
        self.profile = ExecProfile.from_params(params)
        self.reg_ready = [0] * NUM_ARCH_REGS

        self.fetch_cycle = 0
        self._last_dispatch = 0
        self._disp_cycle = 0
        self._disp_used = 0

        self._rob_ring = [0.0] * params.rob_size
        self._rob_idx = 0
        self._win_ring = [0] * params.window_size
        self._win_idx = 0
        self._commit_time = 0.0

        self._issue_slots: dict[int, int] = {}
        self._fu_slots: dict[FuClass, dict[int, int]] = {
            fu: {} for fu in params.fu_counts
        }
        self.uops_executed = 0
        self._since_prune = 0
        # Batched per-uop event counters: string-keyed EventCounts.add in
        # the per-uop path costs ~10 dict increments per uop; these plain
        # ints are folded into ``events`` by :meth:`flush_events`.
        self._n_src_reads = 0
        self._n_dest_writes = 0
        self._n_exec: dict[FuClass, int] = {fu: 0 for fu in FuClass}
        self._events_flushed = False

    # -- pipeline-selection hooks ------------------------------------------

    def set_profile(self, profile: ExecProfile) -> None:
        """Switch execution widths (split-core machines switch per pipeline)."""
        self.profile = profile
        for fu in profile.fu_counts:
            if fu not in self._fu_slots:
                self._fu_slots[fu] = {}

    # -- fetch clocking -----------------------------------------------------

    def begin_fetch_group(self, extra_latency: int = 0) -> int:
        """Open the next fetch group; returns its fetch cycle.

        ``extra_latency`` models instruction-supply stalls (icache misses,
        trace-cache fill) that delay this and subsequent groups.
        """
        self.fetch_cycle += 1 + extra_latency
        return self.fetch_cycle

    def redirect_fetch(self, until_cycle: float) -> None:
        """Stall fetch until ``until_cycle`` (mispredict/flush recovery)."""
        cycle = int(until_cycle)
        if cycle > self.fetch_cycle:
            self.fetch_cycle = cycle

    def stall_fetch(self, cycles: int) -> None:
        """Insert a fixed fetch bubble (state switches, optimizer hand-off)."""
        if cycles > 0:
            self.fetch_cycle += cycles

    # -- uop execution ------------------------------------------------------

    def run_uop(self, uop: Uop, group_cycle: int, mem_latency: int = 0) -> float:
        """Time one uop fetched in the group at ``group_cycle``.

        ``mem_latency`` replaces the default L1-hit latency for loads that
        missed (the caller resolves the hierarchy).  Returns the completion
        (writeback) cycle, which the caller uses to resolve branches.
        """
        profile = self.profile
        events = self.events

        # ---- dispatch: in order, rename-width limited, ROB/window gated.
        dispatch = group_cycle + self.params.front_depth
        if self._last_dispatch > dispatch:
            dispatch = self._last_dispatch
        rob_gate = self._rob_ring[self._rob_idx]
        if rob_gate > dispatch:
            dispatch = int(rob_gate) + 1
        win_gate = self._win_ring[self._win_idx]
        if win_gate > dispatch:
            dispatch = win_gate
        if dispatch > self._disp_cycle:
            self._disp_cycle = dispatch
            self._disp_used = 0
        else:
            dispatch = self._disp_cycle
        if self._disp_used >= profile.rename_width:
            self._disp_cycle += 1
            self._disp_used = 0
            dispatch = self._disp_cycle
        self._disp_used += 1
        self._last_dispatch = dispatch

        # ---- operand readiness (wakeup).
        ready = dispatch + 1
        reg_ready = self.reg_ready
        src = uop.src1
        if src != REG_NONE:
            r = reg_ready[src]
            if r > ready:
                ready = r
            self._n_src_reads += 1
        src = uop.src2
        if src != REG_NONE:
            r = reg_ready[src]
            if r > ready:
                ready = r
            self._n_src_reads += 1
        if uop.extra_srcs:
            for src in uop.extra_srcs:
                r = reg_ready[src]
                if r > ready:
                    ready = r
                self._n_src_reads += 1

        # ---- issue: first cycle with a free issue slot and functional unit.
        kind = uop.kind
        fu = UOP_FU[kind]
        issue = self._find_issue_slot(int(ready), fu, profile)

        # ---- execute.
        latency = UOP_LATENCY[kind]
        if mem_latency:
            latency = mem_latency
        complete = issue + latency

        if uop.dest != REG_NONE:
            reg_ready[uop.dest] = complete
            self._n_dest_writes += 1
        if uop.dest2 != REG_NONE:
            reg_ready[uop.dest2] = complete
            self._n_dest_writes += 1

        # ---- commit: in order at commit width, after completion.
        commit = self._commit_time + 1.0 / profile.commit_width
        if complete + 1 > commit:
            commit = complete + 1.0
        self._commit_time = commit
        self._rob_ring[self._rob_idx] = commit
        self._rob_idx = (self._rob_idx + 1) % self.params.rob_size
        self._win_ring[self._win_idx] = issue
        self._win_idx = (self._win_idx + 1) % self.params.window_size

        # ---- per-uop structural energy events (batched; see flush_events).
        self._n_exec[fu] += 1

        self.uops_executed += 1
        self._since_prune += 1
        if self._since_prune >= _PRUNE_INTERVAL:
            self._prune_slots()
        return complete

    def _find_issue_slot(self, earliest: int, fu: FuClass, profile: ExecProfile) -> int:
        """First cycle at or after ``earliest`` with issue + FU slots free.

        The scan is linear from each uop's ready time.  A skip-ahead cursor
        is not safe here: bookings are sparse, so cycles below another
        uop's contention point can still be free for an earlier-ready uop.
        In practice contention runs are short (width slots per cycle), and
        measured scan lengths stay near 1; revisit with a per-FU free-list
        if a profile ever shows otherwise.
        """
        issue_slots = self._issue_slots
        issue_width = profile.issue_width
        if fu is FuClass.NONE:
            cycle = earliest
            while issue_slots.get(cycle, 0) >= issue_width:
                cycle += 1
            issue_slots[cycle] = issue_slots.get(cycle, 0) + 1
            return cycle
        fu_slots = self._fu_slots[fu]
        fu_width = profile.fu_counts.get(fu, 1)
        cycle = earliest
        while (
            issue_slots.get(cycle, 0) >= issue_width
            or fu_slots.get(cycle, 0) >= fu_width
        ):
            cycle += 1
        issue_slots[cycle] = issue_slots.get(cycle, 0) + 1
        fu_slots[cycle] = fu_slots.get(cycle, 0) + 1
        return cycle

    def _prune_slots(self) -> None:
        """Drop slot bookkeeping for cycles no future uop can target.

        Any future uop dispatches at or after the current fetch cycle (plus
        front depth), so slots strictly below ``fetch_cycle`` are dead.
        """
        horizon = self.fetch_cycle
        self._issue_slots = {
            c: n for c, n in self._issue_slots.items() if c >= horizon
        }
        for fu, slots in self._fu_slots.items():
            self._fu_slots[fu] = {c: n for c, n in slots.items() if c >= horizon}
        self._since_prune = 0

    # -- state switches (split-core machines) --------------------------------

    def apply_state_switch(self, transfer_latency: int) -> None:
        """Model the split-core register hand-off (§2.3).

        Values still in flight at the switch must be forwarded to the other
        core: every register whose producer has not yet written back by the
        time the other core's first consumers dispatch gets its ready time
        pushed out by the transfer latency (the last-writer / first-reader
        tracking mechanism).
        """
        horizon = self.fetch_cycle + self.params.front_depth
        reg_ready = self.reg_ready
        for reg in range(NUM_ARCH_REGS):
            if reg_ready[reg] > horizon:
                reg_ready[reg] += transfer_latency
        self.events.add("state_switch")

    # -- results ----------------------------------------------------------------

    def flush_events(self) -> None:
        """Fold the batched per-uop counters into the event counts.

        Must be called exactly once, after the last ``run_uop`` of a
        simulation, before the energy model reads the counters.
        """
        if self._events_flushed:
            raise SimulationError("flush_events called twice")
        self._events_flushed = True
        events = self.events
        n = self.uops_executed
        events.add("rename_uop", n)
        events.add("window_insert", n)
        events.add("issue_uop", n)
        events.add("rob_write", n)
        events.add("rob_commit", n)
        events.add("window_wakeup", self._n_src_reads)
        events.add("regfile_read", self._n_src_reads)
        events.add("regfile_write", self._n_dest_writes)
        for fu, count in self._n_exec.items():
            if count:
                events.add(_EXEC_EVENT[fu], count)

    @property
    def cycles(self) -> float:
        """Total elapsed cycles (commit time of the youngest committed uop)."""
        commit = self._commit_time
        return commit if commit > self.fetch_cycle else float(self.fetch_cycle)

    def check_invariants(self) -> None:
        """Internal consistency checks (used by tests and debug runs)."""
        if self._commit_time < 0:
            raise SimulationError("negative commit time")
        if self.fetch_cycle < 0:
            raise SimulationError("negative fetch cycle")
        if any(r < 0 for r in self.reg_ready):
            raise SimulationError("negative register-ready time")


_EXEC_EVENT = {
    FuClass.NONE: "exec_int",
    FuClass.INT: "exec_int",
    FuClass.INT_MUL: "exec_mul",
    FuClass.FP: "exec_fp",
    FuClass.MEM_LOAD: "exec_mem",
    FuClass.MEM_STORE: "exec_mem",
    FuClass.BRANCH: "exec_branch",
}
