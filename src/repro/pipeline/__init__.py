"""Out-of-order execution core substrate: resources and cycle-level timing."""

from repro.pipeline.columnar import ExecutionBackend
from repro.pipeline.core import TimingCore
from repro.pipeline.resources import (
    CoreParams,
    ExecProfile,
    narrow_core_params,
    narrow_fu_counts,
    wide_core_params,
    wide_fu_counts,
)

__all__ = [
    "CoreParams",
    "ExecProfile",
    "ExecutionBackend",
    "TimingCore",
    "narrow_core_params",
    "narrow_fu_counts",
    "wide_core_params",
    "wide_fu_counts",
]
