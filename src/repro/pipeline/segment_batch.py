"""Batched per-segment bookkeeping shared by all three execution backends.

PR 8 took the replay recurrence out of interpreted dispatch, which left
the *backend-shared* per-segment work — retire-time branch-predictor
training, trace-predictor bookkeeping, LRU refreshes in the trace cache
and hotness filters, and per-segment energy-event accounting — as the
dominant cost of the full-detail profile.  This module is the layer that
amortizes it:

* :func:`compile_hot_training` / :func:`run_hot_training` replay a hot
  trace's retire-time branch training as one planned batch.  A trace's
  conditional branches have static addresses and directions (the TID
  pins the path, the same invariant the replay plans already rely on),
  so the gshare index of the *j*-th conditional is a pure function of
  the history value at segment entry — every per-CTI dispatch,
  ``_index`` recomputation and incremental history shift folds into
  per-plan constants at compile time.  Large batches run as numpy
  reductions over the counter table; small or index-colliding batches
  take a specialized sequential loop over the same constants.  Both are
  bit-identical to per-CTI :meth:`BranchPredictor.predict_and_train`.
  Non-conditional CTIs (RAS/BTB traffic) touch state disjoint from the
  gshare table and replay sequentially in their committed order.  The
  *cold* pipeline keeps fully sequential prediction by construction:
  its predictions feed back into the same segment's fetch redirects.

* :func:`flush_lru_refreshes` applies a journal of deferred LRU
  refreshes in one step.  The trace cache and the counter filters only
  *observe* recency order when they evict (or enumerate), so recurring
  segment sequences journal their refreshes content-keyed (by TID) and
  the journal collapses to one dict reorder per distinct TID right
  before the order becomes observable; eviction and forget invalidate
  the affected journal entries.  The applied order is exactly the eager
  order: residents are re-ranked by their *last* journaled access.

The simulator's segment loop (``_execute_segments``) drives this layer
identically for the scalar, columnar and compiled backends, and folds
the remaining per-segment event traffic (trace-cache frame reads,
filter accesses, cold fetch/decode/predictor totals) into plan-level
reductions whose static parts come from the compiled plans themselves.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import InstrClass

#: Conditional-branch count at or above which the numpy gshare batch
#: beats the specialized sequential loop.  Typical hot frames carry ~6-10
#: conditionals, where numpy call overhead still dominates; the loop and
#: the vector path are bit-identical, so this is a pure speed knob.
VECTOR_MIN_COND = 16

#: Deferred-LRU journal length at which holders flush pre-emptively, so
#: an eviction-free phase cannot grow the journal without bound.
LRU_JOURNAL_LIMIT = 2048


def compile_hot_training(instructions, history_bits: int):
    """Compile a hot segment's retire-time branch training into a plan.

    ``instructions`` is the committed dynamic path of the trace (the
    same representative execution the trace's uops were built from —
    per-TID path identity is the invariant all hot plans share).
    ``history_bits`` is the owning machine's gshare history width; like
    the compiled backend's baked widths, it makes the plan
    machine-private, which hot plans already are.

    Returns ``(cond_ops, others, n_cti, final_shift, final_prefix,
    vec)`` where ``cond_ops`` is one ``(xor, shift, prefix, taken)``
    tuple per conditional (the gshare index of conditional *j* is
    ``((((h0 << shift) & hmask) | prefix) ^ xor) & imask`` for the
    segment-entry history ``h0``), ``others`` holds the instruction
    indices of non-conditional CTIs that carry RAS/BTB state (software
    interrupts train nothing and are skipped), ``n_cti`` counts *all*
    CTIs for the ``bpred_update`` energy event, ``final_shift`` /
    ``final_prefix`` collapse the segment's whole history evolution
    into one shift-mask, and ``vec`` carries numpy mirrors of
    ``cond_ops`` when the batch is worth vectorizing (else ``None``).
    """
    hist_mask = (1 << history_bits) - 1
    cond_ops = []
    others = []
    n_cti = 0
    prefix = 0
    n_cond = 0
    for index, dyn in enumerate(instructions):
        instr = dyn.instr
        if not instr.is_cti:
            continue
        n_cti += 1
        iclass = instr.iclass
        if iclass is InstrClass.COND_BRANCH:
            taken = bool(dyn.taken)
            cond_ops.append((
                instr.address >> 1,
                min(n_cond, history_bits),
                prefix & hist_mask,
                taken,
            ))
            prefix = (prefix << 1) | taken
            n_cond += 1
        elif iclass is not InstrClass.SOFTWARE_INT:
            others.append(index)
    vec = None
    if n_cond >= VECTOR_MIN_COND:
        vec = (
            np.array([op[0] for op in cond_ops], dtype=np.int64),
            np.array([op[1] for op in cond_ops], dtype=np.int64),
            np.array([op[2] for op in cond_ops], dtype=np.int64),
            np.array([op[3] for op in cond_ops], dtype=bool),
        )
    return (
        tuple(cond_ops),
        tuple(others),
        n_cti,
        min(n_cond, history_bits),
        prefix & hist_mask,
        vec,
    )


def run_hot_training(bpred, plan, instructions) -> None:
    """Replay a compiled training plan against the live predictor.

    Bit-identical to calling ``bpred.predict_and_train`` per CTI in
    committed order: conditionals and RAS/BTB CTIs touch disjoint
    predictor state, so the conditional batch commutes past the
    sequential remainder; within the batch the numpy path only engages
    when every gshare index is distinct (a colliding batch falls back
    to the sequential loop, which reads each counter after the previous
    write exactly as the eager code did).
    """
    cond_ops, others, _n_cti, final_shift, final_prefix, vec = plan
    if cond_ops:
        counters = bpred._counters
        hist_mask = bpred._history_mask
        index_mask = bpred._index_mask
        h0 = bpred._history
        misp = 0
        done = False
        if vec is not None:
            xors, shifts, prefixes, takens = vec
            idx = np.left_shift(h0, shifts)
            np.bitwise_and(idx, hist_mask, out=idx)
            np.bitwise_or(idx, prefixes, out=idx)
            np.bitwise_xor(idx, xors, out=idx)
            np.bitwise_and(idx, index_mask, out=idx)
            uniq = np.unique(idx)
            if len(uniq) == len(idx):
                table = np.frombuffer(counters, dtype=np.uint8)
                vals = table[idx].astype(np.int16)
                misp = int(np.count_nonzero((vals >= 2) != takens))
                np.add(vals, np.where(takens, 1, -1), out=vals)
                np.clip(vals, 0, 3, out=vals)
                table[idx] = vals
                done = True
        if not done:
            for xor, shift, prefix, taken in cond_ops:
                index = ((((h0 << shift) & hist_mask) | prefix)
                         ^ xor) & index_mask
                counter = counters[index]
                if taken:
                    if counter < 2:
                        misp += 1
                    if counter < 3:
                        counters[index] = counter + 1
                else:
                    if counter >= 2:
                        misp += 1
                    if counter > 0:
                        counters[index] = counter - 1
        bpred._history = (((h0 << final_shift) & hist_mask)
                          | final_prefix)
        stats = bpred.stats
        stats.cond_predictions += len(cond_ops)
        stats.cond_mispredictions += misp
    if others:
        predict_and_train = bpred.predict_and_train
        for index in others:
            dyn = instructions[index]
            predict_and_train(dyn.instr, dyn.taken, dyn.next_address)


def run_hot_training_sequential(bpred, plan, instructions) -> None:
    """Reference replay: per-CTI ``predict_and_train`` in committed order.

    The eager loop the batched path must match bit-for-bit — kept as the
    differential oracle for the predictor-state parity suite (and for
    anyone bisecting a divergence by hand).
    """
    predict_and_train = bpred.predict_and_train
    for dyn in instructions:
        if dyn.instr.is_cti:
            predict_and_train(dyn.instr, dyn.taken, dyn.next_address)


def flush_lru_refreshes(store: dict, journal: list) -> None:
    """Apply a deferred-refresh journal to an insertion-ordered dict.

    ``journal`` is the access sequence since the last flush (one entry
    per journaled hit, possibly with many recurrences of the same key).
    Re-ranks every journaled key that is still resident to the position
    eager move-to-MRU bookkeeping would have left it in — ordered by
    *last* access — in one pass over the distinct keys, and clears the
    journal.  Keys evicted (and possibly re-inserted) since their
    journal entry must have been purged by the holder; insertion-order
    semantics make the re-rank exact for everything else.
    """
    if not journal:
        return
    # dict.fromkeys over the reversed journal keeps each key's *last*
    # access (first occurrence in reverse), most recent first; applying
    # in reverse of that re-inserts in ascending last-access order.
    order = dict.fromkeys(reversed(journal))
    pop = store.pop
    for key in reversed(order):
        value = pop(key, _MISSING)
        if value is not _MISSING:
            store[key] = value
    journal.clear()


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
