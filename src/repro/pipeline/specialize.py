"""Plan-specialized replay: per-plan generated code + max-plus pre-pass.

The columnar backend (:mod:`repro.pipeline.columnar`) hoisted everything
order-free out of the replay loop but left the dispatch/issue/commit
recurrence as a *generic* sequential CPython loop: per uop it unpacks a
replay tuple, chases producer/carried link tuples, resolves the FU issue
triple from a dict and branches on properties that are static per plan.
This module compiles each plan one step further, into a dedicated Python
function:

* **straight-line specialization** — one generated code block per uop,
  with the dispatch base, latency, ring sizes, widths and the commit
  step baked in as literals (hot plans are machine-private), producer
  wake-up unrolled to local-variable reads (``c17``), carried-in
  register reads hoisted to function entry (sound because in-segment
  register-file writes are deferred to the last-writer epilogue), and
  memory/branch bindings hoisted into a tiny wrapper prologue that
  preserves the exact scalar probe order;
* **content-keyed caching** — generated sources are loaded through a
  memory LRU keyed by ``sha256(SCHEMA_VERSION + source)`` plus an
  optional on-disk cache of marshalled code objects under
  ``$REPRO_CACHE_DIR/compiled`` (invalidated by ``SCHEMA_VERSION`` and
  the interpreter's bytecode magic; corrupt or stale entries are
  quarantined).  Cold generated sources bake nothing machine-specific
  beyond the fetch parameters, so cold compiled plans keep the
  cross-model sharing contract of :class:`ColdPlanCache`;
* **max-plus issue pre-pass** — for eligible hot plans the compile-time
  contention analysis emits the fetch-relative dispatch bases, per-level
  dependency edges and per-FU-class index columns.  At run time the
  gate-free dispatch pattern is solved first: the rename-width-W greedy
  recurrence ``D[k] = max(A[k], D[k-W] + 1)`` decomposes into W
  independent residue classes, each a ``maximum.accumulate`` over one
  column of the reshaped availability array (carry-in occupancy of the
  entry cycle is modelled as virtual prefix uops), so a dirty dispatch
  backlog — the steady state of back-to-back hot replays — is handled
  exactly, not bailed on.  Then the unconstrained fixed point ``issue =
  ready = max(dispatch+1, producers, carried)`` is solved as a
  vectorized max-plus scan over the dependency columns, and everything
  is *verified*: ROB/window gates at or below the pre-gate dispatch
  values ``P[k] = max(A[k], D[k-1])`` (the exact quantity the scalar
  recurrence compares gates against), and per-cycle issue/FU demand
  (ours plus pre-booked slots) within the widths.  When the check
  passes, the greedy sequential recurrence provably produces exactly
  these values — each gate comparison resolves the same way and every
  issue scan stops at ``ready`` because the per-cycle prefix counts
  never reach the width — so the state is written back wholesale.
  Genuinely contended (or gate-blocked) segments fall back to the
  specialized sequential function; a plan whose scan keeps failing
  verification stops attempting it (``MAXPLUS_FAIL_LIMIT`` consecutive
  misses) so structurally contended traces pay no numpy overhead.

Bit-identity notes: all gates and latencies are ints; only ROB commit
times are floats.  The vectorized commit scan ``commit_k =
max_j<=k(c_j + (k-j)*s)`` is evaluated as ``maximum.accumulate(c - k*s)
+ k*s`` and is exact only when the commit step ``s`` is a power-of-two
reciprocal (every value is then a multiple of ``s`` well below the
float53 granularity), so eligibility statically requires a power-of-two
commit width and dynamically a ``commit_time`` on the same grid.  The
scalar parity suite pins the whole backend bit-identical.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import struct
import types
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.isa.opcodes import FuClass
from repro.pipeline.core import (
    _PRUNE_INTERVAL,
    compile_plan_stats,
    compile_uop_row,
)
from repro.pipeline.columnar import _dependency_links
from repro.pipeline.resources import ExecProfile

# SCHEMA_VERSION lives in repro.core.results; imported lazily where used
# to keep this module import-light for the generated-code hot path.


def _schema_version() -> int:
    from repro.core.results import SCHEMA_VERSION

    return SCHEMA_VERSION


# --------------------------------------------------------------------------
# Content-keyed loader: memory LRU + optional on-disk code-object cache.
# --------------------------------------------------------------------------

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_ENV_DISK_CACHE = "REPRO_COMPILED_CACHE"
_FILE_PREFIX = b"RPSC"
_MEMORY_LIMIT = 512

#: Memory LRU of materialized replay functions, keyed by content hash.
#: Ordered least- to most-recently used; shared by every simulator in the
#: process (engine workers each hold their own copy).
_MEMORY: OrderedDict[str, object] = OrderedDict()

#: Loader statistics: plan compiles vs memory/disk hits, plus whole-plan
#: memo hits (codegen skipped entirely, not just the compile step).
LOADER_STATS = {"compiles": 0, "memory_hits": 0, "disk_hits": 0,
                "plan_hits": 0}

_PLAN_MEMO_LIMIT = 512

#: Whole-plan memo for hot traces, keyed by (rows, fetch grouping, core
#: geometry).  Traces are rebuilt per run, but their planned rows — and
#: therefore the generated source, probe plan and max-plus columns — are
#: pure functions of this key, so repeat runs skip codegen outright
#: (string assembly costs real time for a 2000-line source even when the
#: compile step hits the source LRU).
_PLAN_MEMO: OrderedDict[tuple, tuple] = OrderedDict()

#: Globals shared by every generated module: the FuClass members under
#: stable positional names, so disk-cached code objects never depend on
#: the environment that generated them.
_EXEC_GLOBALS = {f"FU_{int(fu)}": fu for fu in FuClass}


def default_compiled_root() -> Path:
    """Root of the compiled-plan disk cache (honours $REPRO_CACHE_DIR)."""
    root = os.environ.get(_ENV_CACHE_DIR)
    base = Path(root).expanduser() if root else Path.home() / ".cache" / "repro"
    return base / "compiled"


def disk_cache_enabled() -> bool:
    """The on-disk layer is optional: ``REPRO_COMPILED_CACHE=0`` disables."""
    return os.environ.get(_ENV_DISK_CACHE, "1") != "0"


def _header() -> bytes:
    return (_FILE_PREFIX + importlib.util.MAGIC_NUMBER
            + struct.pack("<I", _schema_version()))


@dataclass(frozen=True, slots=True)
class CompiledCacheInfo:
    """Summary of the on-disk compiled-plan cache (`repro cache info`)."""

    path: str
    entries: int
    total_bytes: int
    schema_version: int
    stale_tmp: int
    quarantined: int


class CompiledPlanCache:
    """On-disk cache of marshalled replay code objects.

    Mirrors the artifact cache's layout and hygiene: content-keyed
    entries sharded two levels deep, atomic ``.tmp.<pid>`` + rename
    writes, and corrupt or stale records quarantined (deleted and
    counted) rather than served.  An entry is stale when its header does
    not match this interpreter's bytecode magic and the current
    ``SCHEMA_VERSION`` — either invalidates every generated source.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_compiled_root()
        self.hits = 0
        self.compiles = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.rpc"

    def load(self, key: str):
        """Return the cached code object for ``key``, or None on miss.

        Corrupt and stale entries are quarantined on the way out.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        header = _header()
        if not blob.startswith(header):
            self._quarantine(path)
            return None
        try:
            code = marshal.loads(blob[len(header):])
        except (ValueError, EOFError, TypeError):
            self._quarantine(path)
            return None
        if not isinstance(code, types.CodeType):
            # marshal is not self-validating: a truncated or flipped body
            # can decode "successfully" into an arbitrary object, which
            # would blow up in exec() far from the cause.
            self._quarantine(path)
            return None
        self.hits += 1
        return code

    def store(self, key: str, code) -> None:
        """Atomically persist a compiled code object (best effort)."""
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            tmp.write_bytes(_header() + marshal.dumps(code))
            os.replace(tmp, path)
            self.compiles += 1
        except OSError:
            pass

    def _quarantine(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.quarantined += 1

    def _entries(self) -> list[Path]:
        return [p for p in self.root.glob("*/*.rpc") if p.is_file()]

    def _sweep_stale_tmp(self) -> int:
        removed = 0
        for path in self.root.glob("*/*.rpc.tmp.*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @staticmethod
    def _body_ok(body: bytes) -> bool:
        """True when the marshalled body really is a code object."""
        try:
            return isinstance(marshal.loads(body), types.CodeType)
        except (ValueError, EOFError, TypeError):
            return False

    def info(self) -> CompiledCacheInfo:
        """Enumerate the cache, quarantining corrupt/stale entries.

        Each shard is counted exactly once: either as a healthy entry
        (contributing its size to ``total_bytes``) or as quarantined.
        Body validation matches :meth:`load`, so an entry ``info``
        reports as healthy cannot later fail to load — previously a
        header-valid shard with a corrupt body was counted (and sized)
        as healthy here *and* quarantined on the next load.
        """
        header = _header()
        kept = 0
        total = 0
        quarantined = 0
        for path in self._entries():
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            if not blob.startswith(header) or not self._body_ok(blob[len(header):]):
                self._quarantine(path)
                quarantined += 1
                continue
            kept += 1
            total += len(blob)
        stale_tmp = self._sweep_stale_tmp()
        return CompiledCacheInfo(
            path=str(self.root),
            entries=kept,
            total_bytes=total,
            schema_version=_schema_version(),
            stale_tmp=stale_tmp,
            quarantined=quarantined,
        )

    def clear(self) -> int:
        """Remove every entry (and swept tmp files); returns the count."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._sweep_stale_tmp()
        for shard in self.root.glob("*"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


def source_key(source: str) -> str:
    """Content key of a generated source (schema-versioned)."""
    material = f"{_schema_version()}\n{source}"
    return hashlib.sha256(material.encode()).hexdigest()


def load_replay(source: str):
    """Materialize a generated replay function, through the cache stack.

    Memory LRU first, then the optional disk cache of marshalled code
    objects, then ``compile()``.  The pseudo-filename
    ``<repro-compiled:HASH>`` is stable across processes (it is derived
    from the content key), so profiler attribution and disk-cached code
    objects agree.
    """
    key = source_key(source)
    fn = _MEMORY.get(key)
    if fn is not None:
        _MEMORY.move_to_end(key)
        LOADER_STATS["memory_hits"] += 1
        return fn
    disk = CompiledPlanCache() if disk_cache_enabled() else None
    code = disk.load(key) if disk is not None else None
    if code is not None:
        LOADER_STATS["disk_hits"] += 1
    else:
        code = compile(source, f"<repro-compiled:{key[:16]}>", "exec")
        LOADER_STATS["compiles"] += 1
        if disk is not None:
            disk.store(key, code)
    namespace = dict(_EXEC_GLOBALS)
    exec(code, namespace)
    fn = namespace["replay"]
    _MEMORY[key] = fn
    if len(_MEMORY) > _MEMORY_LIMIT:
        _MEMORY.popitem(last=False)
    return fn


# --------------------------------------------------------------------------
# Code generation.
# --------------------------------------------------------------------------

def _fu_name(fu: FuClass) -> str:
    return f"fu{int(fu)}"


def _emit_wakeup(parts: list[str], prods, carry) -> None:
    if prods is not None:
        for j in prods:
            parts.append(f"    if c{j} > ready:\n        ready = c{j}\n")
    if carry is not None:
        for reg in carry:
            parts.append(f"    if g{reg} > ready:\n        ready = g{reg}\n")


def _emit_issue(parts: list[str], fu: FuClass, issue_width_expr: str,
                fu_width_expr: str | None, start: str = "ready") -> None:
    if fu is FuClass.NONE:
        parts.append(
            f"    cycle = {start}\n"
            "    while True:\n"
            "        used = issue_get(cycle, 0)\n"
            f"        if used < {issue_width_expr}:\n"
            "            break\n"
            "        cycle += 1\n"
            "    issue_slots[cycle] = used + 1\n"
        )
    else:
        name = _fu_name(fu)
        parts.append(
            f"    cycle = {start}\n"
            "    while True:\n"
            "        used = issue_get(cycle, 0)\n"
            f"        if used < {issue_width_expr}:\n"
            f"            fu_used = {name}_get(cycle, 0)\n"
            f"            if fu_used < {fu_width_expr}:\n"
            "                break\n"
            "        cycle += 1\n"
            "    issue_slots[cycle] = used + 1\n"
            f"    {name}_slots[cycle] = fu_used + 1\n"
        )


def _wrap_lines(idx: str, size) -> str:
    """Ring-index advance: a mask when the literal size is a power of two."""
    if isinstance(size, int) and size > 0 and not (size & (size - 1)):
        return f"    {idx} = ({idx} + 1) & {size - 1}\n"
    return (
        f"    {idx} += 1\n"
        f"    if {idx} == {size}:\n"
        f"        {idx} = 0\n"
    )


def _emit_commit(parts: list[str], k: int, step_expr: str,
                 rob_size, win_size) -> None:
    parts.append(
        f"    commit = commit_time + {step_expr}\n"
        f"    if c{k} + 1 > commit:\n"
        f"        commit = c{k} + 1.0\n"
        "    commit_time = commit\n"
        "    rob_ring[rob_idx] = commit\n"
        + _wrap_lines("rob_idx", rob_size)
        + "    win_ring[win_idx] = cycle\n"
        + _wrap_lines("win_idx", win_size)
    )


def _emit_epilogue(parts: list[str], last_writers, n: int, n_groups,
                   n_reads: int, n_writes: int, fu_counts,
                   fetch_expr: str) -> None:
    for reg, j in last_writers:
        parts.append(f"    reg_ready[{reg}] = c{j}\n")
    parts.append(
        f"    core.fetch_cycle = {fetch_expr}\n"
        "    core._last_dispatch = last_dispatch\n"
        "    core._disp_cycle = disp_cycle\n"
        "    core._disp_used = disp_used\n"
        "    core._rob_idx = rob_idx\n"
        "    core._win_idx = win_idx\n"
        "    core._commit_time = commit_time\n"
        f"    core._n_src_reads += {n_reads}\n"
        f"    core._n_dest_writes += {n_writes}\n"
    )
    if fu_counts:
        parts.append("    n_exec = core._n_exec\n")
        for fu, count in fu_counts:
            parts.append(f"    n_exec[FU_{int(fu)}] += {count}\n")
    parts.append(
        f"    core.uops_executed += {n}\n"
        f"    core._since_prune += {n}\n"
        f"    if core._since_prune >= {_PRUNE_INTERVAL}:\n"
        "        core._prune_slots()\n"
    )


def _state_prologue() -> str:
    return (
        "    reg_ready = core.reg_ready\n"
        "    last_dispatch = core._last_dispatch\n"
        "    disp_cycle = core._disp_cycle\n"
        "    disp_used = core._disp_used\n"
        "    rob_ring = core._rob_ring\n"
        "    rob_idx = core._rob_idx\n"
        "    win_ring = core._win_ring\n"
        "    win_idx = core._win_idx\n"
        "    commit_time = core._commit_time\n"
        "    issue_slots = core._issue_slots\n"
        "    issue_get = issue_slots.get\n"
        "    fu_lookup = core._fu_lookup\n"
    )


def _hot_source(rows: list, per_cycle: int, front_depth: int,
                profile: ExecProfile, rob_size: int, win_size: int) -> str:
    """Generate the straight-line hot replay source for one plan.

    Everything machine-specific is baked as a literal: hot plans live in
    one machine's trace cache and always execute under its hot profile.
    ``mem_lats`` carries the effective latency of each load uop (override
    or static), computed by the wrapper in exact scalar probe order.
    """
    n = len(rows)
    producers, carried, last_writers = _dependency_links(rows)
    _n_uops, n_reads, n_writes, fu_counts = compile_plan_stats(rows)
    n_groups = -(-n // per_cycle) if n else 0
    issue_width = profile.issue_width
    rename_width = profile.rename_width
    step = 1.0 / profile.commit_width
    fu_widths = profile.fu_counts

    used_fus = sorted(
        {row[0] for row in rows if row[0] is not FuClass.NONE}, key=int
    )
    load_ks = [k for k, row in enumerate(rows) if row[7] == 1]
    carried_regs = sorted(
        {reg for carry in carried if carry for reg in carry}
    )

    parts: list[str] = ["def replay(core, mem_lats):\n"]
    parts.append("    fetch0 = core.fetch_cycle\n")
    parts.append(_state_prologue())
    for fu in used_fus:
        name = _fu_name(fu)
        parts.append(
            f"    {name}_slots, {name}_get, _ = fu_lookup[FU_{int(fu)}]\n"
        )
    if load_ks:
        targets = ", ".join(f"l{k}" for k in load_ks)
        parts.append(f"    {targets}, = mem_lats\n")
    for reg in carried_regs:
        parts.append(f"    g{reg} = reg_ready[{reg}]\n")

    prev_offset = None
    for k, row in enumerate(rows):
        fu, latency = row[0], row[1]
        offset = k // per_cycle + 1 + front_depth
        if offset == prev_offset:
            # Same fetch group: the previous uop dispatched at or above
            # this very base, so max(base, last_dispatch) IS
            # last_dispatch.
            base_lines = "    dispatch = last_dispatch\n"
        else:
            base_lines = (
                f"    dispatch = fetch0 + {offset}\n"
                "    if last_dispatch > dispatch:\n"
                "        dispatch = last_dispatch\n"
            )
        prev_offset = offset
        parts.append(
            base_lines
            # ROB-full is rare in steady state: compare in place and only
            # touch the ring a second time on the binding path.
            + "    if rob_ring[rob_idx] > dispatch:\n"
            "        dispatch = int(rob_ring[rob_idx]) + 1\n"
            "    win_gate = win_ring[win_idx]\n"
            "    if win_gate > dispatch:\n"
            "        dispatch = win_gate\n"
            "    if dispatch > disp_cycle:\n"
            "        disp_cycle = dispatch\n"
            "        disp_used = 0\n"
            "    else:\n"
            "        dispatch = disp_cycle\n"
            f"    if disp_used >= {rename_width}:\n"
            "        disp_cycle += 1\n"
            "        disp_used = 0\n"
            "        dispatch = disp_cycle\n"
            "    disp_used += 1\n"
            "    last_dispatch = dispatch\n"
        )
        # Dependency-free uops start probing directly from dispatch + 1;
        # the ``ready`` accumulator only exists to take wakeup maxes.
        if producers[k] or carried[k]:
            parts.append("    ready = dispatch + 1\n")
            _emit_wakeup(parts, producers[k], carried[k])
            start = "ready"
        else:
            start = "dispatch + 1"
        _emit_issue(
            parts, fu, str(issue_width),
            None if fu is FuClass.NONE else str(fu_widths.get(fu, 1)),
            start,
        )
        lat_expr = f"l{k}" if row[7] == 1 else str(latency)
        parts.append(f"    c{k} = cycle + {lat_expr}\n")
        _emit_commit(parts, k, repr(step), rob_size, win_size)

    _emit_epilogue(parts, last_writers, n, n_groups, n_reads, n_writes,
                   fu_counts, f"fetch0 + {n_groups}")
    return "".join(parts)


def _cold_source(groups: list, producers, carried, last_writers,
                 n: int, n_reads: int, n_writes: int, fu_counts) -> str:
    """Generate the straight-line cold replay source for one segment.

    Nothing machine-specific is baked in — widths, depths and ring sizes
    are read from the core at entry — so cold generated sources (and the
    functions loaded from them) keep the scalar sharing contract:
    shareable across models with equal fetch parameters.  The wrapper
    hoists every hierarchy probe and predictor call into ``fetch_lats``
    / ``mem_lats`` / ``misps`` (exact scalar order: the probes depend
    only on the recorded stream, never on timing), so the generated body
    is the pure timing recurrence, mispredict redirects included.

    ``groups`` is ``((entries), ...)`` with entries ``(flat_ks, is_cti,
    rows)`` — ``flat_ks`` the flat uop indices of one instruction.
    """
    used_fus = sorted(
        {row[0] for _ks, _cti, rows in (e for g in groups for e in g)
         for row in rows if row[0] is not FuClass.NONE},
        key=int,
    )
    carried_regs = sorted(
        {reg for carry in carried if carry for reg in carry}
    )
    load_ks = []
    flat = 0
    for entries in groups:
        for _ks, _is_cti, rows in entries:
            for row in rows:
                if row[7] == 1:
                    load_ks.append(flat)
                flat += 1
    n_cti = sum(
        1 for entries in groups for _ks, is_cti, _rows in entries if is_cti
    )

    parts: list[str] = ["def replay(core, fetch_lats, mem_lats, misps):\n"]
    parts.append(
        "    fetch_cycle = core.fetch_cycle\n"
        "    front_depth = core._front_depth\n"
        "    rename_width = core._rename_width\n"
        "    issue_width = core._issue_width\n"
        "    commit_step = core._commit_step\n"
        "    rob_size = core._rob_size\n"
        "    win_size = core._win_size\n"
    )
    parts.append(_state_prologue())
    for fu in used_fus:
        name = _fu_name(fu)
        parts.append(
            f"    {name}_slots, {name}_get, {name}_w = "
            f"fu_lookup[FU_{int(fu)}]\n"
        )
    if groups:
        targets = ", ".join(f"f{i}" for i in range(len(groups)))
        parts.append(f"    {targets}, = fetch_lats\n")
    if load_ks:
        targets = ", ".join(f"l{k}" for k in load_ks)
        parts.append(f"    {targets}, = mem_lats\n")
    if n_cti:
        targets = ", ".join(f"b{i}" for i in range(n_cti))
        parts.append(f"    {targets}, = misps\n")
    for reg in carried_regs:
        parts.append(f"    g{reg} = reg_ready[{reg}]\n")

    cti_ordinal = 0
    for i, entries in enumerate(groups):
        parts.append(
            f"    fetch_cycle += 1 + f{i}\n"
            "    group_cycle = fetch_cycle\n"
        )
        for flat_ks, is_cti, rows in entries:
            for k, row in zip(flat_ks, rows):
                fu = row[0]
                parts.append(
                    "    dispatch = group_cycle + front_depth\n"
                    "    if last_dispatch > dispatch:\n"
                    "        dispatch = last_dispatch\n"
                    "    if rob_ring[rob_idx] > dispatch:\n"
                    "        dispatch = int(rob_ring[rob_idx]) + 1\n"
                    "    win_gate = win_ring[win_idx]\n"
                    "    if win_gate > dispatch:\n"
                    "        dispatch = win_gate\n"
                    "    if dispatch > disp_cycle:\n"
                    "        disp_cycle = dispatch\n"
                    "        disp_used = 0\n"
                    "    else:\n"
                    "        dispatch = disp_cycle\n"
                    "    if disp_used >= rename_width:\n"
                    "        disp_cycle += 1\n"
                    "        disp_used = 0\n"
                    "        dispatch = disp_cycle\n"
                    "    disp_used += 1\n"
                    "    last_dispatch = dispatch\n"
                )
                if producers[k] or carried[k]:
                    parts.append("    ready = dispatch + 1\n")
                    _emit_wakeup(parts, producers[k], carried[k])
                    start = "ready"
                else:
                    start = "dispatch + 1"
                _emit_issue(
                    parts, fu, "issue_width",
                    None if fu is FuClass.NONE else f"{_fu_name(fu)}_w",
                    start,
                )
                lat_expr = f"l{k}" if row[7] == 1 else str(row[1])
                parts.append(f"    c{k} = cycle + {lat_expr}\n")
                _emit_commit(parts, k, "commit_step", "rob_size",
                             "win_size")
            if is_cti:
                if rows:
                    resolved = f"int(c{flat_ks[-1]} + 1)"
                else:
                    # The scalar loop resolves an uop-less CTI off its
                    # initial ``complete = 0.0``.
                    resolved = "1"
                parts.append(
                    f"    if b{cti_ordinal}:\n"
                    f"        resolved = {resolved}\n"
                    "        if resolved > fetch_cycle:\n"
                    "            fetch_cycle = resolved\n"
                    "        fetch_cycle += 1\n"
                    "        group_cycle = fetch_cycle\n"
                )
                cti_ordinal += 1

    _emit_epilogue(parts, last_writers, n, len(groups), n_reads, n_writes,
                   fu_counts, "fetch_cycle")
    return "".join(parts)


# --------------------------------------------------------------------------
# Max-plus issue pre-pass (hot plans).
# --------------------------------------------------------------------------

#: Profitability floor, re-measured on the warmed artifact stack (swim,
#: TON, 100k, compiled backend): forcing the floor to 32 so the scan
#: engages on production 64-uop hot frames regresses the full-detail run
#: 73.6ms -> 244.0ms (3.3x) — the scan's fixed numpy overhead (~30
#: small-array kernel launches) swamps frames this small, while results
#: stay bit-identical.  The gate is *per plan kind by construction*:
#: only hot plans build a scan at all (:func:`compile_hot_specialized`);
#: cold plans never can, because their branch predictions feed back into
#: the same segment's fetch redirects, which the pure-dataflow scan does
#: not model.  Hot frames are capped at ``TRACE_CAPACITY_UOPS`` (64), so
#: the floor deliberately stays above the cap: the pre-pass is exercised
#: through the property suite (which passes ``min_uops`` explicitly) and
#: engages automatically the day frames outgrow the crossover.
MAXPLUS_MIN_UOPS = 96

#: Dependency-chain depth bound: past this the level-by-level relaxation
#: degenerates toward one numpy call per uop.
MAXPLUS_MAX_DEPTH = 12


#: Consecutive verification misses after which a plan's scan is benched:
#: a structurally contended trace (steady-state demand at the widths)
#: fails every attempt, and the attempt itself is pure overhead.
MAXPLUS_FAIL_LIMIT = 16


class MaxPlusScan:
    """Static columns of one hot plan's compile-time contention analysis.

    ``offsets`` holds the fetch-relative dispatch bases (``k //
    per_cycle + 1 + front_depth``); the actual dispatch pattern —
    including the rename-width drain and any carried-in backlog — is
    solved at run time by the residue-class ``maximum.accumulate`` form
    of ``D[k] = max(A[k], D[k - W] + 1)``, so the scan stays applicable
    when hot replays run back to back.  ``fails`` counts consecutive
    runtime verification misses (reset on success); past
    ``MAXPLUS_FAIL_LIMIT`` the wrapper stops attempting the scan.
    """

    __slots__ = (
        "n", "offsets", "rename_width", "lat", "load_rows", "levels",
        "carried_rows", "carried_regs", "fu_groups", "issue_width",
        "rob_size", "win_size", "commit_step", "ks", "last_writers",
        "n_groups", "n_reads", "n_writes", "fu_counts", "fails",
    )


def build_maxplus_scan(rows: list, per_cycle: int, front_depth: int,
                       profile: ExecProfile, rob_size: int, win_size: int,
                       *, min_uops: int | None = None,
                       max_depth: int | None = None) -> MaxPlusScan | None:
    """Compile-time contention analysis; None when the plan is ineligible.

    Eligibility is static: enough uops to beat numpy overhead, a bounded
    dependency depth, and a power-of-two commit width (the vectorized
    commit scan is bit-exact only on a power-of-two grid — see the
    module docstring).  Everything dynamic (entry state, gate levels,
    pre-booked slots, actual per-cycle demand) is verified at run time
    by :func:`run_maxplus`, which falls back when contended.
    """
    n = len(rows)
    if min_uops is None:
        min_uops = MAXPLUS_MIN_UOPS
    if max_depth is None:
        max_depth = MAXPLUS_MAX_DEPTH
    if n < min_uops or n == 0 or n > rob_size:
        return None
    commit_width = profile.commit_width
    if commit_width & (commit_width - 1):
        return None

    producers, carried, last_writers = _dependency_links(rows)

    # Dependency levels: level[k] = longest producer chain ending at k.
    level = [0] * n
    depth = 0
    for k, prods in enumerate(producers):
        if prods:
            lvl = 1 + max(level[j] for j in prods)
            level[k] = lvl
            if lvl > depth:
                depth = lvl
    if depth > max_depth:
        return None

    # Fetch-relative dispatch bases; the width-constrained pattern is
    # solved at run time so a carried-in backlog stays in scope.
    offsets = [k // per_cycle + 1 + front_depth for k in range(n)]

    # Per-level dependency edges (src already final when dst relaxes).
    edges: dict[int, tuple[list, list]] = {}
    for k, prods in enumerate(producers):
        if prods:
            src, dst = edges.setdefault(level[k], ([], []))
            for j in prods:
                src.append(j)
                dst.append(k)
    levels = tuple(
        (np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))
        for _lvl, (src, dst) in sorted(edges.items())
    )

    carried_rows: list[int] = []
    carried_regs: list[int] = []
    for k, carry in enumerate(carried):
        if carry:
            for reg in carry:
                carried_rows.append(k)
                carried_regs.append(reg)

    fu_rows: dict[FuClass, list[int]] = {}
    for k, row in enumerate(rows):
        if row[0] is not FuClass.NONE:
            fu_rows.setdefault(row[0], []).append(k)
    fu_widths = profile.fu_counts
    fu_groups = tuple(
        (fu, np.array(ks, dtype=np.int64), fu_widths.get(fu, 1))
        for fu, ks in fu_rows.items()
    )

    load_ks = [k for k, row in enumerate(rows) if row[7] == 1]
    _n_uops, n_reads, n_writes, fu_counts = compile_plan_stats(rows)

    scan = MaxPlusScan()
    scan.n = n
    scan.offsets = np.array(offsets, dtype=np.int64)
    scan.rename_width = profile.rename_width
    scan.fails = 0
    scan.lat = np.array([row[1] for row in rows], dtype=np.int64)
    scan.load_rows = (np.array(load_ks, dtype=np.int64)
                      if load_ks else None)
    scan.levels = levels
    scan.carried_rows = (np.array(carried_rows, dtype=np.int64)
                         if carried_rows else None)
    scan.carried_regs = carried_regs
    scan.fu_groups = fu_groups
    scan.issue_width = profile.issue_width
    scan.rob_size = rob_size
    scan.win_size = win_size
    scan.commit_step = 1.0 / commit_width
    scan.ks = np.arange(n, dtype=np.float64) * scan.commit_step
    scan.last_writers = last_writers
    scan.n_groups = -(-n // per_cycle)
    scan.n_reads = n_reads
    scan.n_writes = n_writes
    scan.fu_counts = fu_counts
    return scan


def run_maxplus(core, scan: MaxPlusScan, mem_lats: list) -> bool:
    """Vectorized pre-pass: solve, verify, write back — or bail.

    Returns True when the unconstrained max-plus solution was verified
    feasible and the core state was advanced; False (state untouched)
    when any constraint could bind, in which case the caller must run
    the specialized sequential function instead.
    """
    fetch0 = core.fetch_cycle
    n = scan.n
    disp_cycle_in = core._disp_cycle
    if core._last_dispatch != disp_cycle_in:
        # Every executor leaves last_dispatch == disp_cycle; anything
        # else is an entry state the closed form does not model.
        return False
    width = scan.rename_width
    u = core._disp_used
    if u < 0 or u > width:
        return False
    commit_time = core._commit_time
    step = scan.commit_step
    if not (commit_time / step).is_integer():
        return False

    # ---- dispatch solve.  Availability per uop is the fetch-group base
    # clamped to the entry cycle, with the carried-in *window* gates
    # folded in directly: the scalar recurrence applies them as
    # ``dispatch = max(dispatch, win_gate)`` — pure max semantics — so
    # the ring entries for k < win_size (always carried-in state) are
    # part of the availability, not a verification.  A running max
    # restores monotonicity (issue cycles in the ring are out of order;
    # in-order dispatch propagates them forward), then the
    # rename-width-W greedy recurrence D[k] = max(A[k], D[k - W] + 1)
    # (carry-in occupancy modelled as u virtual uops at the entry cycle)
    # decomposes into W independent maximum.accumulate scans — one per
    # residue class, i.e. per column of the (cycles x W) reshape.
    raw = scan.offsets + fetch0
    np.maximum(raw, disp_cycle_in, out=raw)

    win_ring = core._win_ring
    win_idx = core._win_idx
    win_size = scan.win_size
    w = n if n <= win_size else win_size
    end = win_idx + w
    if end <= win_size:
        win_vals = win_ring[win_idx:end]
    else:
        win_vals = win_ring[win_idx:] + win_ring[:end - win_size]

    avail = raw.copy()
    np.maximum(avail[:w], np.asarray(win_vals), out=avail[:w])
    np.maximum.accumulate(avail, out=avail)

    total = u + n
    n_rows = -(-total // width)
    ext = np.empty(n_rows * width, dtype=np.int64)
    ext[:u] = disp_cycle_in
    ext[u:total] = avail
    ext[total:] = avail[-1]
    mat = ext.reshape(n_rows, width)
    row_idx = np.arange(n_rows, dtype=np.int64)[:, None]
    mat -= row_idx
    np.maximum.accumulate(mat, axis=0, out=mat)
    mat += row_idx
    disp = ext[u:total]

    # Pre-gate dispatch values: P[k] = max(A[k], D[k-1]) is what the
    # scalar recurrence holds when it compares the ROB gate (the window
    # gate and the width-queueing bump come after), so the remaining
    # verify-only gates must stay at or below P for the solution to be
    # exact.
    pre_gate = raw
    np.maximum(pre_gate[1:], disp[:-1], out=pre_gate[1:])

    # ROB gates: traces are shorter than the ROB, so every gate read
    # sees carried-in ring state.  These bump to ``int(gate) + 1`` when
    # they bind — not a max — so they stay verify-only.
    rob_ring = core._rob_ring
    rob_idx = core._rob_idx
    rob_size = scan.rob_size
    end = rob_idx + n
    if end <= rob_size:
        ring_vals = rob_ring[rob_idx:end]
    else:
        ring_vals = rob_ring[rob_idx:] + rob_ring[:end - rob_size]
    if (np.asarray(ring_vals) > pre_gate).any():
        return False

    # ---- unconstrained solve: issue = ready = max(dispatch + 1,
    # producers' completes, carried reads), relaxed level by level.
    if mem_lats:
        lat = scan.lat.copy()
        lat[scan.load_rows] = mem_lats
    else:
        lat = scan.lat
    ready = disp + 1
    reg_ready = core.reg_ready
    if scan.carried_rows is not None:
        vals = np.array([reg_ready[r] for r in scan.carried_regs],
                        dtype=np.int64)
        np.maximum.at(ready, scan.carried_rows, vals)
    for src, dst in scan.levels:
        np.maximum.at(ready, dst, ready[src] + lat[src])
    issue = ready

    if n > win_size and (issue[:n - win_size] > pre_gate[win_size:]).any():
        return False

    # ---- contention verification: per-cycle demand (ours + pre-booked)
    # within the widths.  The prefix-count argument makes this exact:
    # when the total at a cycle fits, every intermediate greedy booking
    # saw used < width, so each sequential scan stops at ready.
    issue_width = scan.issue_width
    cyc, cnt = np.unique(issue, return_counts=True)
    cyc_list = cyc.tolist()
    cnt_list = cnt.tolist()
    issue_slots = core._issue_slots
    if issue_slots:
        issue_get = issue_slots.get
        pre = [issue_get(c, 0) for c in cyc_list]
        for p, m in zip(pre, cnt_list):
            if p + m > issue_width:
                return False
    else:
        pre = None
        if max(cnt_list) > issue_width:
            return False
    fu_lookup = core._fu_lookup
    fu_updates = []
    for fu, fu_ks, width in scan.fu_groups:
        fcyc, fcnt = np.unique(issue[fu_ks], return_counts=True)
        fcyc_list = fcyc.tolist()
        fcnt_list = fcnt.tolist()
        fu_slots, fu_get, _width = fu_lookup[fu]
        if fu_slots:
            fpre = [fu_get(c, 0) for c in fcyc_list]
            for p, m in zip(fpre, fcnt_list):
                if p + m > width:
                    return False
        else:
            fpre = None
            if max(fcnt_list) > width:
                return False
        fu_updates.append((fu_slots, fcyc_list, fcnt_list, fpre))

    # ---- feasible: the greedy recurrence reproduces exactly these
    # values.  Vectorized commit scan (exact on the power-of-two grid),
    # then wholesale state write-back.
    completes = issue + lat
    ks = scan.ks
    adj = (completes + 1.0) - ks
    seed = commit_time + step
    if seed > adj[0]:
        adj[0] = seed
    np.maximum.accumulate(adj, out=adj)
    commit_list = (adj + ks).tolist()
    completes_list = completes.tolist()
    issue_list = issue.tolist()

    if pre is None:
        for c, m in zip(cyc_list, cnt_list):
            issue_slots[c] = m
    else:
        for c, m, p in zip(cyc_list, cnt_list, pre):
            issue_slots[c] = p + m
    for fu_slots, fcyc_list, fcnt_list, fpre in fu_updates:
        if fpre is None:
            for c, m in zip(fcyc_list, fcnt_list):
                fu_slots[c] = m
        else:
            for c, m, p in zip(fcyc_list, fcnt_list, fpre):
                fu_slots[c] = p + m

    end = rob_idx + n
    if end <= rob_size:
        rob_ring[rob_idx:end] = commit_list
    else:
        split = rob_size - rob_idx
        rob_ring[rob_idx:] = commit_list[:split]
        rob_ring[:end - rob_size] = commit_list[split:]
    core._rob_idx = end % rob_size

    if n >= win_size:
        tail = issue_list[n - win_size:]
        start = (win_idx + n - win_size) % win_size
        split = win_size - start
        win_ring[start:] = tail[:split]
        win_ring[:start] = tail[split:]
    else:
        end = win_idx + n
        if end <= win_size:
            win_ring[win_idx:end] = issue_list
        else:
            split = win_size - win_idx
            win_ring[win_idx:] = issue_list[:split]
            win_ring[:end - win_size] = issue_list[split:]
    core._win_idx = (win_idx + n) % win_size

    for reg, j in scan.last_writers:
        reg_ready[reg] = completes_list[j]
    core.fetch_cycle = fetch0 + scan.n_groups
    d_last = int(disp[-1])
    used = int(np.count_nonzero(disp == d_last))
    if disp_cycle_in == d_last:
        used += u
    core._last_dispatch = d_last
    core._disp_cycle = d_last
    core._disp_used = used
    core._commit_time = commit_list[-1]
    core._n_src_reads += scan.n_reads
    core._n_dest_writes += scan.n_writes
    n_exec = core._n_exec
    for fu, count in scan.fu_counts:
        n_exec[fu] += count
    core.uops_executed += n
    core._since_prune += n
    if core._since_prune >= _PRUNE_INTERVAL:
        core._prune_slots()
    return True


# --------------------------------------------------------------------------
# Plan compilers + run wrappers (the backend surface the simulator uses).
# --------------------------------------------------------------------------

def compile_hot_specialized(rows: list, per_cycle: int, params) -> tuple:
    """Compile a hot trace's planned rows into a specialized plan.

    ``params`` is the owning machine's :class:`CoreParams` — hot plans
    always execute under the hot profile derived from it, so its widths
    are baked into the generated source.  Layout::

        (replay_fn, probes, scan)

    ``probes`` is ``((origin, mem_code, default_latency), ...)`` in uop
    order — the wrapper's hierarchy-order-preserving prologue; ``scan``
    is the compile-time contention analysis (None when ineligible).

    Whole plans are memoized on ``(rows, grouping, geometry)``: traces
    are rebuilt every run, but the plan is a pure function of the
    planned rows, so repeat runs skip codegen and scan construction.
    """
    profile = ExecProfile.from_params(params)
    key = (tuple(rows), per_cycle, params.front_depth, params.rob_size,
           params.window_size, profile.rename_width, profile.issue_width,
           profile.commit_width,
           tuple(sorted((int(f), w) for f, w in profile.fu_counts.items())))
    memo = _PLAN_MEMO
    plan = memo.get(key)
    if plan is not None:
        memo.move_to_end(key)
        LOADER_STATS["plan_hits"] += 1
        return plan
    source = _hot_source(rows, per_cycle, params.front_depth, profile,
                         params.rob_size, params.window_size)
    fn = load_replay(source)
    probes = tuple(
        (row[8], row[7], row[1]) for row in rows if row[7]
    )
    scan = build_maxplus_scan(rows, per_cycle, params.front_depth, profile,
                              params.rob_size, params.window_size)
    plan = (fn, probes, scan)
    memo[key] = plan
    if len(memo) > _PLAN_MEMO_LIMIT:
        memo.popitem(last=False)
    return plan


def compile_cold_specialized(instructions: list, params) -> tuple:
    """Compile a cold segment into a specialized plan.

    Shares the cold contract of the other backends (cacheable per TID,
    shareable across models with equal fetch parameters — nothing but
    the fetch grouping is baked into the source).  Layout::

        (replay_fn, probes, n_uops, n_groups, n_cti)

    ``probes`` drives the wrapper prologue in exact scalar order: one
    ``(op, arg, default)`` per hierarchy/predictor call, with op 0 =
    icache fetch (arg = start address), 1 = load (arg = instruction
    index), 2 = store, 3 = CTI predict-and-train.
    """
    from repro.frontend.fetch import plan_cold_groups

    all_rows: list = []
    groups: list = []
    probes: list = []
    n_cti = 0
    flat = 0
    for start_idx, end_idx, start_address in plan_cold_groups(
        instructions, params
    ):
        probes.append((0, start_address, 0))
        entries = []
        for idx in range(start_idx, end_idx):
            instr = instructions[idx].instr
            rows = tuple(compile_uop_row(uop) for uop in instr.uops)
            all_rows.extend(rows)
            flat_ks = tuple(range(flat, flat + len(rows)))
            flat += len(rows)
            for row in rows:
                if row[7] == 1:
                    probes.append((1, idx, row[1]))
                elif row[7]:
                    probes.append((2, idx, 0))
            is_cti = instr.is_cti
            if is_cti:
                n_cti += 1
                probes.append((3, idx, 0))
            entries.append((flat_ks, is_cti, rows))
        groups.append(entries)
    producers, carried, last_writers = _dependency_links(all_rows)
    n_uops, n_reads, n_writes, fu_counts = compile_plan_stats(all_rows)
    source = _cold_source(groups, producers, carried, last_writers,
                          n_uops, n_reads, n_writes, fu_counts)
    fn = load_replay(source)
    return (fn, tuple(probes), n_uops, len(groups), n_cti)


_EMPTY: list = []


def run_hot_compiled(core, plan: tuple, instructions: list,
                     load_latency, store_access) -> None:
    """Specialized twin of :func:`run_hot_columnar`.

    The prologue probes memory in recorded uop order (shared by both
    execution paths, so the hierarchy sees exactly one scalar-order
    pass); the max-plus pre-pass then either advances the whole segment
    vectorized or defers to the generated sequential function.
    """
    fn, probes, scan = plan
    if probes:
        mem_lats = []
        append = mem_lats.append
        for origin, code, default in probes:
            dyn = instructions[origin]
            addr = dyn.mem_addr
            if addr is None:
                addr = dyn.instr.address
            if code == 1:
                append(load_latency(addr) or default)
            else:
                store_access(addr)
    else:
        mem_lats = _EMPTY
    if scan is not None and scan.fails < MAXPLUS_FAIL_LIMIT:
        if run_maxplus(core, scan, mem_lats):
            scan.fails = 0
            return
        scan.fails += 1
    fn(core, mem_lats)


def run_cold_compiled(core, plan: tuple, instructions: list,
                      fetch_latency, load_latency, store_access,
                      predict_and_train) -> int:
    """Specialized twin of :func:`run_cold_columnar`; returns mispredicts.

    The prologue replays every hierarchy probe and predictor call in
    exact scalar order (they depend only on the recorded stream, never
    on timing), then hands the collected latencies and mispredict flags
    to the pure-timing generated function.
    """
    fn, probes, _n_uops, _n_groups, _n_cti = plan
    fetch_lats = []
    mem_lats = []
    misps = []
    n_misp = 0
    for op, arg, default in probes:
        if op == 0:
            fetch_lats.append(fetch_latency(arg))
        elif op == 3:
            dyn = instructions[arg]
            missed = predict_and_train(dyn.instr, dyn.taken,
                                       dyn.next_address)
            misps.append(missed)
            if missed:
                n_misp += 1
        else:
            dyn = instructions[arg]
            addr = dyn.mem_addr
            if addr is None:
                addr = dyn.instr.address
            if op == 1:
                mem_lats.append(load_latency(addr) or default)
            else:
                store_access(addr)
    fn(core, fetch_lats, mem_lats, misps)
    return n_misp
