"""Memory hierarchy substrate: set-associative caches, L1/L2/DRAM stack."""

from repro.memory.cache import Cache, CacheGeometry, CacheStats
from repro.memory.hierarchy import HierarchyConfig, HierarchyEvents, MemoryHierarchy

__all__ = [
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "HierarchyConfig",
    "HierarchyEvents",
    "MemoryHierarchy",
]
