"""A set-associative cache model with LRU replacement.

Used for the L1 instruction cache, L1 data cache and unified L2.  The model
tracks hits/misses and evictions; it is a *timing and energy* model, not a
functional one — no data contents are stored, only tags.

LRU is implemented with per-set insertion-ordered dicts, giving O(1)
amortised access, which matters because the simulator probes caches on
every memory uop and fetch block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True, slots=True)
class CacheGeometry:
    """Size/associativity/line-size description of one cache."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ConfigurationError(f"line size {self.line_bytes} not a power of two")
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ConfigurationError("cache size and associativity must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ConfigurationError(
                f"cache of {self.size_bytes}B cannot be {self.assoc}-way with "
                f"{self.line_bytes}B lines"
            )
        if not _is_pow2(self.num_sets):
            raise ConfigurationError(f"number of sets {self.num_sets} not a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes


@dataclass(slots=True)
class CacheStats:
    """Access counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One level of a tag-only set-associative LRU cache."""

    def __init__(self, name: str, geometry: CacheGeometry):
        self.name = name
        self.geometry = geometry
        self.stats = CacheStats()
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = geometry.num_sets - 1
        # Per-set LRU: dict preserves insertion order; move-to-end on hit.
        self._sets: list[dict[int, None]] = [dict() for _ in range(geometry.num_sets)]

    def access(self, address: int) -> bool:
        """Probe the cache; allocate on miss.  Returns True on hit."""
        line = address >> self._line_shift
        set_index = line & self._set_mask
        cache_set = self._sets[set_index]
        if line in cache_set:
            # Refresh LRU position.
            del cache_set[line]
            cache_set[line] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.geometry.assoc:
            oldest = next(iter(cache_set))
            del cache_set[oldest]
            self.stats.evictions += 1
        cache_set[line] = None
        return False

    def probe(self, address: int) -> bool:
        """Check presence without updating LRU state or counters."""
        line = address >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def snapshot(self) -> list[dict[int, None]]:
        """Copy the tag state, per-set LRU recency included."""
        return [dict(s) for s in self._sets]

    def restore(self, snapshot: list[dict[int, None]]) -> None:
        """Adopt a snapshot's tag state (counters are left untouched).

        Insertion order carries the LRU recency, so a restored cache is
        bit-identical to the one the snapshot was taken from.
        """
        self._sets = [dict(s) for s in snapshot]

    def reset_stats(self) -> None:
        """Zero the counters without flushing contents."""
        self.stats = CacheStats()

    def flush(self) -> None:
        """Empty the cache (contents and counters)."""
        for cache_set in self._sets:
            cache_set.clear()
        self.reset_stats()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)
