"""The full memory hierarchy: L1I, L1D, unified L2 and main memory.

The hierarchy returns *latencies* for instruction-fetch and data accesses
and counts the per-level events the energy model charges for.  Latencies
are additive down the hierarchy (an L1 miss pays the L2 lookup; an L2 miss
additionally pays the memory latency), matching the paper's "full memory
hierarchy" in its performance simulator (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.memory.cache import Cache, CacheGeometry


@dataclass(frozen=True, slots=True)
class HierarchyConfig:
    """Sizes and latencies of the three-level hierarchy.

    Defaults resemble the 2004-era high-performance parts the paper models:
    32KB split L1s, a 1MB unified L2, and a few-hundred-cycle memory.
    """

    l1i: CacheGeometry = CacheGeometry(32 * 1024, 4, 64)
    l1d: CacheGeometry = CacheGeometry(32 * 1024, 8, 64)
    l2: CacheGeometry = CacheGeometry(1024 * 1024, 8, 64)
    l1_latency: int = 3
    l2_latency: int = 12
    memory_latency: int = 150

    @property
    def l2_mbytes(self) -> float:
        """L2 capacity in megabytes (feeds the paper's leakage formula)."""
        return self.l2.size_bytes / (1024.0 * 1024.0)


@dataclass(slots=True)
class HierarchyEvents:
    """Event counters consumed by the energy model."""

    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_writes: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    memory_accesses: int = 0


class MemoryHierarchy:
    """Three-level memory hierarchy shared by fetch and data paths."""

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.l1i = Cache("L1I", self.config.l1i)
        self.l1d = Cache("L1D", self.config.l1d)
        self.l2 = Cache("L2", self.config.l2)
        self.events = HierarchyEvents()

    # -- instruction side ---------------------------------------------------

    def fetch_latency(self, address: int) -> int:
        """Latency of fetching the line containing ``address``.

        An L1I hit costs nothing extra (the pipeline hides it); misses pay
        the L2 latency and, on an L2 miss, the memory latency too.
        """
        self.events.l1i_accesses += 1
        if self.l1i.access(address):
            return 0
        self.events.l1i_misses += 1
        self.events.l2_accesses += 1
        if self.l2.access(address):
            return self.config.l2_latency
        self.events.l2_misses += 1
        self.events.memory_accesses += 1
        return self.config.l2_latency + self.config.memory_latency

    # -- data side ------------------------------------------------------------

    def load_latency(self, address: int) -> int:
        """Total load-to-use latency for a data access at ``address``."""
        self.events.l1d_accesses += 1
        if self.l1d.access(address):
            return self.config.l1_latency
        self.events.l1d_misses += 1
        self.events.l2_accesses += 1
        if self.l2.access(address):
            return self.config.l1_latency + self.config.l2_latency
        self.events.l2_misses += 1
        self.events.memory_accesses += 1
        return (
            self.config.l1_latency
            + self.config.l2_latency
            + self.config.memory_latency
        )

    def warm_fetch(self, address: int) -> None:
        """Install the instruction line at ``address`` without charging events.

        The sampled simulator's functional-warming probe: contents and LRU
        state evolve exactly as :meth:`fetch_latency`, but no event is
        counted and no latency is computed (warming traffic must stay
        invisible to the energy model).
        """
        if not self.l1i.access(address):
            self.l2.access(address)

    def warm_data(self, address: int) -> None:
        """Install the data line at ``address`` without charging events.

        Functional-warming twin of :meth:`load_latency` /
        :meth:`store_access`: loads and stores install identically, so one
        probe covers both.
        """
        if not self.l1d.access(address):
            self.l2.access(address)

    def store_access(self, address: int) -> None:
        """Account a store (write-allocate; stores retire via buffers,
        so they do not stall the dependent-timing model)."""
        self.events.l1d_accesses += 1
        self.events.l1d_writes += 1
        if not self.l1d.access(address):
            self.events.l1d_misses += 1
            self.events.l2_accesses += 1
            if not self.l2.access(address):
                self.events.l2_misses += 1
                self.events.memory_accesses += 1

    def reset(self) -> None:
        """Flush all levels and zero counters (fresh simulation)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.events = HierarchyEvents()

    def prewarm(
        self,
        code_addresses: "Iterable[int]" = (),
        data_ranges: "Iterable[tuple[int, int]]" = (),
    ) -> None:
        """Pre-load code and data into the hierarchy (steady-state start).

        The paper simulates 30-100M-instruction traces, so compulsory
        misses are negligible; our runs are orders of magnitude shorter and
        would otherwise be dominated by cold-cache warmup.  Prewarming
        installs all code lines into L1I+L2 and all data-region lines into
        L2 (capacity still limits what L1D can keep), then zeroes the event
        counters so prewarm traffic is never charged.
        """
        line = self.config.l2.line_bytes
        for address in code_addresses:
            self.l1i.access(address)
            self.l2.access(address)
        for base, extent in data_ranges:
            for addr in range(base, base + max(extent, line), line):
                self.l2.access(addr)
        self.events = HierarchyEvents()
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()

    def warm_state(self) -> tuple:
        """Snapshot the levels :meth:`prewarm` touches (L1I and L2).

        Prewarming never installs into L1D and zeroes every counter, so
        the L1I/L2 tag state fully determines a just-prewarmed hierarchy.
        The snapshot is the currency of the simulator's prewarm memo: the
        state is a pure function of (geometry, prewarm image), which every
        model of a grid shares.
        """
        return (self.l1i.snapshot(), self.l2.snapshot())

    def restore_warm_state(self, state: tuple) -> None:
        """Adopt a :meth:`warm_state` snapshot on a fresh hierarchy."""
        l1i_state, l2_state = state
        self.l1i.restore(l1i_state)
        self.l2.restore(l2_state)
