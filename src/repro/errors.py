"""Exception hierarchy for the PARROT reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A machine or component configuration is inconsistent or out of range."""


class WorkloadError(ReproError):
    """A workload profile or program skeleton could not be constructed."""


class DecodeError(ReproError):
    """A macro-instruction could not be decoded into micro-operations."""


class TraceError(ReproError):
    """Trace selection, construction or cache interaction failed an invariant."""


class OptimizationError(ReproError):
    """A dynamic-optimizer pass produced or detected an inconsistent trace."""


class SimulationError(ReproError):
    """The cycle-level simulation violated an internal invariant."""


class ExperimentError(ReproError):
    """An experiment/figure harness was invoked with unusable parameters."""


class SamplingWarning(UserWarning):
    """A sampled run degraded gracefully instead of failing.

    Emitted when the adaptive sampler falls back to fixed-interval (or
    full-detail) behaviour — stream too short to classify, no phase ever
    recurring, confidence targets unreachable within the stream — so the
    run completes with honest statistics but the caller is told the
    requested regime was not achievable.
    """
