"""Profiling harness: per-phase time attribution for a single simulation.

``repro profile <app> <model>`` runs one simulation under :mod:`cProfile`
and buckets every function's *self* time into the simulator's logical
phases (stream walking, trace selection, hot/cold execution, memory,
background trace unit, energy accounting).  Self times sum exactly to the
profiled total, so the breakdown shows where a change actually lands —
the honesty check behind every hot-path optimization in this repo.

The raw :mod:`pstats` dump is also written to disk so a hotspot can be
drilled into with ``python -m pstats`` or snakeviz-alikes without
re-running the simulation.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field

from repro.core.simulator import ParrotSimulator, RunOptions
from repro.models.configs import model_config
from repro.pipeline.columnar import ExecutionBackend
from repro.workloads.suite import application

#: Ordered (phase, path fragments) buckets; first match wins.  Paths are
#: matched against the profiled function's source file with ``/`` already
#: normalised, so the table reads like the package layout.
_PHASE_BUCKETS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("walk", ("workloads/stream", "workloads/behaviors", "random.py")),
    ("select", ("trace/selection", "trace/tid")),
    # Generated replay functions carry the pseudo-filename
    # ``<repro-compiled:HASH>`` (one per plan); fold every exec'd frame
    # plus the specializer's wrappers into a single phase instead of
    # scattering per-hash rows through the table.
    ("replay(compiled)", ("<repro-compiled", "pipeline/specialize")),
    # The batched per-segment bookkeeping (predictor-training plans,
    # lazy-LRU flushes) gets its own row so the shared-overhead share
    # the batching attacked stays visible in `repro profile`.
    ("segment-batch", ("pipeline/segment_batch",)),
    ("columnar", ("pipeline/columnar",)),
    ("execute", ("pipeline/core", "pipeline/resources")),
    ("memory", ("memory/",)),
    ("frontend", ("frontend/",)),
    ("background", (
        "core/background", "trace/construction", "trace/optimizer",
        "trace/filters", "trace/cache", "trace/trace",
    )),
    ("energy", ("power/",)),
    ("orchestrate", ("core/simulator",)),
)

_PHASE_ORDER = tuple(name for name, _ in _PHASE_BUCKETS) + ("other",)


def classify_function(filename: str) -> str:
    """Map a profiled function's source file to its simulator phase."""
    path = filename.replace("\\", "/")
    for phase, fragments in _PHASE_BUCKETS:
        for fragment in fragments:
            if fragment in path:
                return phase
    return "other"


@dataclass
class ProfileReport:
    """One profiled simulation: result, timings and phase attribution."""

    app_name: str
    model_name: str
    length: int
    elapsed: float                  #: wall-clock seconds under the profiler
    result: object                  #: the run's SimulationResult
    stats: pstats.Stats
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def instructions_per_second(self) -> float:
        """Profiled throughput (cProfile overhead included — use the
        benchmark harness for headline numbers)."""
        if self.elapsed <= 0:
            return 0.0
        return self.length / self.elapsed

    def format(self, top: int = 10) -> str:
        """Human-readable per-phase breakdown plus the top self-time hits."""
        lines = [
            f"{self.app_name} on {self.model_name}: {self.length} "
            f"instructions in {self.elapsed:.3f}s "
            f"({self.instructions_per_second:,.0f} instr/s under cProfile)",
            "",
            f"  {'phase':17}{'seconds':>10}{'share':>9}",
        ]
        total = sum(self.phase_seconds.values()) or 1.0
        for phase in _PHASE_ORDER:
            seconds = self.phase_seconds.get(phase, 0.0)
            if seconds == 0.0 and phase != "other":
                continue
            lines.append(
                f"  {phase:17}{seconds:>10.3f}{seconds / total:>8.1%}"
            )
        lines.append(f"  {'total':17}{total:>10.3f}{1.0:>8.1%}")
        lines.append("")
        lines.append(f"top {top} functions by self time:")
        buffer = io.StringIO()
        previous_stream = self.stats.stream
        self.stats.stream = buffer
        try:
            self.stats.sort_stats("tottime").print_stats(top)
        finally:
            self.stats.stream = previous_stream
        # Keep only the tabular part of pstats' report.
        rows = buffer.getvalue().splitlines()
        header_idx = next(
            (i for i, row in enumerate(rows) if "ncalls" in row), 0
        )
        lines.extend("  " + row for row in rows[header_idx:] if row.strip())
        return "\n".join(lines)


def attribute_phases(stats: pstats.Stats) -> dict[str, float]:
    """Sum per-function *self* time into simulator phases.

    Self (``tottime``) rather than cumulative time is used so the phases
    partition the total exactly — a function's time is charged to where
    the code lives, not to everything above it on the stack.
    """
    phases: dict[str, float] = {}
    for (filename, _lineno, _name), row in stats.stats.items():
        tottime = row[2]
        if not tottime:
            continue
        phase = classify_function(filename)
        phases[phase] = phases.get(phase, 0.0) + tottime
    return phases


def profile_run(
    app_name: str,
    model_name: str,
    length: int = 20_000,
    backend: ExecutionBackend = ExecutionBackend.SCALAR,
) -> ProfileReport:
    """Profile one simulation and attribute its time to phases.

    The simulator is constructed outside the profiled region (model
    configuration is one-time setup, not hot-path), so the report isolates
    the per-run cost the optimization work targets.  ``backend`` selects
    the batch executor; columnar runs surface their executor time under
    the ``columnar`` phase, compiled runs under ``replay(compiled)``.
    """
    app = application(app_name)
    simulator = ParrotSimulator(model_config(model_name))
    options = RunOptions(backend=backend)
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = simulator.simulate(app, options, length=length)
    profiler.disable()
    elapsed = time.perf_counter() - start
    stats = pstats.Stats(profiler)
    return ProfileReport(
        app_name=app.name,
        model_name=model_name,
        length=length,
        elapsed=elapsed,
        result=result,
        stats=stats,
        phase_seconds=attribute_phases(stats),
    )
