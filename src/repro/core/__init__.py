"""The PARROT core: machine configuration, simulator, background phases."""

from repro.core.background import BackgroundProcessor
from repro.core.config import MachineConfig
from repro.core.results import SimulationResult, TraceUnitStats
from repro.core.simulator import ParrotSimulator, segment_stream

__all__ = [
    "BackgroundProcessor",
    "MachineConfig",
    "ParrotSimulator",
    "SimulationResult",
    "TraceUnitStats",
    "segment_stream",
]
